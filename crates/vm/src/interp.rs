//! The portable interpreter (the "Execution Engine" of paper §3.4).
//!
//! Executes a module one function at a time against the simulated memory,
//! implementing the full semantics of the representation including the
//! `invoke`/`unwind` exception model (§2.4): `unwind` pops activation
//! records until it removes one created by an `invoke`, then transfers
//! control to that invoke's unwind successor — running no handler code of
//! its own, exactly as the abstract model prescribes.
//!
//! When profiling is enabled the engine plays the role of the paper's
//! lightweight instrumentation (§3.5), counting block and edge executions
//! for the runtime optimizer.

use std::collections::VecDeque;

use lpat_core::trace;
use lpat_core::{
    BinOp, BlockId, CmpPred, Const, ConstId, FuncId, Inst, InstId, IntKind, Module, Type, TypeId,
    Value,
};

use crate::error::{ExecError, TrapKind};
use crate::mem::Memory;
use crate::profile::ProfileData;
use crate::value::VmValue;

/// Trace-counter name per dense opcode index: `"vm.op."` +
/// [`Inst::opcode_mnemonic`]. Spelled out because counter names must be
/// `&'static str`; a unit test pins the alignment.
const OP_COUNTER_NAMES: [&str; Inst::NUM_OPCODES] = [
    "vm.op.ret",
    "vm.op.br",
    "vm.op.switch",
    "vm.op.invoke",
    "vm.op.unwind",
    "vm.op.unreachable",
    "vm.op.malloc",
    "vm.op.free",
    "vm.op.alloca",
    "vm.op.load",
    "vm.op.store",
    "vm.op.getelementptr",
    "vm.op.phi",
    "vm.op.call",
    "vm.op.cast",
    "vm.op.vaarg",
    "vm.op.add",
    "vm.op.sub",
    "vm.op.mul",
    "vm.op.div",
    "vm.op.rem",
    "vm.op.and",
    "vm.op.or",
    "vm.op.xor",
    "vm.op.shl",
    "vm.op.shr",
    "vm.op.seteq",
    "vm.op.setne",
    "vm.op.setlt",
    "vm.op.setgt",
    "vm.op.setle",
    "vm.op.setge",
];

/// Interpreter configuration.
#[derive(Clone, Debug)]
pub struct VmOptions {
    /// Instruction budget; `None` = unlimited.
    pub fuel: Option<u64>,
    /// Collect block/edge/call profiles.
    pub profile: bool,
    /// Memory limit in bytes.
    pub mem_limit: u32,
    /// Scripted input for `read_int`.
    pub input: VecDeque<i64>,
    /// Call-stack depth limit: deep recursion traps with
    /// [`TrapKind::StackOverflow`] instead of overflowing the host stack
    /// (the interpreter's call stack is heap-allocated, so the limit is a
    /// policy bound, not a host constraint).
    pub max_stack: usize,
    /// Tier-up threshold for [`Vm::run_main_tiered`]: a function is
    /// promoted from the profiling interpreter to the translated (JIT)
    /// tier once its hotness counter — calls plus loop back-edges —
    /// *exceeds* this value. `0` promotes every function on first call
    /// (full-JIT behavior); a very large value never promotes (pure
    /// interpretation).
    pub tier_up: u64,
    /// Native (tier-3) promotion threshold for [`Vm::run_main_tiered`]:
    /// once a JIT-tier function's hotness counter exceeds this value it
    /// is promoted again, to single-pass machine code. `None` (the
    /// default) disables tier 3 entirely; `Some(0)` promotes every
    /// JIT-tier function immediately.
    pub native_up: Option<u64>,
}

impl Default for VmOptions {
    fn default() -> Self {
        VmOptions {
            fuel: None,
            profile: false,
            mem_limit: 64 << 20,
            input: VecDeque::new(),
            max_stack: 10_000,
            tier_up: 50,
            native_up: None,
        }
    }
}

/// Speculation statistics: how the guards emitted by the speculative
/// optimizer behaved at run time. Engine-independent — the interpreter,
/// the JIT, and the tiered engine all record through the same
/// [`Vm::guard_check`] path.
#[derive(Clone, Debug, Default)]
pub struct SpecStats {
    /// Guards the speculation pass emitted into the executing module.
    pub emitted: u64,
    /// Plan entries retracted (prior misspeculation rate over threshold).
    pub retracted: u64,
    /// Guard executions that took the speculated fast path.
    pub passed: u64,
    /// Guard executions that failed (misspeculation).
    pub failed: u64,
    /// Deoptimizations: guard failures under the tiered engine that
    /// rebuilt an interpreter frame from the translated one.
    pub deopts: u64,
}

impl SpecStats {
    /// Human-readable speculation table for `--stats`.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("  guards emitted  {:>12}\n", self.emitted));
        s.push_str(&format!("  retracted       {:>12}\n", self.retracted));
        s.push_str(&format!("  guard passed    {:>12}\n", self.passed));
        s.push_str(&format!("  guard failed    {:>12}\n", self.failed));
        s.push_str(&format!("  deopts          {:>12}\n", self.deopts));
        s
    }
}

/// An activation record.
pub(crate) struct Frame {
    pub(crate) func: FuncId,
    pub(crate) args: Vec<VmValue>,
    pub(crate) varargs: Vec<VmValue>,
    pub(crate) va_next: usize,
    pub(crate) regs: Vec<Option<VmValue>>,
    pub(crate) block: BlockId,
    pub(crate) idx: usize,
    pub(crate) allocas: Vec<u32>,
    /// The call/invoke instruction in *this* frame currently awaiting a
    /// callee's return.
    pub(crate) pending: Option<InstId>,
}

/// The execution engine.
pub struct Vm<'m> {
    m: &'m Module,
    /// Simulated memory.
    pub mem: Memory,
    /// Configuration.
    pub opts: VmOptions,
    /// Captured program output.
    pub output: String,
    /// Collected profile (when `opts.profile`).
    pub profile: ProfileData,
    /// Total instructions executed.
    pub insts_executed: u64,
    /// Executed-instruction histogram, indexed by
    /// [`Inst::opcode_index`]. Counted unconditionally (one array add per
    /// dispatched instruction); rendered by `--stats` and folded into the
    /// trace by [`Vm::flush_trace`].
    pub opcode_counts: [u64; Inst::NUM_OPCODES],
    /// Tiered-execution statistics (promotions, per-tier instruction
    /// counts, translation time). Populated by every engine; the tiered
    /// engine is the main writer.
    pub tier_stats: crate::tier::TierStats,
    /// Speculation statistics (guards installed, pass/fail outcomes,
    /// deoptimizations). All zero unless speculation was installed.
    pub spec_stats: SpecStats,
    /// The speculation overlay: which conditional branches are guards.
    /// Installed by [`Vm::install_speculation`] before execution; `None`
    /// means the module carries no speculation.
    spec: Option<std::rc::Rc<lpat_transform::SpecMap>>,
    global_addrs: Vec<u32>,
    /// JIT translation cache, dense over `FuncId` (translated on first
    /// call or promotion, reused across `run_*` invocations).
    pub(crate) jit_cache: Vec<Option<std::rc::Rc<crate::jit::LowFunc>>>,
    /// Native (tier-3) translation cache, dense over `FuncId`.
    pub(crate) native_cache: Vec<Option<std::rc::Rc<crate::native::NatCode>>>,
    /// Free-list arena of native spill-slot slabs (see `jit_reg_pool`).
    pub(crate) native_slot_pool: Vec<Vec<u32>>,
    /// Per-function tier state, dense over `FuncId`.
    pub(crate) tier: Vec<crate::tier::TierCell>,
    /// Free-list arenas of register slabs, recycled across frames so the
    /// hot call path does not allocate.
    pub(crate) jit_reg_pool: Vec<Vec<VmValue>>,
    pub(crate) interp_reg_pool: Vec<Vec<Option<VmValue>>>,
    /// Whether the running mixed loop has the native tier enabled — the
    /// one branch the JIT edge path pays for tier-3 hotness tracking.
    pub(crate) tier_native_on: bool,
    /// A JIT back-edge just promoted its function to native: the block
    /// to enter machine code at, consumed by the dispatch loop at the
    /// next boundary check and dropped on any other control transfer.
    pub(crate) pending_native_osr: Option<u32>,
}

impl<'m> Vm<'m> {
    /// Create an engine for `m`, materializing global variables into the
    /// simulated memory.
    ///
    /// # Errors
    ///
    /// Fails when globals exceed the memory limit.
    pub fn new(m: &'m Module, opts: VmOptions) -> Result<Vm<'m>, ExecError> {
        let _sp = trace::span("heap", "materialize-globals");
        let mut mem = Memory::new(opts.mem_limit, m.num_funcs() as u32);
        // Two passes: assign addresses, then write initializers (which may
        // reference other globals' addresses).
        let mut global_addrs = Vec::with_capacity(m.num_globals());
        for (_, g) in m.globals() {
            let size: u32 = m
                .types
                .try_size_of(g.value_ty)
                .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "global of unsized type"))?
                .try_into()
                .map_err(|_| ExecError::trap(TrapKind::OutOfMemory, "global too large"))?;
            global_addrs.push(mem.alloc(size.max(1))?);
        }
        let mut vm = Vm {
            m,
            mem,
            opts,
            output: String::new(),
            profile: ProfileData::default(),
            insts_executed: 0,
            opcode_counts: [0; Inst::NUM_OPCODES],
            tier_stats: crate::tier::TierStats::default(),
            spec_stats: SpecStats::default(),
            spec: None,
            global_addrs,
            jit_cache: vec![None; m.num_funcs()],
            native_cache: vec![None; m.num_funcs()],
            native_slot_pool: Vec::new(),
            tier: vec![crate::tier::TierCell::Cold(0); m.num_funcs()],
            jit_reg_pool: Vec::new(),
            interp_reg_pool: Vec::new(),
            tier_native_on: false,
            pending_native_osr: None,
        };
        for (gid, g) in m.globals() {
            if let Some(init) = g.init {
                let addr = vm.global_addrs[gid.index()];
                vm.write_const(addr, g.value_ty, init)?;
            }
        }
        Ok(vm)
    }

    /// Address of a global.
    pub fn global_addr(&self, g: lpat_core::GlobalId) -> u32 {
        self.global_addrs[g.index()]
    }

    /// The module this engine executes.
    pub fn module(&self) -> &'m Module {
        self.m
    }

    /// Install a speculation overlay: the guard map produced by
    /// `lpat_transform::speculate` for *this engine's module*, plus the
    /// plan's emitted/retracted counts for `--stats`. Must be called
    /// before execution (guards lower differently in translated code,
    /// and translations are cached).
    pub fn install_speculation(
        &mut self,
        map: std::rc::Rc<lpat_transform::SpecMap>,
        emitted: u64,
        retracted: u64,
    ) {
        self.spec = if map.is_empty() { None } else { Some(map) };
        self.spec_stats.emitted = emitted;
        self.spec_stats.retracted = retracted;
    }

    /// The installed speculation overlay, if any (used at translation).
    pub(crate) fn spec_map(&self) -> Option<&lpat_transform::SpecMap> {
        self.spec.as_deref()
    }

    /// Record one guard execution and decide its direction. `actual` is
    /// the evaluated guard condition; the `spec.guard` fault site can
    /// force the fail side (modeling 100% misspeculation) without
    /// touching the condition's dataflow value, so forced failures stay
    /// observationally equivalent across engines. Shared by the
    /// interpreter and the JIT so counters and the persisted guard
    /// profile are engine-independent.
    pub(crate) fn guard_check(&mut self, gid: u32, actual: bool) -> bool {
        let pass = match lpat_core::faultpoint!("spec.guard") {
            Some(lpat_core::FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                actual
            }
            Some(_) => false,
            None => actual,
        };
        if pass {
            self.spec_stats.passed += 1;
        } else {
            self.spec_stats.failed += 1;
        }
        if self.opts.profile {
            self.profile.record_guard(gid, !pass);
        }
        pass
    }

    /// Dispatch an external call (shared with the JIT engine).
    pub(crate) fn call_external_by_id(
        &mut self,
        f: FuncId,
        args: &[VmValue],
    ) -> Result<Option<VmValue>, ExecError> {
        self.call_external(f, args)
    }

    /// Serialize a constant of type `ty` into memory at `addr`.
    fn write_const(&mut self, addr: u32, ty: TypeId, c: ConstId) -> Result<(), ExecError> {
        self.write_const_at(addr, ty, c, 0)
    }

    fn write_const_at(
        &mut self,
        addr: u32,
        ty: TypeId,
        c: ConstId,
        depth: u32,
    ) -> Result<(), ExecError> {
        // This recursion runs on the host stack, so a deeply nested
        // aggregate constant (possible in decoded-but-unverified modules)
        // needs an explicit bound.
        if depth > 512 {
            return Err(ExecError::trap(
                TrapKind::StackOverflow,
                "constant nesting too deep",
            ));
        }
        match self.m.consts.get(c).clone() {
            Const::Zero(_) | Const::Undef(_) => {
                let size: u32 = self
                    .m
                    .types
                    .try_size_of(ty)
                    .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "unsized zero constant"))?
                    .try_into()
                    .map_err(|_| ExecError::trap(TrapKind::OutOfMemory, "constant too large"))?;
                // Zero in bounded chunks so a hostile declared size hits
                // the range check before any proportional host allocation.
                let zeros = [0u8; 4096];
                let mut done = 0u32;
                while done < size {
                    let n = (size - done).min(zeros.len() as u32);
                    let at = addr.checked_add(done).ok_or_else(|| {
                        ExecError::trap(TrapKind::BadAccess, "address wraparound")
                    })?;
                    self.mem.write_bytes(at, &zeros[..n as usize])?;
                    done += n;
                }
            }
            Const::Array { elems, ty: aty } => {
                let elem_ty = match self.m.types.ty(aty) {
                    Type::Array { elem, .. } => *elem,
                    _ => return Err(ExecError::trap(TrapKind::Invalid, "bad array constant")),
                };
                let stride =
                    self.m.types.try_size_of(elem_ty).ok_or_else(|| {
                        ExecError::trap(TrapKind::Invalid, "unsized array element")
                    })?;
                for (i, e) in elems.iter().enumerate() {
                    let at = (i as u64)
                        .checked_mul(stride)
                        .and_then(|o| o.checked_add(addr as u64))
                        .filter(|&end| end <= u32::MAX as u64)
                        .ok_or_else(|| ExecError::trap(TrapKind::BadAccess, "address wraparound"))?
                        as u32;
                    self.write_const_at(at, elem_ty, *e, depth + 1)?;
                }
            }
            Const::Struct { fields, ty: sty } => {
                let ftys = match self.m.types.ty(sty) {
                    Type::Struct { fields, .. } => fields.clone(),
                    _ => return Err(ExecError::trap(TrapKind::Invalid, "bad struct constant")),
                };
                if fields.len() != ftys.len() || self.m.types.try_size_of(sty).is_none() {
                    return Err(ExecError::trap(TrapKind::Invalid, "bad struct constant"));
                }
                for (i, e) in fields.iter().enumerate() {
                    let off = self.m.types.field_offset(sty, i);
                    let at = (addr as u64)
                        .checked_add(off)
                        .filter(|&end| end <= u32::MAX as u64)
                        .ok_or_else(|| ExecError::trap(TrapKind::BadAccess, "address wraparound"))?
                        as u32;
                    self.write_const_at(at, ftys[i], *e, depth + 1)?;
                }
            }
            _ => {
                let v = self.const_value(c)?;
                self.mem.store(addr, v)?;
            }
        }
        Ok(())
    }

    /// Evaluate a scalar constant.
    fn const_value(&self, c: ConstId) -> Result<VmValue, ExecError> {
        Ok(match self.m.consts.get(c) {
            Const::Bool(b) => VmValue::Bool(*b),
            Const::Int { kind, value } => VmValue::Int {
                kind: *kind,
                v: *value,
            },
            Const::F32(bits) => VmValue::F32(f32::from_bits(*bits)),
            Const::F64(bits) => VmValue::F64(f64::from_bits(*bits)),
            Const::Null(_) => VmValue::Ptr(0),
            Const::Undef(t) if self.m.types.is_first_class(*t) => {
                VmValue::zero_of(&self.m.types, *t)
            }
            Const::Zero(t) if self.m.types.is_first_class(*t) => {
                VmValue::zero_of(&self.m.types, *t)
            }
            Const::GlobalAddr(g) => VmValue::Ptr(self.global_addrs[g.index()]),
            Const::FuncAddr(f) => VmValue::Ptr(Memory::func_addr(f.index())),
            other => {
                return Err(ExecError::trap(
                    TrapKind::Invalid,
                    format!("aggregate constant {other:?} used as scalar"),
                ))
            }
        })
    }

    /// Run `main()` and return its integer exit value (an explicit
    /// `exit(code)` also returns here).
    pub fn run_main(&mut self) -> Result<i64, ExecError> {
        let mut sp = trace::span("vm", "interp @main");
        let result = {
            let main = self
                .m
                .func_by_name("main")
                .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "no @main in module"))?;
            match self.run_function(main, vec![]) {
                Ok(Some(v)) => v
                    .as_i64()
                    .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "main returned non-integer")),
                Ok(None) => Ok(0),
                Err(ExecError::Exited(c)) => Ok(c as i64),
                Err(e) => Err(e),
            }
        };
        if trace::enabled() {
            match &result {
                Ok(code) => sp.arg("exit", code.to_string()),
                Err(e) => {
                    sp.arg("error", e.to_string());
                    trace::instant_args("vm", "trap", vec![("error", e.to_string())]);
                }
            }
        }
        result
    }

    /// Call function `f` with `args`; returns its return value.
    ///
    /// # Errors
    ///
    /// Any trap, uncaught `unwind`, or `exit` call surfaces here.
    pub fn run_function(
        &mut self,
        f: FuncId,
        args: Vec<VmValue>,
    ) -> Result<Option<VmValue>, ExecError> {
        let mut stack: Vec<Frame> = Vec::new();
        self.push_frame(&mut stack, f, args, vec![])?;
        loop {
            // Fetch the next instruction of the top frame.
            let m = self.m;
            let fr = stack.last_mut().expect("non-empty stack");
            let func = m.func(fr.func);
            let insts = func.block_insts(fr.block);
            if fr.idx >= insts.len() {
                return Err(ExecError::trap(
                    TrapKind::Invalid,
                    "fell off the end of a block",
                ));
            }
            let iid = insts[fr.idx];
            let block = fr.block;
            // φ-nodes were already executed on the incoming edge (in
            // `transfer`); visiting one in sequence is free — it is not a
            // real instruction at run time.
            let fetched = func.inst(iid);
            if !matches!(fetched, Inst::Phi { .. }) {
                self.charge_interp(fetched.opcode_index())?;
            }
            match self.step(fr, block, iid, fetched)? {
                StepResult::Continue => {
                    fr.idx += 1;
                }
                StepResult::Jumped => {}
                StepResult::Call {
                    target,
                    fixed,
                    extra,
                } => {
                    self.push_frame(&mut stack, target, fixed, extra)?;
                }
                StepResult::Returned(v) => {
                    let done = self.pop_frame(&mut stack)?;
                    if done {
                        return Ok(v);
                    }
                    let fr = stack.last_mut().unwrap();
                    let site = fr.pending.take().expect("return into pending call");
                    if let Some(v) = v {
                        fr.regs[site.index()] = Some(v);
                    }
                    // An invoke transfers to its normal successor; a call
                    // continues in-line.
                    match m.func(fr.func).inst(site) {
                        Inst::Invoke { normal, .. } => {
                            let normal = *normal;
                            let from = fr.block;
                            self.transfer(stack.last_mut().unwrap(), from, normal)?;
                        }
                        _ => {
                            fr.idx += 1;
                        }
                    }
                }
                StepResult::Unwinding => {
                    if trace::enabled() {
                        let fname = {
                            let top = stack.last().expect("non-empty stack");
                            self.m.func(top.func).name.clone()
                        };
                        trace::instant_args("vm", "unwind", vec![("from", fname)]);
                    }
                    // Pop frames until one is pending on an invoke.
                    loop {
                        let done = self.pop_frame(&mut stack)?;
                        if done {
                            return Err(ExecError::trap(
                                TrapKind::UncaughtUnwind,
                                "unwind reached the bottom of the stack",
                            ));
                        }
                        let fr = stack.last_mut().unwrap();
                        let site = fr.pending.take().expect("unwind into pending call");
                        if let Inst::Invoke { unwind, .. } = self.m.func(fr.func).inst(site) {
                            let unwind = *unwind;
                            let from = fr.block;
                            self.transfer(stack.last_mut().unwrap(), from, unwind)?;
                            break;
                        }
                        // A plain call: keep unwinding through it.
                    }
                }
            }
        }
    }

    /// Charge one interpreted instruction against the fuel budget and the
    /// dispatch counters.
    #[inline]
    pub(crate) fn charge_interp(&mut self, opidx: usize) -> Result<(), ExecError> {
        if let Some(fuel) = &mut self.opts.fuel {
            if *fuel == 0 {
                return Err(ExecError::trap(TrapKind::OutOfFuel, "instruction budget"));
            }
            *fuel -= 1;
        }
        self.insts_executed += 1;
        self.tier_stats.interp_insts += 1;
        self.opcode_counts[opidx] += 1;
        Ok(())
    }

    /// Charge one translated instruction. Identical accounting to
    /// [`Vm::charge_interp`] (so fuel and the opcode histogram are
    /// engine-independent) but attributed to the JIT tier.
    #[inline]
    pub(crate) fn charge_jit(&mut self, opidx: usize) -> Result<(), ExecError> {
        if let Some(fuel) = &mut self.opts.fuel {
            if *fuel == 0 {
                return Err(ExecError::trap(TrapKind::OutOfFuel, "instruction budget"));
            }
            *fuel -= 1;
        }
        self.insts_executed += 1;
        self.tier_stats.jit_insts += 1;
        self.opcode_counts[opidx] += 1;
        Ok(())
    }

    /// Build an interpreter activation record for a call to `f`, recording
    /// the call in the profile and drawing the register slab from the
    /// free-list arena. Stack-depth policy is the caller's job.
    pub(crate) fn make_frame(
        &mut self,
        f: FuncId,
        args: Vec<VmValue>,
        varargs: Vec<VmValue>,
    ) -> Result<Frame, ExecError> {
        let func = self.m.func(f);
        if func.is_declaration() {
            return Err(ExecError::trap(
                TrapKind::Invalid,
                format!("call into declaration @{}", func.name),
            ));
        }
        if self.opts.profile {
            self.profile.record_call(f);
            self.profile.record_block(f, func.entry());
        }
        let mut regs = self.interp_reg_pool.pop().unwrap_or_default();
        regs.clear();
        regs.resize(func.num_inst_slots(), None);
        Ok(Frame {
            func: f,
            args,
            varargs,
            va_next: 0,
            regs,
            block: func.entry(),
            idx: 0,
            allocas: Vec::new(),
            pending: None,
        })
    }

    fn push_frame(
        &mut self,
        stack: &mut Vec<Frame>,
        f: FuncId,
        args: Vec<VmValue>,
        varargs: Vec<VmValue>,
    ) -> Result<(), ExecError> {
        if stack.len() >= self.opts.max_stack {
            return Err(ExecError::trap(TrapKind::StackOverflow, "call depth"));
        }
        let fr = self.make_frame(f, args, varargs)?;
        stack.push(fr);
        Ok(())
    }

    /// Release a popped frame's allocas and return its register slab to
    /// the arena.
    pub(crate) fn recycle_frame(&mut self, mut fr: Frame) -> Result<(), ExecError> {
        let mut regs = std::mem::take(&mut fr.regs);
        regs.clear();
        self.interp_reg_pool.push(regs);
        for a in fr.allocas {
            self.mem.release(a)?;
        }
        Ok(())
    }

    /// Pop the top frame, releasing its allocas. Returns `true` when the
    /// stack is now empty.
    fn pop_frame(&mut self, stack: &mut Vec<Frame>) -> Result<bool, ExecError> {
        let fr = stack.pop().expect("frame to pop");
        self.recycle_frame(fr)?;
        Ok(stack.is_empty())
    }

    /// Transfer control along the CFG edge `from -> to`, executing φs.
    pub(crate) fn transfer(
        &mut self,
        fr: &mut Frame,
        from: BlockId,
        to: BlockId,
    ) -> Result<(), ExecError> {
        let func = self.m.func(fr.func);
        // Simultaneous φ assignment: read all inputs first.
        let mut updates: Vec<(InstId, VmValue)> = Vec::new();
        for &iid in func.block_insts(to) {
            if let Inst::Phi { incoming } = func.inst(iid) {
                let (v, _) = incoming.iter().find(|(_, b)| *b == from).ok_or_else(|| {
                    ExecError::trap(
                        TrapKind::Invalid,
                        format!("phi in bb{} lacks edge from bb{}", to.index(), from.index()),
                    )
                })?;
                updates.push((iid, self.value(fr, *v)?));
            }
        }
        for (iid, v) in updates {
            fr.regs[iid.index()] = Some(v);
        }
        if self.opts.profile {
            self.profile.record_edge(fr.func, from, to);
            self.profile.record_block(fr.func, to);
        }
        fr.block = to;
        fr.idx = 0;
        Ok(())
    }

    /// Evaluate an operand in a frame.
    pub(crate) fn value(&self, fr: &Frame, v: Value) -> Result<VmValue, ExecError> {
        match v {
            Value::Inst(i) => fr.regs[i.index()].ok_or_else(|| {
                ExecError::trap(
                    TrapKind::Invalid,
                    format!("read of unassigned register %t{}", i.index()),
                )
            }),
            Value::Arg(n) => {
                fr.args.get(n as usize).copied().ok_or_else(|| {
                    ExecError::trap(TrapKind::Invalid, "argument index out of range")
                })
            }
            Value::Const(c) => self.const_value(c),
        }
    }

    /// Execute one instruction in frame `fr` (the top of whatever stack
    /// the caller maintains — the pure interpreter's or the tiered
    /// engine's mixed stack). Calls into defined functions are *not*
    /// pushed here: `fr.pending` is set and [`StepResult::Call`] returned
    /// so the caller can pick the callee's tier.
    ///
    /// `inst` is the already-fetched instruction for `iid` — borrowed from
    /// the module (which outlives the engine), never cloned: several
    /// opcodes carry heap-allocated operand lists (`call`, `switch`,
    /// `getelementptr`), and cloning them per dispatch dominated the
    /// interpreter's hot loop.
    pub(crate) fn step(
        &mut self,
        fr: &mut Frame,
        block: BlockId,
        iid: InstId,
        inst: &'m Inst,
    ) -> Result<StepResult, ExecError> {
        let fid = fr.func;
        let func = self.m.func(fid);
        // Shorthand to evaluate operands in the frame.
        macro_rules! ev {
            ($v:expr) => {{
                self.value(fr, $v)?
            }};
        }
        macro_rules! setreg {
            ($v:expr) => {{
                fr.regs[iid.index()] = Some($v);
            }};
        }
        match inst {
            Inst::Phi { .. } => {
                // Already assigned by `transfer` on block entry.
                Ok(StepResult::Continue)
            }
            Inst::Ret(v) => {
                let out = match v {
                    Some(v) => Some(ev!(*v)),
                    None => None,
                };
                Ok(StepResult::Returned(out))
            }
            Inst::Br(t) => {
                self.transfer(fr, block, *t)?;
                Ok(StepResult::Jumped)
            }
            Inst::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                let c = ev!(*cond)
                    .as_bool()
                    .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "non-bool condition"))?;
                // A guard is an ordinary conditional branch plus
                // bookkeeping: when the speculation overlay registers this
                // branch, record the outcome (and honor a forced failure).
                // The interpreter needs no deoptimization — it already
                // *is* the deoptimized tier; the slow path is just taken.
                let guard = self
                    .spec
                    .as_ref()
                    .and_then(|s| s.guard_at(fid, iid))
                    .map(|g| g.id);
                let c = match guard {
                    Some(gid) => self.guard_check(gid, c),
                    None => c,
                };
                let t = if c { *then_bb } else { *else_bb };
                self.transfer(fr, block, t)?;
                Ok(StepResult::Jumped)
            }
            Inst::Switch {
                val,
                default,
                cases,
            } => {
                let v = ev!(*val)
                    .as_i64()
                    .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "non-int switch"))?;
                let mut target = *default;
                for (c, b) in cases {
                    if let Some((_, cv)) = self.m.consts.as_int(*c) {
                        if cv == v {
                            target = *b;
                            break;
                        }
                    }
                }
                self.transfer(fr, block, target)?;
                Ok(StepResult::Jumped)
            }
            Inst::Unwind => Ok(StepResult::Unwinding),
            Inst::Unreachable => Err(ExecError::trap(
                TrapKind::Unreachable,
                "unreachable executed",
            )),
            Inst::Bin { op, lhs, rhs } => {
                let a = ev!(*lhs);
                let b = ev!(*rhs);
                setreg!(exec_bin(*op, a, b)?);
                Ok(StepResult::Continue)
            }
            Inst::Cmp { pred, lhs, rhs } => {
                let a = ev!(*lhs);
                let b = ev!(*rhs);
                setreg!(VmValue::Bool(exec_cmp(*pred, a, b)?));
                Ok(StepResult::Continue)
            }
            Inst::Cast { val, to } => {
                let v = ev!(*val);
                setreg!(exec_cast(&self.m.types, v, *to)?);
                Ok(StepResult::Continue)
            }
            Inst::Malloc { elem_ty, count } | Inst::Alloca { elem_ty, count } => {
                let n = match count {
                    None => 1u64,
                    Some(c) => ev!(*c).as_i64().unwrap_or(0).max(0) as u64,
                };
                let size = self
                    .m
                    .types
                    .try_size_of(*elem_ty)
                    .ok_or_else(|| {
                        ExecError::trap(TrapKind::Invalid, "allocation of unsized type")
                    })?
                    .saturating_mul(n);
                let size: u32 = size
                    .try_into()
                    .map_err(|_| ExecError::trap(TrapKind::OutOfMemory, "allocation too large"))?;
                let addr = self.mem.alloc(size.max(1))?;
                if matches!(inst, Inst::Alloca { .. }) {
                    fr.allocas.push(addr);
                }
                setreg!(VmValue::Ptr(addr));
                Ok(StepResult::Continue)
            }
            Inst::Free(p) => {
                let a = ev!(*p)
                    .as_ptr()
                    .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "free of non-pointer"))?;
                if a != 0 {
                    self.mem.release(a)?;
                }
                Ok(StepResult::Continue)
            }
            Inst::Load { ptr } => {
                let a = ev!(*ptr)
                    .as_ptr()
                    .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "load of non-pointer"))?;
                let ty = func.inst_ty(iid);
                let v = self.load_typed(a, ty)?;
                setreg!(v);
                Ok(StepResult::Continue)
            }
            Inst::Store { val, ptr } => {
                let v = ev!(*val);
                let a = ev!(*ptr)
                    .as_ptr()
                    .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "store to non-pointer"))?;
                self.mem.store(a, v)?;
                Ok(StepResult::Continue)
            }
            Inst::Gep { ptr, indices } => {
                let base = ev!(*ptr)
                    .as_ptr()
                    .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "gep on non-pointer"))?;
                let fr_vals: Vec<i64> = indices
                    .iter()
                    .map(|&i| {
                        self.value(fr, i).and_then(|v| {
                            v.as_i64().ok_or_else(|| {
                                ExecError::trap(TrapKind::Invalid, "non-int gep index")
                            })
                        })
                    })
                    .collect::<Result<_, _>>()?;
                let pty = self.m.value_type(func, *ptr);
                let off = self.gep_offset(pty, indices, &fr_vals)?;
                setreg!(VmValue::Ptr(base.wrapping_add(off as u32)));
                Ok(StepResult::Continue)
            }
            Inst::VaArg { .. } => {
                let v = fr.varargs.get(fr.va_next).copied().ok_or_else(|| {
                    ExecError::trap(TrapKind::Invalid, "vaarg past the end of the variadic list")
                })?;
                fr.va_next += 1;
                fr.regs[iid.index()] = Some(v);
                Ok(StepResult::Continue)
            }
            Inst::Call { callee, args } | Inst::Invoke { callee, args, .. } => {
                if self.opts.profile {
                    self.profile.record_callsite(fid, iid);
                }
                let target = self.resolve_callee(fr, *callee)?;
                let argv: Vec<VmValue> = args
                    .iter()
                    .map(|&a| self.value(fr, a))
                    .collect::<Result<_, _>>()?;
                let tf = self.m.func(target);
                if tf.is_declaration() {
                    // Intrinsic / external.
                    let ret = self.call_external(target, &argv)?;
                    if let Some(v) = ret {
                        setreg!(v);
                    }
                    // Invokes of externals return normally (externals here
                    // never unwind).
                    if let Inst::Invoke { normal, .. } = inst {
                        let n = *normal;
                        self.transfer(fr, block, n)?;
                        return Ok(StepResult::Jumped);
                    }
                    return Ok(StepResult::Continue);
                }
                let nfixed = tf.num_params();
                let (fixed, extra) = if argv.len() > nfixed {
                    let (a, b) = argv.split_at(nfixed);
                    (a.to_vec(), b.to_vec())
                } else {
                    (argv, Vec::new())
                };
                fr.pending = Some(iid);
                Ok(StepResult::Call {
                    target,
                    fixed,
                    extra,
                })
            }
        }
    }

    fn resolve_callee(&self, fr: &Frame, callee: Value) -> Result<FuncId, ExecError> {
        let v = self.value(fr, callee)?;
        let addr = v
            .as_ptr()
            .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "call through non-pointer"))?;
        self.mem
            .addr_to_func(addr)
            .map(FuncId::from_index)
            .ok_or_else(|| {
                ExecError::trap(
                    TrapKind::Invalid,
                    format!("call through {addr:#x}, not a function address"),
                )
            })
    }

    fn load_typed(&mut self, addr: u32, ty: TypeId) -> Result<VmValue, ExecError> {
        match self.m.types.ty(ty) {
            Type::Bool => self.mem.load_bool(addr),
            Type::Int(k) => self.mem.load_int(addr, *k),
            Type::F32 => self.mem.load_f32(addr),
            Type::F64 => self.mem.load_f64(addr),
            Type::Ptr(_) => self.mem.load_ptr(addr),
            other => Err(ExecError::trap(
                TrapKind::Invalid,
                format!("load of non-first-class type {other:?}"),
            )),
        }
    }

    /// Byte offset of a GEP with runtime index values.
    fn gep_offset(
        &self,
        base_ptr: TypeId,
        indices: &[Value],
        vals: &[i64],
    ) -> Result<i64, ExecError> {
        let tys = &self.m.types;
        let mut cur = tys
            .pointee(base_ptr)
            .ok_or_else(|| ExecError::trap(TrapKind::Invalid, "gep base not a pointer"))?;
        let mut off: i64 = 0;
        for (k, &v) in vals.iter().enumerate() {
            if k == 0 {
                let sz = tys.try_size_of(cur).ok_or_else(|| {
                    ExecError::trap(TrapKind::Invalid, "gep through unsized type")
                })?;
                off = off.wrapping_add(v.wrapping_mul(sz as i64));
                continue;
            }
            match tys.ty(cur).clone() {
                Type::Struct { fields, .. } => {
                    let fi = v as usize;
                    if fi >= fields.len() || tys.try_size_of(cur).is_none() {
                        return Err(ExecError::trap(TrapKind::Invalid, "struct index range"));
                    }
                    off = off.wrapping_add(tys.field_offset(cur, fi) as i64);
                    cur = fields[fi];
                }
                Type::Array { elem, .. } => {
                    let sz = tys.try_size_of(elem).ok_or_else(|| {
                        ExecError::trap(TrapKind::Invalid, "gep through unsized type")
                    })?;
                    off = off.wrapping_add(v.wrapping_mul(sz as i64));
                    cur = elem;
                }
                _ => return Err(ExecError::trap(TrapKind::Invalid, "gep into scalar")),
            }
        }
        let _ = indices;
        Ok(off)
    }

    /// The `n` most-executed opcodes so far: `(mnemonic, count)`, sorted by
    /// descending count (ties broken by opcode index, so the order is
    /// deterministic). Zero-count opcodes are omitted.
    pub fn top_opcodes(&self, n: usize) -> Vec<(&'static str, u64)> {
        let mut order: Vec<usize> = (0..Inst::NUM_OPCODES)
            .filter(|&i| self.opcode_counts[i] > 0)
            .collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(self.opcode_counts[i]), i));
        order
            .into_iter()
            .take(n)
            .map(|i| (Inst::opcode_mnemonic(i), self.opcode_counts[i]))
            .collect()
    }

    /// Fold the engine's accumulated counters — dispatch total, per-opcode
    /// histogram, heap traffic — into the trace layer. Counts are
    /// cumulative, so call once, after the last run, before exporting.
    pub fn flush_trace(&self) {
        if !trace::enabled() {
            return;
        }
        trace::counter("vm.insts", self.insts_executed);
        for (i, &n) in self.opcode_counts.iter().enumerate() {
            trace::counter(OP_COUNTER_NAMES[i], n);
        }
        let t = &self.tier_stats;
        trace::counter("vm.tier.promotions", t.promoted);
        trace::counter("vm.tier.demotions", t.demoted);
        trace::counter("vm.tier.warm", t.warmed);
        trace::counter("vm.tier.osr", t.osr);
        trace::counter("vm.tier.translated", t.translated);
        trace::counter("vm.tier.interp_insts", t.interp_insts);
        trace::counter("vm.tier.jit_insts", t.jit_insts);
        trace::counter("vm.tier.native.promotions", t.native_promoted);
        trace::counter("vm.tier.native.demotions", t.native_demoted);
        trace::counter("vm.tier.native.osr", t.native_osr);
        trace::counter("vm.tier.native.translated", t.native_translated);
        trace::counter("vm.tier.native.insts", t.native_insts);
        // Speculation counters are exported unconditionally (all zero
        // without `--speculate`) so trace consumers see a stable key set.
        let s = &self.spec_stats;
        trace::counter_keyed("vm.spec.emitted", s.emitted);
        trace::counter_keyed("vm.spec.retracted", s.retracted);
        trace::counter_keyed("vm.spec.passed", s.passed);
        trace::counter_keyed("vm.spec.failed", s.failed);
        trace::counter_keyed("vm.spec.deopts", s.deopts);
        let h = self.mem.stats();
        trace::counter("heap.allocs", h.allocs);
        trace::counter("heap.frees", h.frees);
        trace::counter("heap.coalesces", h.coalesces);
        trace::counter("heap.peak_bytes", h.peak_bytes);
    }

    /// Dispatch a call to an external declaration (the VM's tiny runtime
    /// library: I/O and process control).
    fn call_external(&mut self, f: FuncId, args: &[VmValue]) -> Result<Option<VmValue>, ExecError> {
        use std::fmt::Write;
        let name = self.m.func(f).name.clone();
        let geti = |i: usize| -> i64 { args.get(i).and_then(|v| v.as_i64()).unwrap_or(0) };
        match name.as_str() {
            "print_int" => {
                let _ = writeln!(self.output, "{}", geti(0));
                Ok(None)
            }
            "print_double" => {
                let v = match args.first() {
                    Some(VmValue::F64(f)) => *f,
                    Some(VmValue::F32(f)) => *f as f64,
                    _ => 0.0,
                };
                let _ = writeln!(self.output, "{v}");
                Ok(None)
            }
            "print_str" | "puts" => {
                let addr = args.first().and_then(|v| v.as_ptr()).unwrap_or(0);
                if addr != 0 {
                    let bytes = self.mem.read_cstr(addr, 1 << 20)?;
                    self.output.push_str(&String::from_utf8_lossy(&bytes));
                }
                self.output.push('\n');
                Ok(Some(VmValue::int(IntKind::S32, 0)))
            }
            "putchar" => {
                let c = geti(0) as u8 as char;
                self.output.push(c);
                Ok(Some(VmValue::int(IntKind::S32, geti(0))))
            }
            "read_int" => {
                let v = self.opts.input.pop_front().unwrap_or(0);
                Ok(Some(VmValue::int(IntKind::S32, v)))
            }
            "exit" => Err(ExecError::Exited(geti(0) as i32)),
            "abort" => Err(ExecError::trap(TrapKind::Invalid, "abort() called")),
            other => Err(ExecError::trap(
                TrapKind::Invalid,
                format!("call to unknown external @{other}"),
            )),
        }
    }
}

pub(crate) enum StepResult {
    Continue,
    Jumped,
    /// A call into a defined function: `fr.pending` is already set; the
    /// caller decides which tier executes the callee and pushes the frame.
    Call {
        target: FuncId,
        fixed: Vec<VmValue>,
        extra: Vec<VmValue>,
    },
    Returned(Option<VmValue>),
    Unwinding,
}

// ----------------------------------------------------------------------
// Scalar semantics
// ----------------------------------------------------------------------

pub(crate) fn exec_bin(op: BinOp, a: VmValue, b: VmValue) -> Result<VmValue, ExecError> {
    match (a, b) {
        (VmValue::Int { kind, v: x }, VmValue::Int { v: y, .. }) => {
            let signed = kind.is_signed();
            let v = match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::Div => {
                    if y == 0 {
                        return Err(ExecError::trap(TrapKind::DivByZero, "integer division"));
                    }
                    if signed {
                        x.wrapping_div(y)
                    } else {
                        ((x as u64).wrapping_div(y as u64)) as i64
                    }
                }
                BinOp::Rem => {
                    if y == 0 {
                        return Err(ExecError::trap(TrapKind::DivByZero, "integer remainder"));
                    }
                    if signed {
                        x.wrapping_rem(y)
                    } else {
                        ((x as u64).wrapping_rem(y as u64)) as i64
                    }
                }
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
                BinOp::Shl => x.wrapping_shl((y as u64 % kind.bits() as u64) as u32),
                BinOp::Shr => {
                    let sh = (y as u64 % kind.bits() as u64) as u32;
                    if signed {
                        x.wrapping_shr(sh)
                    } else {
                        let mask = if kind.bits() == 64 {
                            u64::MAX
                        } else {
                            (1u64 << kind.bits()) - 1
                        };
                        (((x as u64) & mask) >> sh) as i64
                    }
                }
            };
            Ok(VmValue::int(kind, v))
        }
        (VmValue::F64(x), VmValue::F64(y)) => Ok(VmValue::F64(exec_fbin(op, x, y)?)),
        (VmValue::F32(x), VmValue::F32(y)) => {
            Ok(VmValue::F32(exec_fbin(op, x as f64, y as f64)? as f32))
        }
        (VmValue::Bool(x), VmValue::Bool(y)) => Ok(VmValue::Bool(match op {
            BinOp::And => x && y,
            BinOp::Or => x || y,
            BinOp::Xor => x != y,
            _ => return Err(ExecError::trap(TrapKind::Invalid, "arith on bool")),
        })),
        _ => Err(ExecError::trap(
            TrapKind::Invalid,
            format!("{} on mismatched operands", op.name()),
        )),
    }
}

fn exec_fbin(op: BinOp, x: f64, y: f64) -> Result<f64, ExecError> {
    Ok(match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::Rem => x % y,
        _ => return Err(ExecError::trap(TrapKind::Invalid, "bitwise on float")),
    })
}

pub(crate) fn exec_cmp(pred: CmpPred, a: VmValue, b: VmValue) -> Result<bool, ExecError> {
    use std::cmp::Ordering;
    let ord: Option<Ordering> = match (a, b) {
        (VmValue::Int { kind, v: x }, VmValue::Int { v: y, .. }) => Some(if kind.is_signed() {
            x.cmp(&y)
        } else {
            (x as u64).cmp(&(y as u64))
        }),
        (VmValue::Bool(x), VmValue::Bool(y)) => Some(x.cmp(&y)),
        (VmValue::F32(x), VmValue::F32(y)) => x.partial_cmp(&y),
        (VmValue::F64(x), VmValue::F64(y)) => x.partial_cmp(&y),
        (VmValue::Ptr(x), VmValue::Ptr(y)) => Some(x.cmp(&y)),
        _ => return Err(ExecError::trap(TrapKind::Invalid, "mismatched comparison")),
    };
    Ok(match ord {
        // IEEE: every ordered predicate is false on unordered operands,
        // except != which is true.
        None => matches!(pred, CmpPred::Ne),
        Some(o) => match pred {
            CmpPred::Eq => o == Ordering::Equal,
            CmpPred::Ne => o != Ordering::Equal,
            CmpPred::Lt => o == Ordering::Less,
            CmpPred::Gt => o == Ordering::Greater,
            CmpPred::Le => o != Ordering::Greater,
            CmpPred::Ge => o != Ordering::Less,
        },
    })
}

pub(crate) fn exec_cast(
    tc: &lpat_core::TypeCtx,
    v: VmValue,
    to: TypeId,
) -> Result<VmValue, ExecError> {
    let tt = tc.ty(to).clone();
    Ok(match (v, tt) {
        (VmValue::Int { v, .. }, Type::Int(k)) => VmValue::int(k, v),
        (VmValue::Int { kind, v }, Type::F32) => {
            let f = if kind.is_signed() {
                v as f64
            } else {
                v as u64 as f64
            };
            VmValue::F32(f as f32)
        }
        (VmValue::Int { kind, v }, Type::F64) => {
            let f = if kind.is_signed() {
                v as f64
            } else {
                v as u64 as f64
            };
            VmValue::F64(f)
        }
        (VmValue::Int { v, .. }, Type::Bool) => VmValue::Bool(v != 0),
        (VmValue::Int { v, .. }, Type::Ptr(_)) => VmValue::Ptr(v as u32),
        (VmValue::Bool(b), Type::Int(k)) => VmValue::int(k, b as i64),
        (VmValue::Bool(b), Type::Bool) => VmValue::Bool(b),
        (VmValue::F32(f), t) => cast_float(f as f64, t)?,
        (VmValue::F64(f), t) => cast_float(f, t)?,
        (VmValue::Ptr(p), Type::Ptr(_)) => VmValue::Ptr(p),
        (VmValue::Ptr(p), Type::Int(k)) => VmValue::int(k, p as i64),
        (VmValue::Ptr(p), Type::Bool) => VmValue::Bool(p != 0),
        (v, t) => {
            return Err(ExecError::trap(
                TrapKind::Invalid,
                format!("unsupported cast of {v:?} to {t:?}"),
            ))
        }
    })
}

fn cast_float(f: f64, t: Type) -> Result<VmValue, ExecError> {
    Ok(match t {
        Type::F32 => VmValue::F32(f as f32),
        Type::F64 => VmValue::F64(f),
        Type::Bool => VmValue::Bool(f != 0.0),
        Type::Int(k) => {
            let v = if k.is_signed() {
                f.clamp(i64::MIN as f64, i64::MAX as f64) as i64
            } else {
                f.clamp(0.0, u64::MAX as f64) as u64 as i64
            };
            VmValue::int(k, v)
        }
        other => {
            return Err(ExecError::trap(
                TrapKind::Invalid,
                format!("unsupported float cast to {other:?}"),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_counter_names_align_with_opcode_table() {
        for (i, name) in OP_COUNTER_NAMES.iter().enumerate() {
            assert_eq!(
                name.strip_prefix("vm.op."),
                Some(Inst::opcode_mnemonic(i)),
                "counter name {i} out of sync with the opcode table"
            );
        }
    }
}
