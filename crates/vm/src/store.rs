//! The crash-safe lifelong store (paper §3.3, §3.5–§3.6).
//!
//! The paper's defining claim is *lifelong* transformation: profile data
//! gathered at runtime is stored alongside the bytecode and consumed by an
//! idle-time reoptimizer across runs. This module is that durable half — a
//! versioned on-disk cache directory holding
//!
//! * serialized [`ProfileData`], keyed by a content hash of the module it
//!   was gathered on (a profile from changed bytecode is *stale* and is
//!   quarantined, never applied), with successive runs merged by
//!   saturating addition so hot-loop detection sharpens over a program's
//!   lifetime; and
//! * reoptimized bytecode produced by the PGO pipeline, keyed the same
//!   way.
//!
//! # Always make progress
//!
//! Every failure mode degrades to "start fresh", never to a poisoned
//! cache or a dead process:
//!
//! | failure                      | classification                 | recovery |
//! |------------------------------|--------------------------------|----------|
//! | file absent                  | [`StoreError::Missing`]        | regenerate |
//! | old/foreign container        | [`StoreError::VersionMismatch`]| quarantine + regenerate |
//! | torn write / bit rot / junk  | [`StoreError::ChecksumFail`]   | quarantine + regenerate |
//! | profile from other bytecode  | [`StoreError::StaleHash`]      | quarantine + regenerate |
//! | concurrent writer persists   | [`StoreError::Locked`]         | skip persisting this run |
//! | I/O failure                  | [`StoreError::Io`]             | surface; cache untouched |
//!
//! Writes are atomic (temp file + fsync + rename into place), so a kill at
//! any byte leaves the old version or the new one, never a mix. Concurrent
//! invocations serialize on a lock file with a bounded, deterministic
//! retry-with-backoff schedule (the clock is injectable for tests); locks
//! record their holder's PID and are broken *immediately* once the holder
//! is dead (with [`Store::lock_stale_after`] as the fallback when
//! liveness cannot be determined).
//!
//! # Write-ahead journal
//!
//! Cache-directory writes are additionally journaled: before the
//! temp+rename dance, a checksummed *intent* record (sequence number, op
//! kind, module hash, final + temp file names, payload length + CRC) is
//! appended to the store's `journal` file and fsynced; after the rename a
//! matching *commit* record follows. [`Store::open`] runs a recovery scan
//! over the journal (when it can take the lock without waiting): an
//! uncommitted intent whose temp file survived intact is **replayed**
//! (renamed into place — the delta is durable even though the writer
//! died), anything else is **rolled back** (torn temp removed, old
//! version untouched), the journal is truncated, and orphaned `.wal-*` /
//! `.tmp-*` files are swept. The upshot: a SIGKILL at *any* byte offset
//! of a store write loses at most the in-flight delta, never the
//! accumulated store, and never leaves a file to quarantine.
//!
//! Journal record framing: `[len: u32][crc32(payload): u32][payload]`,
//! little-endian, behind an 8-byte `LPWJ` + version header. An intent
//! payload is `tag=1, seq: u64, op: u8, hash: u64, data_len: u32,
//! data_crc: u32, final_name, temp_name` (names length-prefixed); a
//! commit payload is `tag=2, seq: u64`. A torn journal tail (crash during
//! the intent append itself) fails the CRC and is ignored — nothing had
//! happened yet.
//!
//! All I/O paths carry `lpat_core::fault` sites (`store.read`,
//! `store.write`, `store.lock`, and `store.journal` — the latter hit once
//! per journaled-write step: 1 intent append, 2 temp write, 3 temp fsync,
//! 4 rename, 5 commit append) so every row of the recovery matrix is
//! testable under the `--inject-faults` grammar, including kill-at-step
//! crash points (`store.journal:delay=...@N` parks the writer *between*
//! two durability steps for an external SIGKILL).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lpat_bytecode::container::{
    read_container, write_container, Container, ContainerError, KIND_PROFILE, KIND_REOPT,
};
use lpat_core::fault::{self, FaultAction, FaultPlan};
use lpat_core::hash::{crc32, fnv1a64};
use lpat_core::trace;
use lpat_core::Module;

use crate::profile::ProfileData;

/// Stable content hash of a module: the hash of its canonical bytecode
/// serialization. This is the key every stored artifact is filed under.
pub fn module_hash(m: &Module) -> u64 {
    fnv1a64(&lpat_bytecode::write_module(m))
}

/// Deterministic file label for trace arguments: the final path component
/// only — cache directories are run-specific temp paths, but artifact file
/// names are keyed by content hash and stable across runs.
fn file_label(path: &Path) -> String {
    path.file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

/// Classified store failure. See the module-level recovery matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// No artifact on disk for this key.
    Missing,
    /// The container carries an unknown format version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
    },
    /// The container failed validation: bad magic, truncation, CRC
    /// mismatch, or a payload that does not decode.
    ChecksumFail(String),
    /// The artifact is keyed to different module bytes than the ones in
    /// hand — it was gathered on an older build and must not be applied.
    StaleHash {
        /// Hash of the module being loaded for.
        expected: u64,
        /// Hash recorded in the file.
        found: u64,
    },
    /// The store lock could not be acquired within the retry budget.
    Locked,
    /// An underlying I/O failure (including injected ones).
    Io(String),
}

impl StoreError {
    /// Short machine-stable class name for this error variant, used to key
    /// per-class diagnostics deduplication and trace event arguments.
    pub fn class(&self) -> &'static str {
        match self {
            StoreError::Missing => "missing",
            StoreError::VersionMismatch { .. } => "version-mismatch",
            StoreError::ChecksumFail(_) => "checksum-fail",
            StoreError::StaleHash { .. } => "stale-hash",
            StoreError::Locked => "locked",
            StoreError::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Missing => write!(f, "no cached artifact"),
            StoreError::VersionMismatch { found } => {
                write!(f, "container version {found} unsupported")
            }
            StoreError::ChecksumFail(m) => write!(f, "integrity failure: {m}"),
            StoreError::StaleHash { expected, found } => write!(
                f,
                "stale artifact: keyed to module {found:016x}, have {expected:016x}"
            ),
            StoreError::Locked => write!(f, "store locked by another process"),
            StoreError::Io(m) => write!(f, "store I/O error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

fn container_err(e: ContainerError) -> StoreError {
    match e {
        ContainerError::Version(found) => StoreError::VersionMismatch { found },
        other => StoreError::ChecksumFail(other.to_string()),
    }
}

/// Record of one bad file moved aside during a load.
#[derive(Clone, Debug)]
pub struct Quarantine {
    /// The file that failed validation.
    pub original: PathBuf,
    /// Where it was moved (`<name>.corrupt-N`), if the move succeeded.
    pub moved_to: Option<PathBuf>,
    /// Why it was quarantined.
    pub error: StoreError,
}

impl std::fmt::Display for Quarantine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "quarantined {}: {}", self.original.display(), self.error)?;
        if let Some(to) = &self.moved_to {
            write!(f, " (moved to {})", to.display())?;
        }
        Ok(())
    }
}

/// A load result plus the recovery actions it took.
#[derive(Clone, Debug)]
pub struct Loaded<T> {
    /// The loaded value (`None` = nothing usable; start fresh).
    pub value: T,
    /// Bad files moved aside on the way.
    pub quarantined: Vec<Quarantine>,
}

/// A lifetime profile as stored: merged counters plus how many runs fed
/// them.
#[derive(Clone, Debug)]
pub struct StoredProfile {
    /// Saturating-merged counters over all recorded runs.
    pub profile: ProfileData,
    /// Number of runs merged in.
    pub runs: u64,
}

/// Injectable time source for the lock backoff, so contention tests run
/// deterministic schedules without wall-clock sleeps.
pub trait Clock: Send + Sync {
    /// Sleep for `d`.
    fn sleep(&self, d: Duration);
}

/// The production clock: actually sleeps.
pub struct RealClock;

impl Clock for RealClock {
    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// A versioned, crash-safe cache directory.
pub struct Store {
    dir: PathBuf,
    /// Lock acquisition attempts before giving up with
    /// [`StoreError::Locked`].
    pub lock_retries: u32,
    /// Base backoff; attempt `n` waits `lock_backoff << min(n, 6)` — a
    /// deterministic schedule, not a randomized one.
    pub lock_backoff: Duration,
    /// A lock file older than this is treated as abandoned by a killed
    /// process and broken.
    pub lock_stale_after: Duration,
    /// Fault plan override; `None` uses the process-wide plan
    /// (`--inject-faults` / `LPAT_FAULTS`).
    pub faults: Option<Arc<FaultPlan>>,
    clock: Box<dyn Clock>,
}

impl Store {
    /// Open (creating if needed) the cache directory.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::Io(format!("create {}: {e}", dir.display())))?;
        let store = Store {
            dir,
            lock_retries: 20,
            lock_backoff: Duration::from_millis(2),
            lock_stale_after: Duration::from_secs(30),
            faults: None,
            clock: Box::new(RealClock),
        };
        // Crash recovery: resolve any journaled writes a killed process
        // left incomplete — but only if the lock is free right now. A held
        // lock means a live writer owns the journal tail; its in-flight op
        // is not ours to resolve, and whoever opens the store next (or the
        // next recovery pass) will see a committed journal anyway.
        if let Some(guard) = store.try_lock_once() {
            store.recover_journal_locked();
            drop(guard);
        }
        Ok(store)
    }

    /// Replace the backoff clock (tests).
    pub fn with_clock(mut self, clock: Box<dyn Clock>) -> Store {
        self.clock = clock;
        self
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the profile artifact for a module hash.
    pub fn profile_path(&self, module_hash: u64) -> PathBuf {
        self.dir.join(format!("profile-{module_hash:016x}.lpp"))
    }

    /// Path of the reoptimized-bytecode artifact for a module hash.
    pub fn reopt_path(&self, module_hash: u64) -> PathBuf {
        self.dir.join(format!("reopt-{module_hash:016x}.lbc"))
    }

    /// Path of the crash-loop denylist record for a payload hash.
    pub fn deny_path(&self, payload_hash: u64) -> PathBuf {
        self.dir.join(format!("deny-{payload_hash:016x}.lpd"))
    }

    /// Path of the write-ahead journal.
    pub fn journal_path(&self) -> PathBuf {
        self.dir.join("journal")
    }

    fn fault(&self, site: &str) -> Option<FaultAction> {
        self.faults
            .as_deref()
            .map(|p| p.next(site))
            .unwrap_or_else(|| fault::global().and_then(|p| p.next(site)))
    }

    // -- reading ---------------------------------------------------------

    /// Read + validate a container file. Classifies but does not recover.
    fn read_validated(
        &self,
        path: &Path,
        kind: [u8; 4],
        expected_hash: u64,
    ) -> Result<Container, StoreError> {
        let mut sp = if trace::enabled() {
            Some(trace::span("store", format!("read {}", file_label(path))))
        } else {
            None
        };
        let r = self.read_validated_inner(path, kind, expected_hash);
        if let (Some(sp), Err(e)) = (&mut sp, &r) {
            sp.arg("error", e.class());
        }
        r
    }

    fn read_validated_inner(
        &self,
        path: &Path,
        kind: [u8; 4],
        expected_hash: u64,
    ) -> Result<Container, StoreError> {
        match self.fault("store.read") {
            Some(FaultAction::Delay(d)) => std::thread::sleep(d),
            Some(_) => return Err(StoreError::Io("injected fault at site 'store.read'".into())),
            None => {}
        }
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(StoreError::Missing),
            Err(e) => return Err(StoreError::Io(format!("read {}: {e}", path.display()))),
        };
        let c = read_container(&bytes).map_err(container_err)?;
        if c.kind != kind {
            return Err(StoreError::ChecksumFail(format!(
                "container kind {:?}, expected {:?}",
                String::from_utf8_lossy(&c.kind),
                String::from_utf8_lossy(&kind),
            )));
        }
        let meta = c
            .section("meta")
            .ok_or_else(|| StoreError::ChecksumFail("missing meta section".into()))?;
        if meta.len() < 8 {
            return Err(StoreError::ChecksumFail("short meta section".into()));
        }
        let found = u64::from_le_bytes(meta[..8].try_into().expect("8 bytes"));
        if found != expected_hash {
            return Err(StoreError::StaleHash {
                expected: expected_hash,
                found,
            });
        }
        Ok(c)
    }

    /// Move a bad file aside as `<name>.corrupt-N` so it is preserved for
    /// inspection but never read again.
    fn quarantine(&self, path: &Path, error: StoreError) -> Quarantine {
        if trace::enabled() {
            trace::instant_args(
                "store",
                "quarantine",
                vec![
                    ("class", error.class().to_string()),
                    ("file", file_label(path)),
                ],
            );
        }
        let mut moved_to = None;
        for n in 1..1000u32 {
            let candidate = PathBuf::from(format!("{}.corrupt-{n}", path.display()));
            if candidate.exists() {
                continue;
            }
            if std::fs::rename(path, &candidate).is_ok() {
                moved_to = Some(candidate);
            }
            break;
        }
        if moved_to.is_none() {
            // Rename failed (or 999 siblings): removing is still safer
            // than re-reading bad data forever.
            let _ = std::fs::remove_file(path);
        }
        Quarantine {
            original: path.to_path_buf(),
            moved_to,
            error,
        }
    }

    /// Load the lifetime profile for `module_hash`, recovering from any
    /// bad file by quarantining it and reporting an empty profile.
    ///
    /// # Errors
    ///
    /// Only genuine I/O failures surface; every *content* failure recovers
    /// to `value: None` plus a [`Quarantine`] record.
    pub fn load_profile(
        &self,
        module_hash: u64,
    ) -> Result<Loaded<Option<StoredProfile>>, StoreError> {
        let path = self.profile_path(module_hash);
        match self.read_validated(&path, KIND_PROFILE, module_hash) {
            Ok(c) => {
                let runs = c
                    .section("meta")
                    .filter(|m| m.len() >= 16)
                    .map(|m| u64::from_le_bytes(m[8..16].try_into().expect("8 bytes")))
                    .unwrap_or(1);
                let counts = c.section("counts").unwrap_or(&[]);
                match ProfileData::from_bytes(counts) {
                    Ok(profile) => Ok(Loaded {
                        value: Some(StoredProfile { profile, runs }),
                        quarantined: Vec::new(),
                    }),
                    Err(e) => {
                        let err = StoreError::ChecksumFail(format!("profile payload: {e}"));
                        Ok(Loaded {
                            value: None,
                            quarantined: vec![self.quarantine(&path, err)],
                        })
                    }
                }
            }
            Err(StoreError::Missing) => Ok(Loaded {
                value: None,
                quarantined: Vec::new(),
            }),
            Err(e @ StoreError::Io(_)) => Err(e),
            Err(recoverable) => Ok(Loaded {
                value: None,
                quarantined: vec![self.quarantine(&path, recoverable)],
            }),
        }
    }

    /// Load the cached reoptimized module for `module_hash`, recovering
    /// from any bad file by quarantining it.
    ///
    /// # Errors
    ///
    /// Only genuine I/O failures surface.
    pub fn load_reopt(
        &self,
        module_hash: u64,
        name: &str,
    ) -> Result<Loaded<Option<Module>>, StoreError> {
        let path = self.reopt_path(module_hash);
        match self.read_validated(&path, KIND_REOPT, module_hash) {
            Ok(c) => {
                let bytes = c.section("module").unwrap_or(&[]);
                // The hardened bytecode reader plus a full verify: CRC
                // protects against storage faults, not against a buggy
                // writer, and a cached module runs with user authority.
                let decoded = lpat_bytecode::read_module(name, bytes)
                    .map_err(|e| e.to_string())
                    .and_then(|m| match m.verify() {
                        Ok(()) => Ok(m),
                        Err(errs) => Err(format!("verifier: {}", errs[0])),
                    });
                match decoded {
                    Ok(m) => Ok(Loaded {
                        value: Some(m),
                        quarantined: Vec::new(),
                    }),
                    Err(e) => {
                        let err = StoreError::ChecksumFail(format!("module payload: {e}"));
                        Ok(Loaded {
                            value: None,
                            quarantined: vec![self.quarantine(&path, err)],
                        })
                    }
                }
            }
            Err(StoreError::Missing) => Ok(Loaded {
                value: None,
                quarantined: Vec::new(),
            }),
            Err(e @ StoreError::Io(_)) => Err(e),
            Err(recoverable) => Ok(Loaded {
                value: None,
                quarantined: vec![self.quarantine(&path, recoverable)],
            }),
        }
    }

    // -- writing ---------------------------------------------------------

    /// Write `bytes` to `path` atomically *and journaled*: append a
    /// checksummed intent record, write + fsync a temp file in the cache
    /// directory, rename into place, append a commit record. A kill at any
    /// point leaves the old content or the new, never a mix — and the
    /// journal lets [`Store::open`] finish (replay) or undo (roll back)
    /// whatever step the kill interrupted. Callers must hold the store
    /// lock (the public save methods do).
    fn journaled_write(
        &self,
        path: &Path,
        bytes: &[u8],
        op: u8,
        hash: u64,
    ) -> Result<(), StoreError> {
        let mut sp = if trace::enabled() {
            Some(trace::span("store", format!("write {}", file_label(path))))
        } else {
            None
        };
        let r = self.journaled_write_inner(path, bytes, op, hash);
        if let (Some(sp), Err(e)) = (&mut sp, &r) {
            sp.arg("error", e.class());
        }
        r
    }

    /// One `store.journal` fault evaluation per durability step (1-based;
    /// see the module docs for the step table). `Delay` parks the writer
    /// *before* the step's action — the chaos tests SIGKILL it there —
    /// and any other action fails the write with a synthetic I/O error.
    fn journal_step(&self, step: u8) -> Result<(), StoreError> {
        match self.fault("store.journal") {
            None | Some(FaultAction::Corrupt) => Ok(()),
            Some(FaultAction::Delay(d)) => {
                std::thread::sleep(d);
                Ok(())
            }
            Some(_) => Err(StoreError::Io(format!(
                "injected fault at site 'store.journal' (step {step})"
            ))),
        }
    }

    fn journaled_write_inner(
        &self,
        path: &Path,
        bytes: &[u8],
        op: u8,
        hash: u64,
    ) -> Result<(), StoreError> {
        let mut bytes = std::borrow::Cow::Borrowed(bytes);
        match self.fault("store.write") {
            Some(FaultAction::Delay(d)) => std::thread::sleep(d),
            Some(FaultAction::Corrupt) => {
                // Simulate storage corruption: damage one byte of the
                // payload *before* it reaches disk. The next read must
                // catch it by checksum and quarantine the file.
                let owned = bytes.to_mut();
                if !owned.is_empty() {
                    let mid = owned.len() / 2;
                    owned[mid] ^= 0x01;
                }
            }
            Some(_) => {
                return Err(StoreError::Io(
                    "injected fault at site 'store.write'".into(),
                ))
            }
            None => {}
        }
        // Bound journal growth: committed history is dead weight, and we
        // hold the lock, so resolving + truncating here is safe.
        if std::fs::metadata(self.journal_path())
            .map(|m| m.len() > JOURNAL_COMPACT_BYTES)
            .unwrap_or(false)
        {
            self.recover_journal_locked();
        }
        let final_name = file_label(path);
        let temp_name = format!("{final_name}.wal-{}", std::process::id());
        let tmp = self.dir.join(&temp_name);
        let intent = IntentRec {
            seq: next_journal_seq(),
            op,
            hash,
            data_len: bytes.len() as u32,
            data_crc: crc32(&bytes),
            final_name,
            temp_name,
        };
        let io = |what: &str, e: std::io::Error| StoreError::Io(format!("{what}: {e}"));
        let write = (|| -> Result<(), StoreError> {
            // Step 1: durable intent. From here on, recovery knows
            // exactly what was in flight.
            self.journal_step(1)?;
            self.append_journal(&intent.encode())?;
            // Step 2: the payload, under a name recovery can find.
            self.journal_step(2)?;
            let mut f = std::fs::File::create(&tmp).map_err(|e| io("create temp", e))?;
            std::io::Write::write_all(&mut f, &bytes).map_err(|e| io("write temp", e))?;
            // Step 3: payload durability.
            self.journal_step(3)?;
            f.sync_all().map_err(|e| io("fsync temp", e))?;
            // Step 4: the atomic switch.
            self.journal_step(4)?;
            std::fs::rename(&tmp, path).map_err(|e| io("rename into place", e))?;
            // Durability of the rename itself (best-effort: not every
            // filesystem lets a directory be fsynced).
            if let Ok(d) = std::fs::File::open(&self.dir) {
                let _ = d.sync_all();
            }
            Ok(())
        })();
        if write.is_err() {
            // Clean failure (not a crash): undo the temp and retire the
            // intent so recovery has nothing to chew on. Best-effort —
            // if either of these is lost, recovery reaches the same end
            // state (rollback of a temp-less or torn intent).
            let _ = std::fs::remove_file(&tmp);
            let _ = self.append_journal(&encode_commit(intent.seq));
            return write;
        }
        // Step 5: the commit marker. The rename above already made the
        // new version durable, so a failure here (or a kill before it)
        // only means recovery re-discovers a completed op and counts a
        // replay — correctness never depends on the commit record.
        if self.journal_step(5).is_ok() {
            let _ = self.append_journal(&encode_commit(intent.seq));
        }
        Ok(())
    }

    /// Append one framed record to the journal and fsync it.
    fn append_journal(&self, payload: &[u8]) -> Result<(), StoreError> {
        let io = |what: &str, e: std::io::Error| StoreError::Io(format!("{what}: {e}"));
        let path = self.journal_path();
        let fresh = !path.exists();
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
            .map_err(|e| io("open journal", e))?;
        let mut rec = Vec::with_capacity(payload.len() + 16);
        if fresh {
            rec.extend_from_slice(&JOURNAL_MAGIC);
            rec.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        }
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&crc32(payload).to_le_bytes());
        rec.extend_from_slice(payload);
        // One write call per record: appends from a crashed writer are
        // either wholly present or caught by the CRC as a torn tail.
        std::io::Write::write_all(&mut f, &rec).map_err(|e| io("append journal", e))?;
        f.sync_all().map_err(|e| io("fsync journal", e))?;
        Ok(())
    }

    /// Persist a lifetime profile for `module_hash`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] when another writer holds the store past
    /// the retry budget; [`StoreError::Io`] on write failure (the
    /// previous version, if any, is left intact).
    pub fn save_profile(
        &self,
        module_hash: u64,
        profile: &ProfileData,
        runs: u64,
    ) -> Result<(), StoreError> {
        let _guard = self.lock()?;
        self.save_profile_locked(module_hash, profile, runs)
    }

    /// [`Store::save_profile`] for callers already holding the lock.
    fn save_profile_locked(
        &self,
        module_hash: u64,
        profile: &ProfileData,
        runs: u64,
    ) -> Result<(), StoreError> {
        self.journaled_write(
            &self.profile_path(module_hash),
            &encode_profile(module_hash, profile, runs),
            OP_PROFILE,
            module_hash,
        )
    }

    /// Persist the reoptimized module derived from source `module_hash`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] when another writer holds the store past
    /// the retry budget; [`StoreError::Io`] on write failure.
    pub fn save_reopt(&self, module_hash: u64, m: &Module) -> Result<(), StoreError> {
        let mut c = Container::new(KIND_REOPT);
        c.push("meta", module_hash.to_le_bytes().to_vec());
        c.push("module", lpat_bytecode::write_module(m));
        let _guard = self.lock()?;
        self.journaled_write(
            &self.reopt_path(module_hash),
            &write_container(&c),
            OP_REOPT,
            module_hash,
        )
    }

    /// Merge one run's counters into the stored lifetime profile, under
    /// the store lock: load (recovering from corruption), saturating-add,
    /// write back atomically.
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] when another writer holds the store past the
    /// retry budget, [`StoreError::Io`] on write failure. In both cases
    /// the on-disk state is unchanged (this run's counts are simply not
    /// recorded — the always-make-progress posture).
    pub fn record_run(
        &self,
        module_hash: u64,
        run: &ProfileData,
    ) -> Result<Loaded<StoredProfile>, StoreError> {
        let _guard = self.lock()?;
        let loaded = self.load_profile(module_hash)?;
        let mut merged = StoredProfile {
            profile: ProfileData::default(),
            runs: 0,
        };
        if let Some(prev) = loaded.value {
            merged = prev;
        }
        merged.profile.merge_saturating(run);
        merged.runs = merged.runs.saturating_add(1);
        self.save_profile_locked(module_hash, &merged.profile, merged.runs)?;
        Ok(Loaded {
            value: merged,
            quarantined: loaded.quarantined,
        })
    }

    // -- locking ---------------------------------------------------------

    /// Acquire the store-wide writer lock with bounded, deterministic
    /// backoff.
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] after the retry budget; [`StoreError::Io`]
    /// for unexpected filesystem failures.
    pub fn lock(&self) -> Result<LockGuard, StoreError> {
        let mut sp = trace::span("store", "lock");
        let r = self.lock_inner();
        if trace::enabled() {
            if let Err(e) = &r {
                sp.arg("error", e.class());
            }
        }
        r
    }

    fn lock_inner(&self) -> Result<LockGuard, StoreError> {
        let path = self.dir.join("lock");
        for attempt in 0..=self.lock_retries {
            // The fault site models a held/contended lock: any non-delay
            // action fails this acquisition attempt.
            let contended = match self.fault("store.lock") {
                None => false,
                Some(FaultAction::Delay(d)) => {
                    std::thread::sleep(d);
                    false
                }
                Some(_) => true,
            };
            if !contended {
                match std::fs::OpenOptions::new()
                    .write(true)
                    .create_new(true)
                    .open(&path)
                {
                    Ok(mut f) => {
                        let _ = std::io::Write::write_all(
                            &mut f,
                            format!("{}\n", std::process::id()).as_bytes(),
                        );
                        return Ok(LockGuard { path });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                        // Held. Abandoned by a killed process? Break it.
                        if self.lock_is_dead(&path) {
                            let _ = std::fs::remove_file(&path);
                            continue; // retry immediately
                        }
                    }
                    Err(e) => return Err(StoreError::Io(format!("lock {}: {e}", path.display()))),
                }
            }
            if attempt < self.lock_retries {
                // Deterministic exponential backoff, capped at 64× base.
                let shift = attempt.min(6);
                self.clock.sleep(self.lock_backoff * (1u32 << shift));
            }
        }
        Err(StoreError::Locked)
    }

    /// Is the lock at `path` abandoned? First choice: the holder recorded
    /// its PID and that process is gone (checked via `/proc`, so a
    /// SIGKILLed worker's lock is broken *immediately* instead of
    /// stalling every peer on the shard for the staleness window).
    /// Fallback (no PID readable, foreign PID namespace, non-Linux): the
    /// mtime-based staleness threshold.
    fn lock_is_dead(&self, path: &Path) -> bool {
        if let Ok(content) = std::fs::read_to_string(path) {
            if let Ok(pid) = content.trim().parse::<u32>() {
                if pid == std::process::id() {
                    // Our own (e.g. a leaked guard in-process): not dead.
                } else if Path::new("/proc").is_dir() {
                    return !Path::new(&format!("/proc/{pid}")).exists();
                }
            }
        }
        if let Ok(md) = std::fs::metadata(path) {
            let age = md
                .modified()
                .ok()
                .and_then(|t| t.elapsed().ok())
                .unwrap_or(Duration::ZERO);
            return age > self.lock_stale_after;
        }
        false
    }

    /// One non-blocking lock attempt (plus one dead-holder break) for the
    /// recovery pass in [`Store::open`]. `None` = a live writer holds it.
    fn try_lock_once(&self) -> Option<LockGuard> {
        let path = self.dir.join("lock");
        for _ in 0..2 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    let _ = std::io::Write::write_all(
                        &mut f,
                        format!("{}\n", std::process::id()).as_bytes(),
                    );
                    return Some(LockGuard { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if self.lock_is_dead(&path) {
                        let _ = std::fs::remove_file(&path);
                        continue;
                    }
                    return None;
                }
                Err(_) => return None,
            }
        }
        None
    }
}

// -- write-ahead journal --------------------------------------------------

const JOURNAL_MAGIC: [u8; 4] = *b"LPWJ";
const JOURNAL_VERSION: u32 = 1;
/// Committed journal history past this size is compacted at the next
/// locked write.
const JOURNAL_COMPACT_BYTES: u64 = 256 * 1024;
const REC_INTENT: u8 = 1;
const REC_COMMIT: u8 = 2;
/// Largest payload a well-formed record can carry; anything bigger in the
/// length field is treated as a torn/garbage tail.
const JOURNAL_MAX_REC: u32 = 64 * 1024;

/// Op kinds recorded in intent records (diagnostic: recovery treats all
/// ops identically).
const OP_PROFILE: u8 = 1;
const OP_REOPT: u8 = 2;
const OP_DENY: u8 = 3;

static JOURNAL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Journal sequence numbers only need to pair an intent with its commit
/// within one journal file: PID in the high half, a process-local counter
/// in the low half.
fn next_journal_seq() -> u64 {
    ((std::process::id() as u64) << 32)
        | (JOURNAL_SEQ.fetch_add(1, Ordering::Relaxed) & 0xFFFF_FFFF)
}

/// A decoded intent record: everything recovery needs to finish or undo
/// the write. File *names*, not paths — the journal stays valid if the
/// cache directory is moved.
#[derive(Debug, Clone, PartialEq, Eq)]
struct IntentRec {
    seq: u64,
    op: u8,
    hash: u64,
    data_len: u32,
    data_crc: u32,
    final_name: String,
    temp_name: String,
}

impl IntentRec {
    fn encode(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(40 + self.final_name.len() + self.temp_name.len());
        p.push(REC_INTENT);
        p.extend_from_slice(&self.seq.to_le_bytes());
        p.push(self.op);
        p.extend_from_slice(&self.hash.to_le_bytes());
        p.extend_from_slice(&self.data_len.to_le_bytes());
        p.extend_from_slice(&self.data_crc.to_le_bytes());
        for name in [&self.final_name, &self.temp_name] {
            p.extend_from_slice(&(name.len() as u16).to_le_bytes());
            p.extend_from_slice(name.as_bytes());
        }
        p
    }

    fn decode(p: &[u8]) -> Option<IntentRec> {
        let mut off = 1usize; // tag already checked
        let take = |off: &mut usize, n: usize| -> Option<&[u8]> {
            let s = p.get(*off..*off + n)?;
            *off += n;
            Some(s)
        };
        let seq = u64::from_le_bytes(take(&mut off, 8)?.try_into().ok()?);
        let op = take(&mut off, 1)?[0];
        let hash = u64::from_le_bytes(take(&mut off, 8)?.try_into().ok()?);
        let data_len = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?);
        let data_crc = u32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?);
        let mut names = [String::new(), String::new()];
        for slot in &mut names {
            let n = u16::from_le_bytes(take(&mut off, 2)?.try_into().ok()?) as usize;
            *slot = String::from_utf8(take(&mut off, n)?.to_vec()).ok()?;
        }
        let [final_name, temp_name] = names;
        Some(IntentRec {
            seq,
            op,
            hash,
            data_len,
            data_crc,
            final_name,
            temp_name,
        })
    }
}

fn encode_commit(seq: u64) -> Vec<u8> {
    let mut p = Vec::with_capacity(9);
    p.push(REC_COMMIT);
    p.extend_from_slice(&seq.to_le_bytes());
    p
}

/// A journal file name is only trusted if it is a bare file name — a
/// malformed or malicious record must not become a path traversal.
fn bare_name(name: &str) -> bool {
    !name.is_empty()
        && Path::new(name)
            .file_name()
            .map(|f| f == name)
            .unwrap_or(false)
}

/// What one journal-recovery pass did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Uncommitted intents whose payload survived (intact temp file, or a
    /// completed rename that just lost its commit record): the new
    /// version was installed.
    pub replayed: u64,
    /// Uncommitted intents whose payload did not survive: torn temp
    /// removed (or nothing to do); the old version stands.
    pub rolled_back: u64,
    /// Orphaned `.wal-*` / `.tmp-*` files swept.
    pub swept: u64,
}

impl Store {
    /// Run one journal-recovery pass now, taking the lock (blocking, with
    /// the normal retry budget). [`Store::open`] already does this
    /// non-blockingly; tests and tools can force a pass here.
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] when the lock cannot be acquired.
    pub fn recover(&self) -> Result<RecoveryReport, StoreError> {
        let _guard = self.lock()?;
        Ok(self.recover_journal_locked())
    }

    /// The recovery scan proper. Caller holds the lock.
    fn recover_journal_locked(&self) -> RecoveryReport {
        let mut report = RecoveryReport::default();
        let jpath = self.journal_path();
        let data = std::fs::read(&jpath).unwrap_or_default();
        let mut pending: BTreeMap<u64, IntentRec> = BTreeMap::new();
        let mut pos = 0usize;
        if data.len() >= 8 && data[..4] == JOURNAL_MAGIC {
            pos = 8; // version field currently informational
        }
        // Parse until the first torn or nonsense record: everything after
        // a torn tail was never durable, so it describes nothing.
        while pos + 8 <= data.len() {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if len > JOURNAL_MAX_REC || pos + 8 + len as usize > data.len() {
                break; // torn tail
            }
            let payload = &data[pos + 8..pos + 8 + len as usize];
            if crc32(payload) != crc {
                break; // torn tail
            }
            pos += 8 + len as usize;
            match payload.first() {
                Some(&REC_INTENT) => {
                    if let Some(it) = IntentRec::decode(payload) {
                        pending.insert(it.seq, it);
                    }
                }
                Some(&REC_COMMIT) if payload.len() >= 9 => {
                    let seq = u64::from_le_bytes(payload[1..9].try_into().expect("8 bytes"));
                    pending.remove(&seq);
                }
                _ => {} // unknown tag: ignore (forward compatibility)
            }
        }
        let mut referenced: Vec<String> = Vec::new();
        for it in pending.values() {
            referenced.push(it.temp_name.clone());
            if !(bare_name(&it.final_name) && bare_name(&it.temp_name)) {
                continue; // never follow a suspicious name
            }
            let tmp = self.dir.join(&it.temp_name);
            let fin = self.dir.join(&it.final_name);
            let matches = |b: &[u8]| b.len() as u32 == it.data_len && crc32(b) == it.data_crc;
            let replayed = match std::fs::read(&tmp) {
                Ok(b) if matches(&b) => {
                    // The payload is fully on disk; finish the write the
                    // dead process started.
                    std::fs::rename(&tmp, &fin).is_ok()
                }
                Ok(_) | Err(_) => {
                    // Torn or missing temp. If the final file already
                    // carries the intended bytes the op actually
                    // completed (killed between rename and commit).
                    let _ = std::fs::remove_file(&tmp);
                    std::fs::read(&fin).map(|b| matches(&b)).unwrap_or(false)
                }
            };
            if replayed {
                report.replayed += 1;
            } else {
                report.rolled_back += 1;
            }
        }
        if let Ok(d) = std::fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        // Every pending op is resolved: retire the journal.
        let _ = std::fs::remove_file(&jpath);
        // Sweep write debris no pending intent references: pid-suffixed
        // temps from crashed writers whose intents committed (or never
        // became durable).
        if let Ok(rd) = std::fs::read_dir(&self.dir) {
            for entry in rd.filter_map(|e| e.ok()) {
                let name = entry.file_name().to_string_lossy().into_owned();
                let orphan = (name.contains(".wal-") || name.contains(".tmp-"))
                    && !referenced.iter().any(|r| r == &name);
                if orphan && std::fs::remove_file(entry.path()).is_ok() {
                    report.swept += 1;
                }
            }
        }
        if trace::enabled() && (report.replayed > 0 || report.rolled_back > 0 || report.swept > 0) {
            trace::instant_args(
                "store",
                "journal.recovery",
                vec![
                    ("replayed", report.replayed.to_string()),
                    ("rolled_back", report.rolled_back.to_string()),
                    ("swept", report.swept.to_string()),
                ],
            );
        }
        report
    }
}

// -- crash-loop denylist records ------------------------------------------

/// Persisted crash-loop state for one module payload hash: how many times
/// it has crashed a worker, when, and whether it crossed the breaker
/// threshold (denylisted). Written by the `lpatd` supervisor; surviving a
/// daemon restart is the point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenyRecord {
    /// FNV-1a hash of the raw request payload (not the parsed module —
    /// the daemon must not parse a crashing payload to key its record).
    pub hash: u64,
    /// Worker crashes attributed to this payload.
    pub count: u32,
    /// Whether the hash is denylisted (breaker tripped).
    pub denied: bool,
    /// Unix milliseconds of the first recorded crash.
    pub first_unix_ms: u64,
    /// Unix milliseconds of the most recent recorded crash.
    pub last_unix_ms: u64,
}

const DENY_MAGIC: [u8; 4] = *b"LPDY";
const DENY_VERSION: u32 = 1;
const DENY_LEN: usize = 4 + 4 + 8 + 4 + 1 + 8 + 8 + 4;

impl DenyRecord {
    fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(DENY_LEN);
        b.extend_from_slice(&DENY_MAGIC);
        b.extend_from_slice(&DENY_VERSION.to_le_bytes());
        b.extend_from_slice(&self.hash.to_le_bytes());
        b.extend_from_slice(&self.count.to_le_bytes());
        b.push(self.denied as u8);
        b.extend_from_slice(&self.first_unix_ms.to_le_bytes());
        b.extend_from_slice(&self.last_unix_ms.to_le_bytes());
        let crc = crc32(&b);
        b.extend_from_slice(&crc.to_le_bytes());
        b
    }

    fn decode(b: &[u8]) -> Option<DenyRecord> {
        if b.len() != DENY_LEN || b[..4] != DENY_MAGIC {
            return None;
        }
        let crc = u32::from_le_bytes(b[DENY_LEN - 4..].try_into().ok()?);
        if crc32(&b[..DENY_LEN - 4]) != crc {
            return None;
        }
        if u32::from_le_bytes(b[4..8].try_into().ok()?) != DENY_VERSION {
            return None;
        }
        Some(DenyRecord {
            hash: u64::from_le_bytes(b[8..16].try_into().ok()?),
            count: u32::from_le_bytes(b[16..20].try_into().ok()?),
            denied: b[20] != 0,
            first_unix_ms: u64::from_le_bytes(b[21..29].try_into().ok()?),
            last_unix_ms: u64::from_le_bytes(b[29..37].try_into().ok()?),
        })
    }
}

impl Store {
    /// Load the crash-loop record for `payload_hash`. Tolerant by design:
    /// a missing, torn, or stale-format record reads as `None` (and a bad
    /// file is removed) — the breaker merely starts counting again.
    pub fn load_deny(&self, payload_hash: u64) -> Option<DenyRecord> {
        let path = self.deny_path(payload_hash);
        let bytes = std::fs::read(&path).ok()?;
        match DenyRecord::decode(&bytes) {
            Some(rec) if rec.hash == payload_hash => Some(rec),
            _ => {
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Persist a crash-loop record (journaled, under the store lock).
    ///
    /// # Errors
    ///
    /// [`StoreError::Locked`] or [`StoreError::Io`] — the caller keeps
    /// its in-memory breaker state either way.
    pub fn save_deny(&self, rec: &DenyRecord) -> Result<(), StoreError> {
        let _guard = self.lock()?;
        self.journaled_write(&self.deny_path(rec.hash), &rec.encode(), OP_DENY, rec.hash)
    }
}

// -- standalone profile files (--profile-in / --profile-out) -------------

/// Serialize a lifetime profile into container bytes.
fn encode_profile(module_hash: u64, profile: &ProfileData, runs: u64) -> Vec<u8> {
    let mut c = Container::new(KIND_PROFILE);
    let mut meta = Vec::with_capacity(16);
    meta.extend_from_slice(&module_hash.to_le_bytes());
    meta.extend_from_slice(&runs.to_le_bytes());
    c.push("meta", meta);
    c.push("counts", profile.to_bytes());
    write_container(&c)
}

/// Write a profile to a standalone file (`--profile-out`) with the same
/// container format and atomic temp+fsync+rename protocol as the cache
/// directory. Honors the global `store.write` fault site.
///
/// # Errors
///
/// [`StoreError::Io`] on write failure; the previous file, if any, is
/// left intact.
pub fn write_profile_file(
    path: &Path,
    module_hash: u64,
    profile: &ProfileData,
    runs: u64,
) -> Result<(), StoreError> {
    let mut bytes = encode_profile(module_hash, profile, runs);
    match fault::global().and_then(|p| p.next("store.write")) {
        Some(FaultAction::Delay(d)) => std::thread::sleep(d),
        Some(FaultAction::Corrupt) if !bytes.is_empty() => {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
        }
        Some(FaultAction::Corrupt) | None => {}
        Some(_) => {
            return Err(StoreError::Io(
                "injected fault at site 'store.write'".into(),
            ))
        }
    }
    let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
    let io = |what: &str, e: std::io::Error| StoreError::Io(format!("{what}: {e}"));
    let write = (|| -> Result<(), StoreError> {
        let mut f = std::fs::File::create(&tmp).map_err(|e| io("create temp", e))?;
        std::io::Write::write_all(&mut f, &bytes).map_err(|e| io("write temp", e))?;
        f.sync_all().map_err(|e| io("fsync temp", e))?;
        std::fs::rename(&tmp, path).map_err(|e| io("rename into place", e))?;
        Ok(())
    })();
    if write.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    write
}

/// Read a standalone profile file (`--profile-in`). Returns the module
/// hash it was recorded against plus the stored profile; the caller
/// decides whether a hash mismatch is fatal. Nothing is quarantined —
/// the caller owns the file.
///
/// # Errors
///
/// The same classification as the store's loads.
pub fn read_profile_file(path: &Path) -> Result<(u64, StoredProfile), StoreError> {
    match fault::global().and_then(|p| p.next("store.read")) {
        Some(FaultAction::Delay(d)) => std::thread::sleep(d),
        Some(_) => return Err(StoreError::Io("injected fault at site 'store.read'".into())),
        None => {}
    }
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(StoreError::Missing),
        Err(e) => return Err(StoreError::Io(format!("read {}: {e}", path.display()))),
    };
    let c = read_container(&bytes).map_err(container_err)?;
    if c.kind != KIND_PROFILE {
        return Err(StoreError::ChecksumFail("not a profile container".into()));
    }
    let meta = c
        .section("meta")
        .filter(|m| m.len() >= 16)
        .ok_or_else(|| StoreError::ChecksumFail("short meta section".into()))?;
    let hash = u64::from_le_bytes(meta[..8].try_into().expect("8 bytes"));
    let runs = u64::from_le_bytes(meta[8..16].try_into().expect("8 bytes"));
    let profile = ProfileData::from_bytes(c.section("counts").unwrap_or(&[]))
        .map_err(|e| StoreError::ChecksumFail(format!("profile payload: {e}")))?;
    Ok((hash, StoredProfile { profile, runs }))
}

// -- exactly-once profile flushing ----------------------------------------

/// The outcome of the one flush a [`FlushGuard`] performs.
#[derive(Debug)]
pub enum FlushOutcome {
    /// No store configured or no delta recorded; nothing to persist.
    Skipped,
    /// The delta was merged into the stored lifetime profile. Boxed so
    /// the common `Skipped` case doesn't pay for the profile's footprint.
    Flushed(Box<Loaded<StoredProfile>>),
    /// The store refused (lock budget, I/O); this run's counts are
    /// dropped — the always-make-progress posture.
    Failed(StoreError),
}

/// RAII guard that flushes one run's profile delta into the store
/// **exactly once** — on explicit [`FlushGuard::flush`] (the happy path,
/// so the caller can report quarantines) or on drop (early-return, trap,
/// and panic paths). Both the `lpatc run` driver and `lpatd` workers
/// funnel their profile persistence through this one type, so no exit
/// route can flush twice (double-counting a run) or zero times (losing
/// the crashing runs the lifelong profile most needs).
pub struct FlushGuard<'s> {
    store: Option<&'s Store>,
    run_hash: u64,
    delta: Option<ProfileData>,
    done: bool,
}

impl<'s> FlushGuard<'s> {
    /// Arm a guard for `run_hash`. With `store: None` every flush is a
    /// no-op (uncached runs share the same control flow).
    pub fn new(store: Option<&'s Store>, run_hash: u64) -> FlushGuard<'s> {
        FlushGuard {
            store,
            run_hash,
            delta: None,
            done: false,
        }
    }

    /// Record the delta to persist (this run's counters). Until this is
    /// called, flushing is a no-op — a run that never executed has
    /// nothing to persist.
    pub fn set_delta(&mut self, delta: ProfileData) {
        self.delta = Some(delta);
    }

    /// Whether the single flush already happened (explicitly or not at
    /// all yet).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Perform the flush if it has not happened yet; subsequent calls
    /// (including the one from `Drop`) return [`FlushOutcome::Skipped`]
    /// without touching the store.
    pub fn flush(&mut self) -> FlushOutcome {
        if self.done {
            return FlushOutcome::Skipped;
        }
        self.done = true;
        let (store, delta) = match (self.store, self.delta.take()) {
            (Some(s), Some(d)) => (s, d),
            _ => return FlushOutcome::Skipped,
        };
        match store.record_run(self.run_hash, &delta) {
            Ok(loaded) => FlushOutcome::Flushed(Box::new(loaded)),
            Err(e) => FlushOutcome::Failed(e),
        }
    }
}

impl Drop for FlushGuard<'_> {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// Holds the store lock; releases it on drop.
#[derive(Debug)]
pub struct LockGuard {
    path: PathBuf,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("lpat-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn plan(s: &str) -> Option<Arc<FaultPlan>> {
        Some(Arc::new(FaultPlan::parse(s).unwrap()))
    }

    fn sample_profile() -> ProfileData {
        let mut p = ProfileData::default();
        p.block_counts.insert(
            (
                lpat_core::FuncId::from_index(0),
                lpat_core::BlockId::from_index(1),
            ),
            10,
        );
        p.call_counts.insert(lpat_core::FuncId::from_index(2), 3);
        p
    }

    /// A clock that records sleeps instead of performing them.
    struct CountingClock(AtomicU32);
    impl Clock for CountingClock {
        fn sleep(&self, _d: Duration) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn profile_roundtrip_and_merge_across_runs() {
        let store = Store::open(tmpdir("roundtrip")).unwrap();
        let h = 0xABCD;
        assert!(store.load_profile(h).unwrap().value.is_none());
        let r1 = store.record_run(h, &sample_profile()).unwrap();
        assert_eq!(r1.value.runs, 1);
        let r2 = store.record_run(h, &sample_profile()).unwrap();
        assert_eq!(r2.value.runs, 2);
        let loaded = store.load_profile(h).unwrap().value.unwrap();
        assert_eq!(
            loaded.profile.block_count(
                lpat_core::FuncId::from_index(0),
                lpat_core::BlockId::from_index(1)
            ),
            20,
            "two runs merge to exactly doubled counts"
        );
    }

    #[test]
    fn corrupt_file_quarantined_and_recovered_to_empty() {
        let store = Store::open(tmpdir("corrupt")).unwrap();
        let h = 0x11;
        std::fs::write(store.profile_path(h), b"LPCFgarbage-not-a-container").unwrap();
        let out = store.load_profile(h).unwrap();
        assert!(out.value.is_none());
        assert_eq!(out.quarantined.len(), 1);
        let q = &out.quarantined[0];
        assert!(
            matches!(
                q.error,
                StoreError::ChecksumFail(_) | StoreError::VersionMismatch { .. }
            ),
            "{:?}",
            q.error
        );
        assert!(q.moved_to.as_ref().unwrap().exists());
        assert!(!store.profile_path(h).exists(), "bad file moved aside");
        // Next load is clean.
        let again = store.load_profile(h).unwrap();
        assert!(again.value.is_none() && again.quarantined.is_empty());
    }

    #[test]
    fn stale_hash_is_quarantined_not_applied() {
        let store = Store::open(tmpdir("stale")).unwrap();
        store.save_profile(0xAA, &sample_profile(), 1).unwrap();
        // Same file, asked for under a different module hash: stale.
        std::fs::rename(store.profile_path(0xAA), store.profile_path(0xBB)).unwrap();
        let out = store.load_profile(0xBB).unwrap();
        assert!(out.value.is_none());
        assert!(matches!(
            out.quarantined[0].error,
            StoreError::StaleHash {
                expected: 0xBB,
                found: 0xAA
            }
        ));
    }

    #[test]
    fn version_mismatch_is_classified_and_quarantined() {
        let store = Store::open(tmpdir("version")).unwrap();
        store.save_profile(0xCC, &sample_profile(), 1).unwrap();
        let path = store.profile_path(0xCC);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] = 0xFE; // container version field
        std::fs::write(&path, bytes).unwrap();
        let out = store.load_profile(0xCC).unwrap();
        assert!(matches!(
            out.quarantined[0].error,
            StoreError::VersionMismatch { found } if found == 0xFE
        ));
    }

    /// Migration: a structurally valid version-1 container (pre-guard
    /// profile schema) is classified by its version, quarantined, and the
    /// slot regenerates under the new schema — the old counters are never
    /// misread as v2 data or merged into the fresh profile.
    #[test]
    fn v1_container_is_quarantined_and_regenerated() {
        use lpat_core::hash::crc32;
        let store = Store::open(tmpdir("migrate-v1")).unwrap();
        let h = 0x99u64;
        // Hand-build the v1 file: four profile tables (no guard sections),
        // version field 1, correct section + trailer CRCs.
        let mut counts = sample_profile().to_bytes();
        let tail = counts.split_off(counts.len() - 2);
        assert_eq!(tail, [0, 0], "v2 encoder ends with two empty guard tables");
        let mut c = Container::new(KIND_PROFILE);
        let mut meta = Vec::with_capacity(16);
        meta.extend_from_slice(&h.to_le_bytes());
        meta.extend_from_slice(&5u64.to_le_bytes()); // five prior runs
        c.push("meta", meta);
        c.push("counts", counts);
        let mut bytes = write_container(&c);
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        let body_len = bytes.len() - 8;
        let crc = crc32(&bytes[..body_len]);
        bytes[body_len + 4..].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(store.profile_path(h), &bytes).unwrap();
        // Classified as a version mismatch (not a checksum failure) and
        // moved aside.
        let out = store.load_profile(h).unwrap();
        assert!(out.value.is_none(), "v1 data must not load as v2");
        assert!(matches!(
            out.quarantined[0].error,
            StoreError::VersionMismatch { found: 1 }
        ));
        assert!(out.quarantined[0].moved_to.as_ref().unwrap().exists());
        // Regeneration starts fresh: the v1 counters are gone, not merged.
        let r = store.record_run(h, &sample_profile()).unwrap();
        assert_eq!(r.value.runs, 1, "regenerated from empty, not from v1");
        let reloaded = store.load_profile(h).unwrap().value.unwrap();
        assert_eq!(reloaded.runs, 1);
        assert_eq!(reloaded.profile, sample_profile());
    }

    #[test]
    fn injected_write_corruption_is_caught_on_next_read() {
        let mut store = Store::open(tmpdir("inject-corrupt")).unwrap();
        store.faults = plan("store.write:corrupt@1");
        store.save_profile(0xDD, &sample_profile(), 1).unwrap();
        let out = store.load_profile(0xDD).unwrap();
        assert!(out.value.is_none(), "corrupted payload must not load");
        assert!(matches!(
            out.quarantined[0].error,
            StoreError::ChecksumFail(_)
        ));
    }

    #[test]
    fn injected_io_fault_fails_write_and_leaves_old_version() {
        let mut store = Store::open(tmpdir("inject-io")).unwrap();
        store.save_profile(0xEE, &sample_profile(), 1).unwrap();
        store.faults = plan("store.write:io@1");
        let err = store
            .save_profile(0xEE, &ProfileData::default(), 9)
            .unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
        // The old version is intact and no temp file lingers.
        let loaded = store.load_profile(0xEE).unwrap().value.unwrap();
        assert_eq!(loaded.runs, 1);
        let leftovers: Vec<_> = std::fs::read_dir(store.dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }

    #[test]
    fn lock_contention_bounded_and_deterministic() {
        let mut store = Store::open(tmpdir("lock"))
            .unwrap()
            .with_clock(Box::new(CountingClock(AtomicU32::new(0))));
        store.lock_retries = 4;
        // Unconditional contention: every attempt fails, then Locked.
        store.faults = plan("store.lock:panic");
        let err = store.lock().unwrap_err();
        assert_eq!(err, StoreError::Locked);
        // record_run surfaces Locked without touching the cache.
        let err = store.record_run(0x55, &sample_profile()).unwrap_err();
        assert_eq!(err, StoreError::Locked);
        assert!(!store.profile_path(0x55).exists());
        // Transient contention: first two attempts fail, then success.
        store.faults = plan("store.lock:panic@1,store.lock:panic@2");
        let guard = store.lock().expect("acquires after retries");
        drop(guard);
        assert!(!store.dir().join("lock").exists(), "guard releases on drop");
    }

    #[test]
    fn held_lock_blocks_until_released_then_stale_lock_is_broken() {
        let mut store = Store::open(tmpdir("lock2"))
            .unwrap()
            .with_clock(Box::new(CountingClock(AtomicU32::new(0))));
        store.lock_retries = 2;
        let guard = store.lock().unwrap();
        let err = store.lock().unwrap_err();
        assert_eq!(err, StoreError::Locked);
        drop(guard);
        // An abandoned lock (simulated by aging the threshold to zero) is
        // broken rather than wedging every future run.
        let _stale = store.lock().unwrap();
        std::mem::forget(_stale); // "killed process": no Drop
        store.lock_stale_after = Duration::ZERO;
        let g = store.lock().expect("stale lock must be broken");
        drop(g);
    }

    #[test]
    fn reopt_roundtrip_and_corruption_recovery() {
        let m = lpat_asm::parse_module("t", "define int @main() {\ne:\n  ret int 41\n}").unwrap();
        let h = module_hash(&m);
        let store = Store::open(tmpdir("reopt")).unwrap();
        assert!(store.load_reopt(h, "t").unwrap().value.is_none());
        store.save_reopt(h, &m).unwrap();
        let back = store.load_reopt(h, "t").unwrap().value.unwrap();
        assert_eq!(back.display(), m.display());
        // Flip a byte inside the stored module payload: quarantined.
        let path = store.reopt_path(h);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, bytes).unwrap();
        let out = store.load_reopt(h, "t").unwrap();
        assert!(out.value.is_none());
        assert_eq!(out.quarantined.len(), 1);
    }

    /// A clock whose sleep count the test can read.
    struct SharedCountingClock(Arc<AtomicU32>);
    impl Clock for SharedCountingClock {
        fn sleep(&self, _d: Duration) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn dead_holder_lock_is_broken_immediately() {
        let sleeps = Arc::new(AtomicU32::new(0));
        let store = Store::open(tmpdir("deadpid"))
            .unwrap()
            .with_clock(Box::new(SharedCountingClock(sleeps.clone())));
        // A lock abandoned by a PID that cannot exist (pid_max is far
        // below this): broken on the first attempt, no backoff sleeps,
        // no staleness wait.
        std::fs::write(store.dir().join("lock"), "999999999\n").unwrap();
        let g = store.lock().expect("dead holder's lock must break");
        assert_eq!(sleeps.load(Ordering::SeqCst), 0, "no backoff needed");
        drop(g);
        // A live holder (our own PID) is NOT broken by the PID check.
        std::fs::write(
            store.dir().join("lock"),
            format!("{}\n", std::process::id()),
        )
        .unwrap();
        let mut store = store;
        store.lock_retries = 2;
        assert_eq!(store.lock().unwrap_err(), StoreError::Locked);
    }

    #[test]
    fn injected_journal_fault_fails_write_cleanly_at_every_step() {
        for step in 1..=4u8 {
            let mut store = Store::open(tmpdir(&format!("jstep{step}"))).unwrap();
            store.save_profile(0x31, &sample_profile(), 1).unwrap();
            store.faults = plan(&format!("store.journal:io@{step}"));
            let err = store.save_profile(0x31, &sample_profile(), 2).unwrap_err();
            assert!(matches!(err, StoreError::Io(_)), "step {step}: {err:?}");
            // Old version intact, no temp debris, and the journal holds
            // no unresolved intent (reopen performs zero replays or
            // rollbacks).
            store.faults = None;
            assert_eq!(store.load_profile(0x31).unwrap().value.unwrap().runs, 1);
            let report = store.recover().unwrap();
            assert_eq!(report.replayed, 0, "step {step}");
            assert_eq!(report.rolled_back, 0, "step {step}");
            let wal: Vec<_> = std::fs::read_dir(store.dir())
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().contains(".wal-"))
                .collect();
            assert!(wal.is_empty(), "step {step}: {wal:?}");
        }
        // Step 5 (commit append) is past the rename: the write succeeds
        // and the missing commit record costs nothing.
        let mut store = Store::open(tmpdir("jstep5")).unwrap();
        store.faults = plan("store.journal:io@5");
        store.save_profile(0x32, &sample_profile(), 7).unwrap();
        assert_eq!(store.load_profile(0x32).unwrap().value.unwrap().runs, 7);
        // Recovery re-discovers the completed op as a replay.
        store.faults = None;
        assert_eq!(store.recover().unwrap().replayed, 1);
    }

    #[test]
    fn journal_replay_installs_a_dead_writers_intact_temp() {
        let dir = tmpdir("jreplay");
        let store = Store::open(&dir).unwrap();
        let h = 0x42u64;
        store.save_profile(h, &sample_profile(), 1).unwrap();
        // Simulate a writer SIGKILLed after fsyncing its temp (step 4):
        // durable intent, intact temp, no commit.
        let bytes = encode_profile(h, &sample_profile(), 9);
        let final_name = format!("profile-{h:016x}.lpp");
        let temp_name = format!("{final_name}.wal-424242");
        std::fs::write(dir.join(&temp_name), &bytes).unwrap();
        store
            .append_journal(
                &IntentRec {
                    seq: 7,
                    op: OP_PROFILE,
                    hash: h,
                    data_len: bytes.len() as u32,
                    data_crc: crc32(&bytes),
                    final_name,
                    temp_name: temp_name.clone(),
                }
                .encode(),
            )
            .unwrap();
        drop(store);
        // Reopen: recovery finishes the write the dead process started.
        let store = Store::open(&dir).unwrap();
        assert_eq!(
            store.load_profile(h).unwrap().value.unwrap().runs,
            9,
            "replayed version must be visible"
        );
        assert!(!dir.join(&temp_name).exists());
        assert!(!store.journal_path().exists(), "journal retired");
    }

    #[test]
    fn journal_rollback_discards_torn_temp_and_keeps_old_version() {
        let dir = tmpdir("jrollback");
        let store = Store::open(&dir).unwrap();
        let h = 0x43u64;
        store.save_profile(h, &sample_profile(), 1).unwrap();
        let bytes = encode_profile(h, &sample_profile(), 9);
        let final_name = format!("profile-{h:016x}.lpp");
        // Torn temp: half the payload (killed mid-write, step 2→3).
        let torn = dir.join(format!("{final_name}.wal-424242"));
        std::fs::write(&torn, &bytes[..bytes.len() / 2]).unwrap();
        store
            .append_journal(
                &IntentRec {
                    seq: 8,
                    op: OP_PROFILE,
                    hash: h,
                    data_len: bytes.len() as u32,
                    data_crc: crc32(&bytes),
                    final_name: final_name.clone(),
                    temp_name: format!("{final_name}.wal-424242"),
                }
                .encode(),
            )
            .unwrap();
        // A second intent whose temp never appeared (killed at step 2).
        store
            .append_journal(
                &IntentRec {
                    seq: 9,
                    op: OP_PROFILE,
                    hash: h,
                    data_len: bytes.len() as u32,
                    data_crc: crc32(&bytes),
                    final_name: final_name.clone(),
                    temp_name: format!("{final_name}.wal-424243"),
                }
                .encode(),
            )
            .unwrap();
        let report = store.recover().unwrap();
        assert_eq!(report.rolled_back, 2);
        assert_eq!(report.replayed, 0);
        assert!(!torn.exists(), "torn temp removed");
        assert_eq!(
            store.load_profile(h).unwrap().value.unwrap().runs,
            1,
            "old version stands"
        );
        // Zero quarantine files: rollback is clean, not corruption.
        let corrupt: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".corrupt-"))
            .collect();
        assert!(corrupt.is_empty(), "{corrupt:?}");
    }

    #[test]
    fn torn_journal_tail_is_ignored_but_durable_prefix_still_replays() {
        let dir = tmpdir("jtorn");
        let store = Store::open(&dir).unwrap();
        let h = 0x44u64;
        let bytes = encode_profile(h, &sample_profile(), 3);
        let final_name = format!("profile-{h:016x}.lpp");
        let temp_name = format!("{final_name}.wal-77");
        std::fs::write(dir.join(&temp_name), &bytes).unwrap();
        store
            .append_journal(
                &IntentRec {
                    seq: 1,
                    op: OP_PROFILE,
                    hash: h,
                    data_len: bytes.len() as u32,
                    data_crc: crc32(&bytes),
                    final_name,
                    temp_name,
                }
                .encode(),
            )
            .unwrap();
        // Crash during a later append: garbage half-record at the tail.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(store.journal_path())
                .unwrap();
            f.write_all(&[0xFF, 0x13, 0x00, 0x00, 0xAB]).unwrap();
        }
        let report = store.recover().unwrap();
        assert_eq!(report.replayed, 1, "prefix replays despite torn tail");
        assert_eq!(store.load_profile(h).unwrap().value.unwrap().runs, 3);
        assert!(!store.journal_path().exists());
    }

    #[test]
    fn committed_journal_history_is_inert_and_retired() {
        let dir = tmpdir("jcommitted");
        let store = Store::open(&dir).unwrap();
        store.save_profile(0x45, &sample_profile(), 1).unwrap();
        store.save_profile(0x46, &sample_profile(), 4).unwrap();
        assert!(store.journal_path().exists(), "history accumulates");
        let report = store.recover().unwrap();
        assert_eq!((report.replayed, report.rolled_back), (0, 0));
        assert!(!store.journal_path().exists());
        assert_eq!(store.load_profile(0x45).unwrap().value.unwrap().runs, 1);
    }

    #[test]
    fn deny_record_roundtrip_and_tolerant_load() {
        let store = Store::open(tmpdir("deny")).unwrap();
        assert_eq!(store.load_deny(0x99), None);
        let rec = DenyRecord {
            hash: 0x99,
            count: 3,
            denied: true,
            first_unix_ms: 1_000,
            last_unix_ms: 2_000,
        };
        store.save_deny(&rec).unwrap();
        assert_eq!(store.load_deny(0x99), Some(rec));
        // Garbage record: reads as None and is removed, never an error.
        std::fs::write(store.deny_path(0x77), b"not a deny record").unwrap();
        assert_eq!(store.load_deny(0x77), None);
        assert!(!store.deny_path(0x77).exists());
        // A record filed under the wrong hash is rejected too.
        std::fs::copy(store.deny_path(0x99), store.deny_path(0x55)).unwrap();
        assert_eq!(store.load_deny(0x55), None);
    }

    #[test]
    fn torn_write_truncation_at_every_offset_recovers() {
        let store = Store::open(tmpdir("torn")).unwrap();
        let h = 0x77;
        store.save_profile(h, &sample_profile(), 1).unwrap();
        let full = std::fs::read(store.profile_path(h)).unwrap();
        for cut in 0..full.len() {
            std::fs::write(store.profile_path(h), &full[..cut]).unwrap();
            let out = store.load_profile(h).unwrap();
            assert!(out.value.is_none(), "cut at {cut} loaded data");
            assert_eq!(out.quarantined.len(), 1, "cut at {cut}");
            // Clean up the quarantine file for the next iteration.
            if let Some(q) = &out.quarantined[0].moved_to {
                let _ = std::fs::remove_file(q);
            }
        }
    }
}
