//! # lpat-linker — module linking
//!
//! Combines the per-translation-unit modules emitted by front-ends into a
//! single whole-program module (paper §3.3). Link time is the first phase
//! where most of the program is available, making it the natural place for
//! the aggressive interprocedural optimizations in `lpat-transform`.
//!
//! Linking performs:
//!
//! * **type unification** — named struct types unify by name (an opaque
//!   declaration resolves against a definition); structural types re-intern;
//! * **symbol resolution** — declarations bind to definitions; duplicate
//!   external definitions are an error; internal symbols never clash (they
//!   are renamed on collision);
//! * **body copying** — instruction streams are rebuilt with types,
//!   constants, and symbol references remapped into the destination module.
//!
//! The same machinery provides [`compact`], which round-trips one module
//! through a copy to garbage-collect unreferenced types and constants —
//! the *dead type elimination* the paper lists among the link-time passes.
//!
//! # Examples
//!
//! ```
//! let a = lpat_asm::parse_module("a", "
//! declare int @helper(int)
//! define int @main() {
//! e:
//!   %v = call int @helper(int 1)
//!   ret int %v
//! }").unwrap();
//! let b = lpat_asm::parse_module("b", "
//! define int @helper(int %x) {
//! e:
//!   ret int %x
//! }").unwrap();
//! let linked = lpat_linker::link(vec![a, b], "prog").unwrap();
//! linked.verify().unwrap();
//! assert!(!linked.func(linked.func_by_name("helper").unwrap()).is_declaration());
//! ```

#![warn(missing_docs)]

use std::collections::HashMap;

use lpat_core::{
    Const, ConstId, FuncId, GlobalId, Inst, InstId, Linkage, Module, Type, TypeId, Value,
};

/// A linking failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinkError(pub String);

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "link error: {}", self.0)
    }
}

impl std::error::Error for LinkError {}

/// Link `modules` into a single module named `name`.
///
/// # Errors
///
/// Duplicate external definitions and signature mismatches between a
/// declaration and its definition are errors.
pub fn link(modules: Vec<Module>, name: &str) -> Result<Module, LinkError> {
    let mut dst = Module::new(name);
    for src in &modules {
        add_module(&mut dst, src)?;
    }
    Ok(dst)
}

/// Garbage-collect a module's type and constant tables by copying it into
/// a fresh module (dead type elimination).
pub fn compact(m: &Module) -> Module {
    let mut dst = Module::new(&m.name);
    add_module(&mut dst, m).expect("self-copy cannot conflict");
    dst
}

/// State for copying one source module into the destination.
struct Copier<'a> {
    src: &'a Module,
    tmap: HashMap<TypeId, TypeId>,
    cmap: HashMap<ConstId, ConstId>,
    gmap: HashMap<GlobalId, GlobalId>,
    fmap: HashMap<FuncId, FuncId>,
}

fn add_module(dst: &mut Module, src: &Module) -> Result<(), LinkError> {
    let mut cp = Copier {
        src,
        tmap: HashMap::new(),
        cmap: HashMap::new(),
        gmap: HashMap::new(),
        fmap: HashMap::new(),
    };

    // 1. Globals: resolve or create headers.
    for (gid, g) in src.globals() {
        let vty = cp.translate_type(dst, g.value_ty)?;
        let dst_id = match (g.linkage, dst.global_by_name(&g.name)) {
            (Linkage::External, Some(existing)) => {
                let ex = dst.global(existing).clone();
                if ex.value_ty != vty {
                    return Err(LinkError(format!(
                        "global @{} declared with conflicting types",
                        g.name
                    )));
                }
                match (ex.is_declaration(), g.is_declaration()) {
                    (_, true) => existing,     // src is a declaration: bind
                    (true, false) => existing, // definition fills declaration
                    (false, false) => {
                        return Err(LinkError(format!(
                            "duplicate definition of global @{}",
                            g.name
                        )))
                    }
                }
            }
            (Linkage::External, None) => {
                dst.add_global(&g.name, vty, None, g.is_const, Linkage::External)
            }
            (Linkage::Internal, prev) => {
                let name = match prev {
                    None => g.name.clone(),
                    Some(_) => fresh_name(dst, &g.name),
                };
                dst.add_global(&name, vty, None, g.is_const, Linkage::Internal)
            }
        };
        cp.gmap.insert(gid, dst_id);
    }

    // 2. Function headers.
    for (fid, f) in src.funcs() {
        let params: Result<Vec<TypeId>, LinkError> = f
            .params()
            .iter()
            .map(|&p| cp.translate_type(dst, p))
            .collect();
        let params = params?;
        let ret = cp.translate_type(dst, f.ret_type())?;
        let dst_id = match (f.linkage, dst.func_by_name(&f.name)) {
            (Linkage::External, Some(existing)) => {
                let ex = dst.func(existing);
                if ex.params() != params.as_slice()
                    || ex.ret_type() != ret
                    || ex.is_varargs() != f.is_varargs()
                {
                    return Err(LinkError(format!(
                        "function @{} declared with conflicting signatures",
                        f.name
                    )));
                }
                if !ex.is_declaration() && !f.is_declaration() {
                    return Err(LinkError(format!(
                        "duplicate definition of function @{}",
                        f.name
                    )));
                }
                existing
            }
            (Linkage::External, None) => {
                dst.add_function(&f.name, &params, ret, f.is_varargs(), Linkage::External)
            }
            (Linkage::Internal, prev) => {
                let name = match prev {
                    None => f.name.clone(),
                    Some(_) => fresh_name_fn(dst, &f.name),
                };
                dst.add_function(&name, &params, ret, f.is_varargs(), Linkage::Internal)
            }
        };
        cp.fmap.insert(fid, dst_id);
    }

    // 3. Global initializers.
    for (gid, g) in src.globals() {
        if let Some(init) = g.init {
            let di = cp.translate_const(dst, init)?;
            let dg = cp.gmap[&gid];
            if dst.global(dg).init.is_none() {
                dst.global_mut(dg).init = Some(di);
            }
        }
    }

    // 4. Function bodies.
    for (fid, f) in src.funcs() {
        if f.is_declaration() {
            continue;
        }
        let dfid = cp.fmap[&fid];
        if !dst.func(dfid).is_declaration() {
            // Filled by an earlier module; duplicate-definition errors were
            // raised above, so this is the same body already.
            continue;
        }
        cp.copy_body(dst, fid, dfid)?;
    }
    Ok(())
}

fn fresh_name(dst: &Module, base: &str) -> String {
    let mut i = 1;
    loop {
        let cand = format!("{base}.{i}");
        if dst.global_by_name(&cand).is_none() {
            return cand;
        }
        i += 1;
    }
}

fn fresh_name_fn(dst: &Module, base: &str) -> String {
    let mut i = 1;
    loop {
        let cand = format!("{base}.{i}");
        if dst.func_by_name(&cand).is_none() {
            return cand;
        }
        i += 1;
    }
}

impl<'a> Copier<'a> {
    fn translate_type(&mut self, dst: &mut Module, t: TypeId) -> Result<TypeId, LinkError> {
        if let Some(&d) = self.tmap.get(&t) {
            return Ok(d);
        }
        let made = match self.src.types.ty(t).clone() {
            Type::Void => dst.types.void(),
            Type::Bool => dst.types.bool_(),
            Type::Int(k) => dst.types.int(k),
            Type::F32 => dst.types.f32(),
            Type::F64 => dst.types.f64(),
            Type::Ptr(p) => {
                let dp = self.translate_type(dst, p)?;
                dst.types.ptr(dp)
            }
            Type::Array { elem, len } => {
                let de = self.translate_type(dst, elem)?;
                dst.types.array(de, len)
            }
            Type::Struct { name: None, fields } => {
                let df: Result<Vec<TypeId>, LinkError> = fields
                    .iter()
                    .map(|&f| self.translate_type(dst, f))
                    .collect();
                dst.types.struct_lit(df?)
            }
            Type::Struct {
                name: Some(n),
                fields,
            } => {
                // Named structs unify by name; create (or find) first so
                // recursive bodies terminate.
                let id = dst.types.named_struct(&n);
                self.tmap.insert(t, id);
                let df: Result<Vec<TypeId>, LinkError> = fields
                    .iter()
                    .map(|&f| self.translate_type(dst, f))
                    .collect();
                let df = df?;
                match dst.types.ty(id).clone() {
                    Type::Opaque(_) => dst.types.set_struct_body(id, df),
                    Type::Struct {
                        fields: existing, ..
                    } => {
                        if existing != df {
                            return Err(LinkError(format!(
                                "struct %{n} defined with conflicting bodies"
                            )));
                        }
                    }
                    _ => unreachable!(),
                }
                return Ok(id);
            }
            Type::Opaque(n) => dst.types.named_struct(&n),
            Type::Func {
                ret,
                params,
                varargs,
            } => {
                let dr = self.translate_type(dst, ret)?;
                let dp: Result<Vec<TypeId>, LinkError> = params
                    .iter()
                    .map(|&p| self.translate_type(dst, p))
                    .collect();
                dst.types.func(dr, dp?, varargs)
            }
        };
        self.tmap.insert(t, made);
        Ok(made)
    }

    fn translate_const(&mut self, dst: &mut Module, c: ConstId) -> Result<ConstId, LinkError> {
        if let Some(&d) = self.cmap.get(&c) {
            return Ok(d);
        }
        let made = match self.src.consts.get(c).clone() {
            Const::Bool(b) => dst.consts.bool_(b),
            Const::Int { kind, value } => dst.consts.int(kind, value),
            Const::F32(bits) => dst.consts.intern(Const::F32(bits)),
            Const::F64(bits) => dst.consts.intern(Const::F64(bits)),
            Const::Null(t) => {
                let dt = self.translate_type(dst, t)?;
                dst.consts.null(dt)
            }
            Const::Undef(t) => {
                let dt = self.translate_type(dst, t)?;
                dst.consts.undef(dt)
            }
            Const::Zero(t) => {
                let dt = self.translate_type(dst, t)?;
                dst.consts.zero(dt)
            }
            Const::Array { ty, elems } => {
                let dt = self.translate_type(dst, ty)?;
                let de: Result<Vec<ConstId>, LinkError> = elems
                    .iter()
                    .map(|&e| self.translate_const(dst, e))
                    .collect();
                dst.consts.array(dt, de?)
            }
            Const::Struct { ty, fields } => {
                let dt = self.translate_type(dst, ty)?;
                let de: Result<Vec<ConstId>, LinkError> = fields
                    .iter()
                    .map(|&e| self.translate_const(dst, e))
                    .collect();
                dst.consts.struct_(dt, de?)
            }
            Const::GlobalAddr(g) => {
                let dg = self.gmap[&g];
                dst.consts.global_addr(dg)
            }
            Const::FuncAddr(f) => {
                let df = self.fmap[&f];
                dst.consts.func_addr(df)
            }
        };
        self.cmap.insert(c, made);
        Ok(made)
    }

    fn copy_body(&mut self, dst: &mut Module, sfid: FuncId, dfid: FuncId) -> Result<(), LinkError> {
        let src_f = self.src.func(sfid);
        // Dense remap of (possibly sparse) source instruction ids.
        let mut imap: HashMap<InstId, InstId> = HashMap::new();
        for (k, oi) in src_f.inst_ids_in_order().enumerate() {
            imap.insert(oi, InstId::from_index(k));
        }
        for _ in 0..src_f.num_blocks() {
            dst.func_mut(dfid).add_block();
        }
        for b in src_f.block_ids() {
            for &oi in src_f.block_insts(b) {
                let ty = self.translate_type(dst, src_f.inst_ty(oi))?;
                let inst = self.translate_inst(dst, src_f.inst(oi).clone(), &imap)?;
                let fm = dst.func_mut(dfid);
                let made = fm.new_inst(inst, ty);
                debug_assert_eq!(Some(&made), imap.get(&oi));
                let mut insts = fm.block_insts(b).to_vec();
                insts.push(made);
                fm.set_block_insts(b, insts);
            }
        }
        Ok(())
    }

    fn translate_inst(
        &mut self,
        dst: &mut Module,
        mut inst: Inst,
        imap: &HashMap<InstId, InstId>,
    ) -> Result<Inst, LinkError> {
        // Operand values first (constants may introduce new pool entries).
        let mut err = None;
        let mut mapped = Vec::new();
        inst.for_each_operand(|v| mapped.push(v));
        let mut out = Vec::with_capacity(mapped.len());
        for v in mapped {
            out.push(match v {
                Value::Inst(i) => {
                    Value::Inst(*imap.get(&i).ok_or_else(|| {
                        LinkError("operand references unlinked instruction".into())
                    })?)
                }
                Value::Arg(n) => Value::Arg(n),
                Value::Const(c) => match self.translate_const(dst, c) {
                    Ok(dc) => Value::Const(dc),
                    Err(e) => {
                        err = Some(e);
                        Value::Const(c)
                    }
                },
            });
        }
        if let Some(e) = err {
            return Err(e);
        }
        let mut it = out.into_iter();
        inst.map_operands(|_| it.next().expect("operand count stable"));
        // Embedded types and constants.
        match &mut inst {
            Inst::Malloc { elem_ty, .. } | Inst::Alloca { elem_ty, .. } => {
                *elem_ty = self.translate_type(dst, *elem_ty)?;
            }
            Inst::Cast { to, .. } => {
                *to = self.translate_type(dst, *to)?;
            }
            Inst::VaArg { ty } => {
                *ty = self.translate_type(dst, *ty)?;
            }
            Inst::Switch { cases, .. } => {
                for (c, _) in cases {
                    *c = self.translate_const(dst, *c)?;
                }
            }
            _ => {}
        }
        Ok(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    fn p(name: &str, src: &str) -> Module {
        let m = parse_module(name, src).unwrap();
        m.verify().unwrap();
        m
    }

    #[test]
    fn resolves_declaration_to_definition_both_orders() {
        let a = "declare int @f(int)\ndefine int @main() {\ne:\n  %v = call int @f(int 1)\n  ret int %v\n}";
        let b = "define int @f(int %x) {\ne:\n  ret int %x\n}";
        for order in [vec![a, b], vec![b, a]] {
            let ms: Vec<Module> = order
                .iter()
                .enumerate()
                .map(|(i, s)| p(&format!("m{i}"), s))
                .collect();
            let linked = link(ms, "prog").unwrap();
            linked.verify().unwrap();
            let f = linked.func_by_name("f").unwrap();
            assert!(!linked.func(f).is_declaration());
            assert_eq!(linked.num_funcs(), 2);
        }
    }

    #[test]
    fn duplicate_definitions_error() {
        let a = p("a", "define void @f() {\ne:\n  ret void\n}");
        let b = p("b", "define void @f() {\ne:\n  ret void\n}");
        assert!(link(vec![a, b], "prog").is_err());
    }

    #[test]
    fn internal_symbols_renamed_not_merged() {
        let a = p(
            "a",
            "define internal int @helper() {\ne:\n  ret int 1\n}\ndefine int @main() {\ne:\n  %v = call int @helper()\n  ret int %v\n}",
        );
        let b = p(
            "b",
            "define internal int @helper() {\ne:\n  ret int 2\n}\ndefine int @other() {\ne:\n  %v = call int @helper()\n  ret int %v\n}",
        );
        let linked = link(vec![a, b], "prog").unwrap();
        linked.verify().unwrap();
        assert_eq!(linked.num_funcs(), 4);
        assert!(linked.func_by_name("helper").is_some());
        assert!(linked.func_by_name("helper.1").is_some());
        // Each caller still calls its own helper.
        let text = linked.display();
        assert!(text.contains("call int @helper.1()"), "{text}");
    }

    #[test]
    fn named_struct_unifies_across_modules() {
        let a = p(
            "a",
            "%node = type { int, %node* }\ndefine int @head(%node* %n) {\ne:\n  %p = getelementptr %node* %n, long 0, ubyte 0\n  %v = load int* %p\n  ret int %v\n}",
        );
        let b = p(
            "b",
            "%node = type { int, %node* }\n@root = global %node* null\ndefine %node* @get_root() {\ne:\n  %v = load %node** @root\n  ret %node* %v\n}",
        );
        let linked = link(vec![a, b], "prog").unwrap();
        linked.verify().unwrap();
        // One %node type in the output text.
        let text = linked.display();
        assert_eq!(text.matches("%node = type").count(), 1, "{text}");
    }

    #[test]
    fn conflicting_struct_bodies_error() {
        let a = p("a", "%s = type { int }\n@x = global %s zeroinitializer");
        let b = p("b", "%s = type { float }\n@y = global %s zeroinitializer");
        assert!(link(vec![a, b], "prog").is_err());
    }

    #[test]
    fn globals_resolve_and_initializers_survive() {
        let a = p("a", "@g = external global int\ndefine int @rd() {\ne:\n  %v = load int* @g\n  ret int %v\n}");
        let b = p("b", "@g = global int 42");
        let linked = link(vec![a, b], "prog").unwrap();
        linked.verify().unwrap();
        let g = linked.global_by_name("g").unwrap();
        assert!(linked.global(g).init.is_some());
        assert_eq!(linked.num_globals(), 1);
    }

    #[test]
    fn signature_mismatch_is_error() {
        let a = p("a", "declare int @f(int)");
        let b = p(
            "b",
            "define float @f(int %x) {\ne:\n  %v = cast int %x to float\n  ret float %v\n}",
        );
        assert!(link(vec![a, b], "prog").is_err());
    }

    #[test]
    fn compact_drops_dead_types_and_consts() {
        let mut m = p("a", "define int @main() {\ne:\n  ret int 1\n}");
        // Pollute the tables with unreferenced entries.
        let junk = m.types.struct_lit(vec![]);
        let junk2 = m.types.array(junk, 8);
        m.consts.f64(123.25);
        m.consts.zero(junk2);
        let before_types = m.types.len();
        let before_consts = m.consts.len();
        let c = compact(&m);
        c.verify().unwrap();
        assert!(c.types.len() < before_types);
        assert!(c.consts.len() < before_consts);
        assert_eq!(c.display(), m.display());
    }

    #[test]
    fn three_module_program_links_and_runs_through_verifier() {
        let a = p(
            "a",
            "
%pair = type { int, int }
declare %pair* @make(int, int)
declare int @sum(%pair*)
define int @main() {
e:
  %p = call %pair* @make(int 3, int 4)
  %s = call int @sum(%pair* %p)
  ret int %s
}",
        );
        let b = p(
            "b",
            "
%pair = type { int, int }
define %pair* @make(int %a, int %b) {
e:
  %p = malloc %pair
  %pa = getelementptr %pair* %p, long 0, ubyte 0
  store int %a, int* %pa
  %pb = getelementptr %pair* %p, long 0, ubyte 1
  store int %b, int* %pb
  ret %pair* %p
}",
        );
        let c = p(
            "c",
            "
%pair = type { int, int }
define int @sum(%pair* %p) {
e:
  %pa = getelementptr %pair* %p, long 0, ubyte 0
  %a = load int* %pa
  %pb = getelementptr %pair* %p, long 0, ubyte 1
  %b = load int* %pb
  %s = add int %a, %b
  ret int %s
}",
        );
        let linked = link(vec![a, b, c], "prog").unwrap();
        linked.verify().unwrap();
        assert_eq!(linked.num_funcs(), 3);
        assert!(linked.funcs().all(|(_, f)| !f.is_declaration()));
    }
}
