//! Mod/Ref analysis (paper §3.3).
//!
//! Computes, for every function, the set of DSA nodes it may modify and may
//! read — directly or through any callee. Clients (e.g. redundancy
//! elimination across calls) can then ask whether a call may clobber the
//! object a given pointer refers to.

use std::collections::HashSet;

use lpat_core::{FuncId, Inst, Module, Value};

use crate::callgraph::CallGraph;
use crate::dsa::{Dsa, NodeId};

/// Mod/Ref summary of one function.
#[derive(Clone, Debug, Default)]
pub struct ModRefSet {
    /// Nodes possibly written.
    pub modifies: HashSet<NodeId>,
    /// Nodes possibly read.
    pub reads: HashSet<NodeId>,
    /// Whether the function (transitively) calls unanalyzable external
    /// code, which may touch anything reachable from it.
    pub calls_external: bool,
}

/// Module-wide Mod/Ref results.
pub struct ModRef {
    sets: Vec<ModRefSet>,
}

impl ModRef {
    /// Compute Mod/Ref for every function, propagating over the call graph
    /// to a fixpoint (cycles in the call graph are handled by iteration).
    pub fn compute(m: &Module, cg: &CallGraph, dsa: &Dsa) -> ModRef {
        let n = m.num_funcs();
        let mut sets = vec![ModRefSet::default(); n];
        // Local effects.
        for (fid, f) in m.funcs() {
            let set = &mut sets[fid.index()];
            for iid in f.inst_ids_in_order() {
                match f.inst(iid) {
                    Inst::Store { ptr, .. } => {
                        if let Some(node) = dsa.node_of(m, fid, *ptr) {
                            set.modifies.insert(node);
                        }
                    }
                    Inst::Load { ptr } => {
                        if let Some(node) = dsa.node_of(m, fid, *ptr) {
                            set.reads.insert(node);
                        }
                    }
                    Inst::Call { callee, .. } | Inst::Invoke { callee, .. } => {
                        let ext = match callee {
                            Value::Const(c) => match m.consts.get(*c) {
                                lpat_core::Const::FuncAddr(t) => m.func(*t).is_declaration(),
                                _ => true,
                            },
                            _ => false, // indirect: resolved via call graph edges
                        };
                        if ext {
                            set.calls_external = true;
                        }
                    }
                    _ => {}
                }
            }
        }
        // Transitive closure over the call graph.
        let mut changed = true;
        while changed {
            changed = false;
            for fid in m.func_ids() {
                let callees: Vec<FuncId> = cg.callees(fid).to_vec();
                for c in callees {
                    if c == fid {
                        continue;
                    }
                    let (mods, reads, ext): (Vec<NodeId>, Vec<NodeId>, bool) = {
                        let cs = &sets[c.index()];
                        (
                            cs.modifies.iter().copied().collect(),
                            cs.reads.iter().copied().collect(),
                            cs.calls_external,
                        )
                    };
                    let set = &mut sets[fid.index()];
                    for x in mods {
                        changed |= set.modifies.insert(x);
                    }
                    for x in reads {
                        changed |= set.reads.insert(x);
                    }
                    if ext && !set.calls_external {
                        set.calls_external = true;
                        changed = true;
                    }
                }
            }
        }
        ModRef { sets }
    }

    /// The summary of `f`.
    pub fn summary(&self, f: FuncId) -> &ModRefSet {
        &self.sets[f.index()]
    }

    /// May a call to `callee` modify the object node `n`?
    pub fn call_may_mod(&self, dsa: &Dsa, callee: FuncId, n: NodeId) -> bool {
        let s = &self.sets[callee.index()];
        if s.calls_external && dsa.node_flags(n).external {
            return true;
        }
        // Compare through union-find representatives.
        s.modifies.iter().any(|&m| m == n)
    }

    /// May a call to `callee` read the object node `n`?
    pub fn call_may_ref(&self, dsa: &Dsa, callee: FuncId, n: NodeId) -> bool {
        let s = &self.sets[callee.index()];
        if s.calls_external && dsa.node_flags(n).external {
            return true;
        }
        s.reads.iter().any(|&m| m == n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsa::DsaOptions;
    use lpat_asm::parse_module;

    fn setup(src: &str) -> (Module, CallGraph, Dsa) {
        let m = parse_module("t", src).unwrap();
        m.verify().unwrap();
        let cg = CallGraph::build(&m);
        let dsa = Dsa::analyze(&m, &cg, &DsaOptions::default());
        (m, cg, dsa)
    }

    #[test]
    fn pure_function_modifies_nothing() {
        let (m, cg, dsa) = setup(
            "
@g = global int 0
define int @pure(int %x) {
e:
  %y = add int %x, 1
  ret int %y
}
define int @writer() {
e:
  store int 1, int* @g
  ret int 0
}",
        );
        let mr = ModRef::compute(&m, &cg, &dsa);
        let pure = m.func_by_name("pure").unwrap();
        let writer = m.func_by_name("writer").unwrap();
        assert!(mr.summary(pure).modifies.is_empty());
        assert!(!mr.summary(writer).modifies.is_empty());
        let g = dsa.node_of_global(m.global_by_name("g").unwrap());
        assert!(mr.call_may_mod(&dsa, writer, g));
        assert!(!mr.call_may_mod(&dsa, pure, g));
    }

    #[test]
    fn effects_propagate_through_callers() {
        let (m, cg, dsa) = setup(
            "
@g = global int 0
define void @leaf() {
e:
  store int 1, int* @g
  ret void
}
define void @mid() {
e:
  call void @leaf()
  ret void
}
define void @top() {
e:
  call void @mid()
  ret void
}",
        );
        let mr = ModRef::compute(&m, &cg, &dsa);
        let top = m.func_by_name("top").unwrap();
        let g = dsa.node_of_global(m.global_by_name("g").unwrap());
        assert!(mr.call_may_mod(&dsa, top, g));
        assert!(!mr.call_may_ref(&dsa, top, g));
    }

    #[test]
    fn recursive_functions_converge() {
        let (m, cg, dsa) = setup(
            "
@g = global int 0
define void @a(int %n) {
e:
  %c = setgt int %n, 0
  br bool %c, label %rec, label %done
rec:
  %v = load int* @g
  %n2 = sub int %n, 1
  call void @a(int %n2)
  br label %done
done:
  ret void
}",
        );
        let mr = ModRef::compute(&m, &cg, &dsa);
        let a = m.func_by_name("a").unwrap();
        let g = dsa.node_of_global(m.global_by_name("g").unwrap());
        assert!(mr.call_may_ref(&dsa, a, g));
        assert!(!mr.call_may_mod(&dsa, a, g));
    }
}
