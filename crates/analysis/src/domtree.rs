//! Dominator tree and dominance frontiers.
//!
//! Builds on the immediate-dominator computation in `lpat-core` (used there
//! by the verifier) and adds the tree structure and the dominance frontiers
//! required by SSA construction (the stack-promotion pass inserts φ-nodes on
//! the iterated dominance frontier of each store — paper §3.2).

use lpat_core::{BlockId, Dominators, Function};

/// Dominator tree with child lists and dominance frontiers.
#[derive(Clone, Debug)]
pub struct DomTree {
    doms: Dominators,
    children: Vec<Vec<BlockId>>,
    frontier: Vec<Vec<BlockId>>,
}

impl DomTree {
    /// Compute the dominator tree of `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a declaration.
    pub fn compute(f: &Function) -> DomTree {
        let doms = Dominators::compute(f);
        let n = f.num_blocks();
        let mut children = vec![Vec::new(); n];
        for b in f.block_ids() {
            if b == f.entry() {
                continue;
            }
            if let Some(idom) = doms.idom[b.index()] {
                children[idom.index()].push(b);
            }
        }
        // Dominance frontiers (Cooper–Harvey–Kennedy).
        let mut frontier = vec![Vec::new(); n];
        let preds = f.predecessors();
        for b in f.block_ids() {
            if preds[b.index()].len() < 2 {
                continue;
            }
            let idom_b = match doms.idom[b.index()] {
                Some(i) => i,
                None => continue, // unreachable
            };
            for &p in &preds[b.index()] {
                if doms.idom[p.index()].is_none() {
                    continue; // unreachable predecessor
                }
                let mut runner = p;
                while runner != idom_b {
                    if !frontier[runner.index()].contains(&b) {
                        frontier[runner.index()].push(b);
                    }
                    runner = match doms.idom[runner.index()] {
                        Some(i) if i != runner => i,
                        _ => break,
                    };
                }
            }
        }
        DomTree {
            doms,
            children,
            frontier,
        }
    }

    /// The underlying immediate-dominator table.
    pub fn dominators(&self) -> &Dominators {
        &self.doms
    }

    /// Immediate dominator of `b` (`None` for the entry and unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.doms.idom[b.index()] {
            Some(i) if i != b => Some(i),
            _ => None,
        }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        self.doms.dominates(a, b)
    }

    /// Dominator-tree children of `b`.
    pub fn children(&self, b: BlockId) -> &[BlockId] {
        &self.children[b.index()]
    }

    /// Dominance frontier of `b`.
    pub fn frontier(&self, b: BlockId) -> &[BlockId] {
        &self.frontier[b.index()]
    }

    /// Reverse postorder of reachable blocks.
    pub fn rpo(&self) -> &[BlockId] {
        &self.doms.rpo
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.doms.is_reachable(b)
    }

    /// Iterated dominance frontier of a set of blocks (the φ-placement set
    /// of pruned SSA construction).
    pub fn iterated_frontier(&self, blocks: &[BlockId]) -> Vec<BlockId> {
        let mut in_set = vec![false; self.children.len()];
        let mut out = Vec::new();
        let mut work: Vec<BlockId> = blocks.to_vec();
        while let Some(b) = work.pop() {
            for &d in self.frontier(b) {
                if !in_set[d.index()] {
                    in_set[d.index()] = true;
                    out.push(d);
                    work.push(d);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    fn diamond() -> (lpat_core::Module, lpat_core::FuncId) {
        let m = parse_module(
            "t",
            "
define int @f(bool %c) {
e:
  br bool %c, label %l, label %r
l:
  br label %j
r:
  br label %j
j:
  ret int 0
}",
        )
        .unwrap();
        let f = m.func_by_name("f").unwrap();
        (m, f)
    }

    #[test]
    fn frontiers_of_diamond() {
        let (m, fid) = diamond();
        let f = m.func(fid);
        let dt = DomTree::compute(f);
        let b = |i: usize| BlockId::from_index(i);
        // l and r have frontier {j}; e and j have empty frontiers.
        assert_eq!(dt.frontier(b(1)), &[b(3)]);
        assert_eq!(dt.frontier(b(2)), &[b(3)]);
        assert!(dt.frontier(b(0)).is_empty());
        assert!(dt.frontier(b(3)).is_empty());
        assert_eq!(dt.children(b(0)).len(), 3);
        assert_eq!(dt.idom(b(3)), Some(b(0)));
        assert_eq!(dt.idom(b(0)), None);
    }

    #[test]
    fn loop_header_frontier_includes_itself() {
        let m = parse_module(
            "t",
            "
define void @f(int %n) {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %b ]
  %c = setlt int %i, %n
  br bool %c, label %b, label %x
b:
  %i2 = add int %i, 1
  br label %h
x:
  ret void
}",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        let dt = DomTree::compute(m.func(fid));
        let h = BlockId::from_index(1);
        let b = BlockId::from_index(2);
        assert!(dt.frontier(b).contains(&h));
        let idf = dt.iterated_frontier(&[b]);
        assert!(idf.contains(&h));
    }
}
