//! Natural-loop detection.
//!
//! Identifies back edges via the dominator tree and collects natural loop
//! bodies. Used by the runtime profiler (hot *loop regions* are the unit of
//! instrumentation — paper §3.5) and by profile-guided optimization.

use lpat_core::{BlockId, Function};

use crate::domtree::DomTree;

/// One natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop header (target of the back edge).
    pub header: BlockId,
    /// Blocks in the loop body, header included.
    pub body: Vec<BlockId>,
    /// Back-edge sources (latches).
    pub latches: Vec<BlockId>,
    /// Loop nesting depth (outermost = 1).
    pub depth: u32,
}

/// All natural loops of a function.
#[derive(Clone, Debug, Default)]
pub struct LoopInfo {
    /// Loops, outermost first (sorted by body size, descending).
    pub loops: Vec<Loop>,
    /// For each block, the depth of the innermost loop containing it
    /// (0 = not in a loop).
    pub depth: Vec<u32>,
}

impl LoopInfo {
    /// Compute loop info for `f` using `dt`.
    pub fn compute(f: &Function, dt: &DomTree) -> LoopInfo {
        let n = f.num_blocks();
        // Find back edges: s -> h where h dominates s.
        let mut headers: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for b in f.block_ids() {
            if !dt.is_reachable(b) {
                continue;
            }
            for s in f.successors(b) {
                if dt.dominates(s, b) {
                    match headers.iter_mut().find(|(h, _)| *h == s) {
                        Some((_, latches)) => latches.push(b),
                        None => headers.push((s, vec![b])),
                    }
                }
            }
        }
        let preds = f.predecessors();
        let mut loops = Vec::new();
        for (header, latches) in headers {
            // Natural loop: header + all blocks that reach a latch without
            // passing through the header.
            let mut in_body = vec![false; n];
            in_body[header.index()] = true;
            let mut body = vec![header];
            let mut work: Vec<BlockId> = latches.clone();
            while let Some(b) = work.pop() {
                if in_body[b.index()] {
                    continue;
                }
                in_body[b.index()] = true;
                body.push(b);
                for &p in &preds[b.index()] {
                    if dt.is_reachable(p) {
                        work.push(p);
                    }
                }
            }
            body.sort();
            loops.push(Loop {
                header,
                body,
                latches,
                depth: 0,
            });
        }
        // Nesting depth: a block's depth = number of loops containing it.
        let mut depth = vec![0u32; n];
        for l in &loops {
            for b in &l.body {
                depth[b.index()] += 1;
            }
        }
        for l in &mut loops {
            l.depth = depth[l.header.index()];
        }
        loops.sort_by_key(|l| std::cmp::Reverse(l.body.len()));
        LoopInfo { loops, depth }
    }

    /// Depth of the innermost loop containing `b` (0 if none).
    pub fn depth_of(&self, b: BlockId) -> u32 {
        self.depth.get(b.index()).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    #[test]
    fn finds_nested_loops() {
        let m = parse_module(
            "t",
            "
define void @f(int %n) {
e:
  br label %oh
oh:
  %i = phi int [ 0, %e ], [ %i2, %ol ]
  br label %ih
ih:
  %j = phi int [ 0, %oh ], [ %j2, %ib ]
  %c = setlt int %j, %n
  br bool %c, label %ib, label %ol
ib:
  %j2 = add int %j, 1
  br label %ih
ol:
  %i2 = add int %i, 1
  %c2 = setlt int %i2, %n
  br bool %c2, label %oh, label %x
x:
  ret void
}",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        let f = m.func(fid);
        let dt = DomTree::compute(f);
        let li = LoopInfo::compute(f, &dt);
        assert_eq!(li.loops.len(), 2);
        // Outer loop (header oh = block 1) contains the inner one.
        let outer = &li.loops[0];
        let inner = &li.loops[1];
        assert_eq!(outer.header, BlockId::from_index(1));
        assert_eq!(inner.header, BlockId::from_index(2));
        assert!(outer.body.len() > inner.body.len());
        assert_eq!(outer.depth, 1);
        assert_eq!(inner.depth, 2);
        // Block order: e=0 oh=1 ih=2 ib=3 ol=4 x=5.
        assert_eq!(li.depth_of(BlockId::from_index(3)), 2); // ib
        assert_eq!(li.depth_of(BlockId::from_index(4)), 1); // ol
        assert_eq!(li.depth_of(BlockId::from_index(5)), 0); // x
    }

    #[test]
    fn no_loops_in_dag() {
        let m = parse_module(
            "t",
            "
define void @f(bool %c) {
e:
  br bool %c, label %a, label %b
a:
  br label %x
b:
  br label %x
x:
  ret void
}",
        )
        .unwrap();
        let fid = m.func_by_name("f").unwrap();
        let f = m.func(fid);
        let li = LoopInfo::compute(f, &DomTree::compute(f));
        assert!(li.loops.is_empty());
    }
}
