//! Analysis caching with explicit invalidation.
//!
//! The pass framework's counterpart to LLVM's analysis manager: analyses
//! are computed on demand, cached, and reused until something invalidates
//! them. Two mechanisms drive invalidation:
//!
//! * **Modification counters.** Every [`Function`] carries a version
//!   number bumped by each mutating method. A cached per-function analysis
//!   remembers the version it was computed at; a mismatch at request time
//!   means the cache entry is stale and is recomputed (a *miss*).
//! * **[`PreservedAnalyses`].** Every pass reports which analysis classes
//!   it kept valid. When a pass mutates a function but preserves the CFG
//!   (the common case — constant folding, GVN, dead-code removal), the
//!   manager re-stamps the cached entries to the new version instead of
//!   discarding them, which is what turns recomputation into cache *hits*
//!   for the next pass. A pass that does not preserve an analysis class
//!   causes the cached entries to be dropped (*invalidations*).
//!
//! Per-function analyses (dominator trees, loops) live in [`FuncAnalyses`]
//! slots — one per function — so the parallel function-pass executor can
//! hand each worker its functions' slots without sharing. The module-level
//! call graph is cached directly on the [`AnalysisManager`].

use std::ops::Sub;

use lpat_core::{Function, Module};

use crate::callgraph::CallGraph;
use crate::domtree::DomTree;
use crate::loops::LoopInfo;

/// Which analysis classes a pass kept valid. Returned by every pass; the
/// manager applies it after the pass runs.
///
/// The contract is about *classes*, not instances: `cfg: true` promises
/// the function's control-flow structure (blocks, edges) is unchanged
/// since the pass's last analysis request, so CFG-derived analyses
/// (dominators, loops) computed during or before the pass remain valid
/// even though instruction-level edits bumped the modification counter.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PreservedAnalyses {
    /// CFG-derived per-function analyses (dominator tree, loop info)
    /// survive this pass.
    pub cfg: bool,
    /// The module call graph survives this pass.
    pub call_graph: bool,
}

impl PreservedAnalyses {
    /// The pass changed nothing the caches care about.
    pub fn all() -> PreservedAnalyses {
        PreservedAnalyses {
            cfg: true,
            call_graph: true,
        }
    }

    /// Conservative bottom: every cached analysis is dropped.
    pub fn none() -> PreservedAnalyses {
        PreservedAnalyses {
            cfg: false,
            call_graph: false,
        }
    }

    /// CFG shape intact, but calls may have been added or removed (e.g.
    /// a pass that rewrites instructions without touching block edges
    /// cannot promise the call graph if it deletes call instructions).
    pub fn cfg_only() -> PreservedAnalyses {
        PreservedAnalyses {
            cfg: true,
            call_graph: false,
        }
    }

    /// Intersection: preserved only if both sides preserved.
    pub fn intersect(self, other: PreservedAnalyses) -> PreservedAnalyses {
        PreservedAnalyses {
            cfg: self.cfg && other.cfg,
            call_graph: self.call_graph && other.call_graph,
        }
    }
}

/// Cache traffic counters. `Sub` yields the delta between two snapshots,
/// which is how per-pass counts are attributed.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from cache.
    pub hits: u64,
    /// Requests that had to (re)compute.
    pub misses: u64,
    /// Cached entries dropped by a pass that did not preserve them.
    pub invalidations: u64,
}

impl CacheStats {
    /// Accumulate another counter set into this one.
    pub fn add(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.invalidations += other.invalidations;
    }

    /// Whether all counters are zero.
    pub fn is_empty(&self) -> bool {
        *self == CacheStats::default()
    }
}

impl Sub for CacheStats {
    type Output = CacheStats;
    fn sub(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - rhs.hits,
            misses: self.misses - rhs.misses,
            invalidations: self.invalidations - rhs.invalidations,
        }
    }
}

/// The cached analyses of one function, stamped with the function version
/// they were computed at.
#[derive(Debug, Default)]
pub struct FuncAnalyses {
    domtree: Option<(u64, DomTree)>,
    loops: Option<(u64, LoopInfo)>,
    stats: CacheStats,
}

impl FuncAnalyses {
    /// The dominator tree of `f`, cached across passes that preserve the
    /// CFG.
    pub fn domtree(&mut self, f: &Function) -> &DomTree {
        match &self.domtree {
            Some((v, _)) if *v == f.version() => self.stats.hits += 1,
            _ => {
                self.stats.misses += 1;
                self.domtree = Some((f.version(), DomTree::compute(f)));
            }
        }
        &self.domtree.as_ref().unwrap().1
    }

    /// The natural-loop forest of `f`, cached like the dominator tree.
    pub fn loops(&mut self, f: &Function) -> &LoopInfo {
        let fresh = matches!(&self.loops, Some((v, _)) if *v == f.version());
        if fresh {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            // Computing loops needs the dominator tree; route the request
            // through the cache (it counts as its own hit or miss).
            let dt_fresh = matches!(&self.domtree, Some((v, _)) if *v == f.version());
            if dt_fresh {
                self.stats.hits += 1;
            } else {
                self.stats.misses += 1;
                self.domtree = Some((f.version(), DomTree::compute(f)));
            }
            let dt = &self.domtree.as_ref().unwrap().1;
            self.loops = Some((f.version(), LoopInfo::compute(f, dt)));
        }
        &self.loops.as_ref().unwrap().1
    }

    /// Apply a pass's [`PreservedAnalyses`] at function version
    /// `new_version` (the version after the pass ran): re-stamp preserved
    /// entries so later requests hit, drop the rest.
    pub fn apply(&mut self, preserved: &PreservedAnalyses, new_version: u64) {
        if preserved.cfg {
            if let Some((v, _)) = &mut self.domtree {
                *v = new_version;
            }
            if let Some((v, _)) = &mut self.loops {
                *v = new_version;
            }
        } else {
            self.stats.invalidations += self.domtree.is_some() as u64 + self.loops.is_some() as u64;
            self.domtree = None;
            self.loops = None;
        }
    }

    /// Drop every cached entry of this slot, counting invalidations.
    ///
    /// Used when a pass faults and the function is rolled back to its
    /// pre-pass snapshot: entries computed *during* the pass are stamped
    /// with version numbers the restored function will reach again later
    /// (the snapshot restores the old counter), so keeping them would risk
    /// an ABA mismatch — a stale analysis treated as fresh.
    pub fn invalidate(&mut self) {
        self.stats.invalidations += self.domtree.is_some() as u64 + self.loops.is_some() as u64;
        self.domtree = None;
        self.loops = None;
    }

    /// Snapshot of this slot's cache counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// Module-wide analysis cache: one [`FuncAnalyses`] slot per function plus
/// the call graph. Owned by the pass manager's context and threaded
/// through every pass.
#[derive(Debug, Default)]
pub struct AnalysisManager {
    funcs: Vec<FuncAnalyses>,
    call_graph: Option<CallGraph>,
    cg_stats: CacheStats,
}

impl AnalysisManager {
    /// An empty manager.
    pub fn new() -> AnalysisManager {
        AnalysisManager::default()
    }

    /// The call graph of `m`, cached until a pass fails to preserve it.
    pub fn call_graph(&mut self, m: &Module) -> &CallGraph {
        if self.call_graph.is_some() {
            self.cg_stats.hits += 1;
        } else {
            self.cg_stats.misses += 1;
            self.call_graph = Some(CallGraph::build(m));
        }
        self.call_graph.as_ref().unwrap()
    }

    /// Drop the cached call graph (a pass mutated calls mid-run and wants
    /// a rebuild before its next request).
    pub fn invalidate_call_graph(&mut self) {
        if self.call_graph.take().is_some() {
            self.cg_stats.invalidations += 1;
        }
    }

    /// The per-function analysis slots, resized to `n` functions. The
    /// function-pass executor distributes these across workers alongside
    /// the function bodies.
    pub fn func_slots(&mut self, n: usize) -> &mut [FuncAnalyses] {
        if self.funcs.len() != n {
            // The function table was renumbered (functions added or
            // removed): positional slots no longer line up, drop them all.
            let dropped: u64 = self
                .funcs
                .iter()
                .map(|s| s.domtree.is_some() as u64 + s.loops.is_some() as u64)
                .sum();
            self.cg_stats.invalidations += dropped;
            self.funcs.clear();
            self.funcs.resize_with(n, FuncAnalyses::default);
        }
        &mut self.funcs
    }

    /// Apply a module pass's [`PreservedAnalyses`]. `num_funcs` is the
    /// function count after the pass (a changed count always drops the
    /// per-function slots, preserved or not).
    pub fn apply(&mut self, preserved: &PreservedAnalyses, num_funcs: usize) {
        if !preserved.call_graph {
            self.invalidate_call_graph();
        }
        if !preserved.cfg || self.funcs.len() != num_funcs {
            let dropped: u64 = self
                .funcs
                .iter()
                .map(|s| s.domtree.is_some() as u64 + s.loops.is_some() as u64)
                .sum();
            self.cg_stats.invalidations += dropped;
            self.funcs.clear();
            self.funcs.resize_with(num_funcs, FuncAnalyses::default);
        }
    }

    /// Drop everything: the call graph and every per-function entry.
    ///
    /// The pass manager calls this after rolling a module back to a
    /// pre-pass snapshot — the restored functions carry their old version
    /// counters, so any entry cached during the faulted pass could later
    /// collide with a re-used version number (see
    /// [`FuncAnalyses::invalidate`]).
    pub fn invalidate_all(&mut self) {
        self.invalidate_call_graph();
        for s in &mut self.funcs {
            s.invalidate();
        }
    }

    /// Aggregate cache counters: every function slot plus the call graph.
    pub fn stats(&self) -> CacheStats {
        let mut total = self.cg_stats;
        for s in &self.funcs {
            total.add(s.stats);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    fn sample() -> Module {
        parse_module(
            "t",
            "
define int @f(int %x) {
e:
  %c = setlt int %x, 10
  br bool %c, label %a, label %b
a:
  ret int 1
b:
  ret int 2
}",
        )
        .unwrap()
    }

    #[test]
    fn domtree_hits_when_version_unchanged() {
        let m = sample();
        let f = m.func(m.func_by_name("f").unwrap());
        let mut fa = FuncAnalyses::default();
        fa.domtree(f);
        fa.domtree(f);
        let s = fa.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn mutation_forces_recompute_but_preserved_restamps() {
        let mut m = sample();
        let fid = m.func_by_name("f").unwrap();
        let mut fa = FuncAnalyses::default();
        fa.domtree(m.func(fid));
        // An instruction-level edit bumps the version...
        let f = m.func_mut(fid);
        let term = f.terminator(f.entry()).unwrap();
        let _ = f.inst_mut(term);
        // ...so without a preserved re-stamp the next request misses.
        fa.domtree(m.func(fid));
        assert_eq!(fa.stats().misses, 2);
        // With a CFG-preserving re-stamp, it hits.
        let f = m.func_mut(fid);
        let _ = f.inst_mut(term);
        let v = f.version();
        fa.apply(&PreservedAnalyses::all(), v);
        fa.domtree(m.func(fid));
        assert_eq!(fa.stats().hits, 1);
    }

    #[test]
    fn non_preserving_pass_invalidates() {
        let m = sample();
        let f = m.func(m.func_by_name("f").unwrap());
        let mut fa = FuncAnalyses::default();
        fa.domtree(f);
        fa.apply(&PreservedAnalyses::none(), f.version());
        assert_eq!(fa.stats().invalidations, 1);
        fa.domtree(f);
        assert_eq!(fa.stats().misses, 2);
    }

    #[test]
    fn call_graph_caches_and_invalidates() {
        let m = sample();
        let mut am = AnalysisManager::new();
        am.call_graph(&m);
        am.call_graph(&m);
        assert_eq!((am.stats().hits, am.stats().misses), (1, 1));
        am.apply(&PreservedAnalyses::cfg_only(), m.num_funcs());
        am.call_graph(&m);
        let s = am.stats();
        assert_eq!((s.misses, s.invalidations), (2, 1));
    }

    #[test]
    fn loops_ride_the_domtree_cache() {
        let m = sample();
        let f = m.func(m.func_by_name("f").unwrap());
        let mut fa = FuncAnalyses::default();
        fa.domtree(f); // miss
        fa.loops(f); // loops miss + domtree hit
        fa.loops(f); // hit
        let s = fa.stats();
        assert_eq!((s.hits, s.misses), (2, 2));
    }
}
