//! Call-graph construction (paper §3.3).
//!
//! Handles direct calls precisely and indirect calls through function
//! pointers conservatively, by matching every *address-taken* function with
//! a compatible type. Used by the interprocedural optimizers (inlining,
//! dead-global elimination, dead-argument elimination) and by Mod/Ref.

use std::collections::HashSet;

use lpat_core::{Const, FuncId, Inst, Module, Value};

/// The module call graph.
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// `callees[f]`: functions directly or possibly (indirect) called by `f`.
    callees: Vec<Vec<FuncId>>,
    /// `callers[f]`: inverse edges.
    callers: Vec<Vec<FuncId>>,
    /// Functions whose address is taken somewhere other than a direct call
    /// (stored in memory, a global initializer, or passed as data).
    address_taken: HashSet<FuncId>,
    /// Functions containing at least one indirect call.
    has_indirect_call: Vec<bool>,
    /// Number of direct call sites per callee.
    direct_call_sites: Vec<usize>,
}

impl CallGraph {
    /// Build the call graph of `m`.
    pub fn build(m: &Module) -> CallGraph {
        let n = m.num_funcs();
        let mut callees: Vec<HashSet<FuncId>> = vec![HashSet::new(); n];
        let mut address_taken = HashSet::new();
        let mut has_indirect_call = vec![false; n];
        let mut direct_call_sites = vec![0usize; n];

        // Addresses taken in global initializers (e.g. vtables).
        for (_, g) in m.globals() {
            if let Some(init) = g.init {
                collect_func_addrs(m, init, &mut address_taken);
            }
        }

        let direct_callee = |v: Value| -> Option<FuncId> {
            match v {
                Value::Const(c) => match m.consts.get(c) {
                    Const::FuncAddr(f) => Some(*f),
                    _ => None,
                },
                _ => None,
            }
        };

        for (fid, f) in m.funcs() {
            for iid in f.inst_ids_in_order() {
                let inst = f.inst(iid);
                match inst {
                    Inst::Call { callee, args } | Inst::Invoke { callee, args, .. } => {
                        match direct_callee(*callee) {
                            Some(t) => {
                                callees[fid.index()].insert(t);
                                direct_call_sites[t.index()] += 1;
                            }
                            None => has_indirect_call[fid.index()] = true,
                        }
                        // Function addresses passed as *arguments* are taken.
                        for a in args {
                            if let Value::Const(c) = a {
                                collect_func_addrs(m, *c, &mut address_taken);
                            }
                        }
                    }
                    other => {
                        // Any other use of a function address takes it.
                        other.for_each_operand(|v| {
                            if let Value::Const(c) = v {
                                collect_func_addrs(m, c, &mut address_taken);
                            }
                        });
                    }
                }
            }
        }

        // Indirect calls: add conservative edges to every address-taken
        // function whose signature matches any indirect call site in the
        // caller. (Type matching is implicit: linking them all is sound and
        // simple; DSA can refine this.)
        for fid in m.func_ids() {
            if has_indirect_call[fid.index()] {
                for &t in address_taken.iter() {
                    callees[fid.index()].insert(t);
                }
            }
        }

        let mut callers: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        let callees: Vec<Vec<FuncId>> = callees
            .into_iter()
            .map(|s| {
                let mut v: Vec<FuncId> = s.into_iter().collect();
                v.sort();
                v
            })
            .collect();
        for (f, cs) in callees.iter().enumerate() {
            for c in cs {
                callers[c.index()].push(FuncId::from_index(f));
            }
        }
        CallGraph {
            callees,
            callers,
            address_taken,
            has_indirect_call,
            direct_call_sites,
        }
    }

    /// Possible callees of `f`.
    pub fn callees(&self, f: FuncId) -> &[FuncId] {
        &self.callees[f.index()]
    }

    /// Possible callers of `f`.
    pub fn callers(&self, f: FuncId) -> &[FuncId] {
        &self.callers[f.index()]
    }

    /// Whether `f`'s address escapes into data.
    pub fn is_address_taken(&self, f: FuncId) -> bool {
        self.address_taken.contains(&f)
    }

    /// Whether `f` contains an indirect call site.
    pub fn has_indirect_call(&self, f: FuncId) -> bool {
        self.has_indirect_call[f.index()]
    }

    /// Number of direct call sites targeting `f`.
    pub fn direct_call_sites(&self, f: FuncId) -> usize {
        self.direct_call_sites[f.index()]
    }

    /// Post-order of the call graph from `roots` (callees before callers
    /// where the graph is acyclic); recursion is handled by visited marks.
    ///
    /// The inliner processes functions bottom-up in this order.
    pub fn post_order(&self, roots: &[FuncId]) -> Vec<FuncId> {
        let n = self.callees.len();
        let mut state = vec![0u8; n];
        let mut out = Vec::new();
        for &r in roots {
            if state[r.index()] != 0 {
                continue;
            }
            let mut stack = vec![(r, 0usize)];
            state[r.index()] = 1;
            while let Some(&mut (f, ref mut i)) = stack.last_mut() {
                let cs = &self.callees[f.index()];
                if *i < cs.len() {
                    let c = cs[*i];
                    *i += 1;
                    if state[c.index()] == 0 {
                        state[c.index()] = 1;
                        stack.push((c, 0));
                    }
                } else {
                    state[f.index()] = 2;
                    out.push(f);
                    stack.pop();
                }
            }
        }
        out
    }
}

/// Collect all function addresses reachable from constant `c`.
fn collect_func_addrs(m: &Module, c: lpat_core::ConstId, out: &mut HashSet<FuncId>) {
    match m.consts.get(c) {
        Const::FuncAddr(f) => {
            out.insert(*f);
        }
        Const::Array { elems, .. } => {
            for e in elems {
                collect_func_addrs(m, *e, out);
            }
        }
        Const::Struct { fields, .. } => {
            for e in fields {
                collect_func_addrs(m, *e, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    #[test]
    fn direct_edges_and_postorder() {
        let m = parse_module(
            "t",
            "
define void @leaf() {
e:
  ret void
}
define void @mid() {
e:
  call void @leaf()
  ret void
}
define void @main() {
e:
  call void @mid()
  call void @leaf()
  ret void
}",
        )
        .unwrap();
        let cg = CallGraph::build(&m);
        let leaf = m.func_by_name("leaf").unwrap();
        let mid = m.func_by_name("mid").unwrap();
        let main = m.func_by_name("main").unwrap();
        assert_eq!(cg.callees(main), &[leaf, mid]);
        assert_eq!(cg.callees(mid), &[leaf]);
        assert_eq!(cg.callers(leaf), &[mid, main]);
        assert_eq!(cg.direct_call_sites(leaf), 2);
        assert!(!cg.is_address_taken(leaf));
        let po = cg.post_order(&[main]);
        assert_eq!(po, vec![leaf, mid, main]);
    }

    #[test]
    fn vtable_makes_address_taken_and_indirect_edges() {
        let m = parse_module(
            "t",
            "
define int @impl(int %x) {
e:
  ret int %x
}
@vt = constant [1 x int (int)*] [ int (int)* @impl ]
define int @call_virtual(int %x) {
e:
  %s = getelementptr [1 x int (int)*]* @vt, long 0, long 0
  %fp = load int (int)** %s
  %r = call int %fp(int %x)
  ret int %r
}",
        )
        .unwrap();
        let cg = CallGraph::build(&m);
        let imp = m.func_by_name("impl").unwrap();
        let cv = m.func_by_name("call_virtual").unwrap();
        assert!(cg.is_address_taken(imp));
        assert!(cg.has_indirect_call(cv));
        assert!(cg.callees(cv).contains(&imp));
    }

    #[test]
    fn recursion_does_not_hang_postorder() {
        let m = parse_module(
            "t",
            "
define void @a() {
e:
  call void @b()
  ret void
}
define void @b() {
e:
  call void @a()
  ret void
}",
        )
        .unwrap();
        let cg = CallGraph::build(&m);
        let a = m.func_by_name("a").unwrap();
        let po = cg.post_order(&[a]);
        assert_eq!(po.len(), 2);
    }
}
