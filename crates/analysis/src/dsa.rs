//! Data-structure analysis (DSA): a flow-insensitive, field-sensitive,
//! unification-based pointer analysis with **speculative type checking**
//! (paper §3.3, §4.1.1).
//!
//! Memory objects are abstracted by graph *nodes*. Each node carries the
//! *declared* type of its allocation (from `malloc`/`alloca` element types
//! and global definitions) as **speculative** type information, and the
//! analysis *checks* — it never infers — that every access through the node
//! is consistent with that type. When accesses disagree (custom allocators
//! carving objects out of byte arrays, one object used under two struct
//! types, integer-to-pointer tricks), the node is **collapsed** and all its
//! accesses become untyped. Table 1 of the paper counts the static loads
//! and stores whose node survives un-collapsed with a matching field type;
//! [`Dsa::access_stats`] reproduces that metric.
//!
//! Simplifications relative to the paper's full DSA: the analysis here is
//! context-insensitive (one global graph rather than bottom-up/top-down
//! per-function graphs) and unification-based throughout. It remains
//! field-sensitive and speculative, which are the properties the type
//! statistics depend on.

use std::collections::{BTreeMap, HashMap, HashSet};

use lpat_core::{
    Const, ConstId, FuncId, Function, GlobalId, Inst, InstId, Module, Type, TypeId, Value,
};

use crate::callgraph::CallGraph;

/// Handle to a DSA node (always resolve through union-find before use).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Where a node's storage lives and how it is used.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeFlags {
    /// Allocated by `malloc`.
    pub heap: bool,
    /// Allocated by `alloca`.
    pub stack: bool,
    /// A global variable.
    pub global: bool,
    /// Reachable by external (unanalyzed) code.
    pub external: bool,
    /// Written through some pointer.
    pub modified: bool,
    /// Read through some pointer.
    pub read: bool,
    /// Represents a function (code, not data).
    pub function: bool,
}

impl NodeFlags {
    fn merge(&mut self, o: NodeFlags) {
        self.heap |= o.heap;
        self.stack |= o.stack;
        self.global |= o.global;
        self.external |= o.external;
        self.modified |= o.modified;
        self.read |= o.read;
        self.function |= o.function;
    }
}

#[derive(Clone, Debug, Default)]
struct NodeData {
    /// Speculative declared type of the object (None = not yet known).
    ty: Option<TypeId>,
    /// Type information lost.
    collapsed: bool,
    /// Pointer field targets by byte offset.
    fields: BTreeMap<u64, NodeId>,
    flags: NodeFlags,
}

/// A pointer value's static offset into its node.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Off {
    Known(u64),
    Unknown,
}

impl Off {
    fn add(self, d: Off) -> Off {
        match (self, d) {
            (Off::Known(a), Off::Known(b)) => Off::Known(a + b),
            _ => Off::Unknown,
        }
    }
    fn meet(a: Option<Off>, b: Off) -> Off {
        match a {
            None => b,
            Some(Off::Known(x)) => match b {
                Off::Known(y) if y == x => Off::Known(x),
                _ => Off::Unknown,
            },
            Some(Off::Unknown) => Off::Unknown,
        }
    }
}

/// Analysis options.
#[derive(Clone, Debug)]
pub struct DsaOptions {
    /// External functions that neither capture nor retype their pointer
    /// arguments (I/O helpers, `puts`-alikes). Pointers passed to any
    /// *other* external are conservatively collapsed.
    pub benign_externals: HashSet<String>,
    /// Field sensitivity (disable for the Table 1 ablation: every
    /// `getelementptr` offset becomes unknown, collapsing aggressively).
    pub field_sensitive: bool,
}

impl Default for DsaOptions {
    fn default() -> Self {
        let benign = [
            "puts",
            "printf",
            "print_int",
            "print_str",
            "print_double",
            "read_int",
            "putchar",
            "exit",
            "abort",
        ];
        DsaOptions {
            benign_externals: benign.iter().map(|s| s.to_string()).collect(),
            field_sensitive: true,
        }
    }
}

/// Per-access classification, for reporting.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AccessInfo {
    /// The load or store instruction.
    pub inst: InstId,
    /// Whether reliable type information is available for the accessed
    /// object (the Table 1 "Typed" column).
    pub typed: bool,
}

/// Aggregate typed-access statistics (one row of Table 1).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Loads/stores with reliable type information.
    pub typed: usize,
    /// Loads/stores without.
    pub untyped: usize,
}

impl AccessStats {
    /// `typed / (typed + untyped)` as a percentage.
    pub fn percent(&self) -> f64 {
        let total = self.typed + self.untyped;
        if total == 0 {
            100.0
        } else {
            self.typed as f64 * 100.0 / total as f64
        }
    }
}

/// The analysis result.
pub struct Dsa {
    uf: Vec<u32>,
    nodes: Vec<NodeData>,
    global_nodes: Vec<NodeId>,
    func_obj_nodes: Vec<NodeId>,
    param_nodes: Vec<Vec<Option<NodeId>>>,
    ret_nodes: Vec<Option<NodeId>>,
    /// Per-function map from pointer values to nodes.
    val_nodes: Vec<HashMap<Value, NodeId>>,
    /// Per-function pointer offsets.
    offsets: Vec<HashMap<Value, Off>>,
    /// Per-function access classification.
    accesses: Vec<Vec<AccessInfo>>,
}

impl Dsa {
    /// Run the analysis over a whole module (this is a link-time,
    /// whole-program analysis: precision comes from seeing every function —
    /// paper §4.2.1 point (a)).
    pub fn analyze(m: &Module, cg: &CallGraph, opts: &DsaOptions) -> Dsa {
        let mut a = Builder::new(m, cg, opts);
        a.seed();
        a.constraints();
        a.classify();
        a.finish()
    }

    /// Typed-access statistics for the whole module.
    pub fn access_stats(&self) -> AccessStats {
        let mut s = AccessStats::default();
        for f in &self.accesses {
            for acc in f {
                if acc.typed {
                    s.typed += 1;
                } else {
                    s.untyped += 1;
                }
            }
        }
        s
    }

    /// Typed-access statistics for one function.
    pub fn access_stats_for(&self, f: FuncId) -> AccessStats {
        let mut s = AccessStats::default();
        for acc in &self.accesses[f.index()] {
            if acc.typed {
                s.typed += 1;
            } else {
                s.untyped += 1;
            }
        }
        s
    }

    /// Per-access classification for one function.
    pub fn accesses(&self, f: FuncId) -> &[AccessInfo] {
        &self.accesses[f.index()]
    }

    fn find(&self, mut n: u32) -> u32 {
        while self.uf[n as usize] != n {
            n = self.uf[n as usize];
        }
        n
    }

    /// The representative node a pointer value points to, if tracked.
    pub fn node_of(&self, m: &Module, f: FuncId, v: Value) -> Option<NodeId> {
        if let Value::Const(c) = v {
            match m.consts.get(c) {
                Const::GlobalAddr(g) => return Some(self.node_of_global(*g)),
                Const::FuncAddr(t) => {
                    return Some(NodeId(self.find(self.func_obj_nodes[t.index()].0)))
                }
                _ => {}
            }
        }
        self.val_nodes[f.index()]
            .get(&v)
            .map(|n| NodeId(self.find(n.0)))
    }

    /// The node of a global variable.
    pub fn node_of_global(&self, g: GlobalId) -> NodeId {
        NodeId(self.find(self.global_nodes[g.index()].0))
    }

    /// Whether the node has lost its type information.
    pub fn is_collapsed(&self, n: NodeId) -> bool {
        self.nodes[self.find(n.0) as usize].collapsed
    }

    /// The node's speculative declared type, when intact.
    pub fn node_type(&self, n: NodeId) -> Option<TypeId> {
        self.nodes[self.find(n.0) as usize].ty
    }

    /// Storage/usage flags of the node.
    pub fn node_flags(&self, n: NodeId) -> NodeFlags {
        self.nodes[self.find(n.0) as usize].flags
    }

    /// May `a` and `b` alias (point into the same object)?
    ///
    /// Unification-based: two pointers alias iff they map to the same node.
    /// Returns `true` (conservative) when either value is untracked.
    pub fn may_alias(&self, m: &Module, f: FuncId, a: Value, b: Value) -> bool {
        match (self.node_of(m, f, a), self.node_of(m, f, b)) {
            (Some(x), Some(y)) => x == y,
            _ => true,
        }
    }

    /// The points-to node of parameter `i` of function `f`, when the
    /// parameter is pointer-typed.
    pub fn param_node(&self, f: FuncId, i: usize) -> Option<NodeId> {
        self.param_nodes[f.index()]
            .get(i)
            .copied()
            .flatten()
            .map(|n| NodeId(self.find(n.0)))
    }

    /// The points-to node of `f`'s return value, when pointer-typed.
    pub fn ret_node(&self, f: FuncId) -> Option<NodeId> {
        self.ret_nodes[f.index()].map(|n| NodeId(self.find(n.0)))
    }

    /// The static byte offset of pointer value `v` into its node, when
    /// known exactly (`None` covers both untracked values and unknown
    /// offsets).
    pub fn known_offset(&self, f: FuncId, v: Value) -> Option<u64> {
        match self.offsets[f.index()].get(&v) {
            Some(Off::Known(o)) => Some(*o),
            _ => None,
        }
    }

    /// Iterate all representative nodes.
    pub fn rep_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.uf.len() as u32)
            .filter(move |&i| self.uf[i as usize] == i)
            .map(NodeId)
    }
}

// ----------------------------------------------------------------------
// Construction
// ----------------------------------------------------------------------

struct Builder<'a> {
    m: &'a Module,
    cg: &'a CallGraph,
    opts: &'a DsaOptions,
    uf: Vec<u32>,
    nodes: Vec<NodeData>,
    global_nodes: Vec<NodeId>,
    func_obj_nodes: Vec<NodeId>,
    param_nodes: Vec<Vec<Option<NodeId>>>,
    ret_nodes: Vec<Option<NodeId>>,
    val_nodes: Vec<HashMap<Value, NodeId>>,
    offsets: Vec<HashMap<Value, Off>>,
    accesses: Vec<Vec<AccessInfo>>,
}

impl<'a> Builder<'a> {
    fn new(m: &'a Module, cg: &'a CallGraph, opts: &'a DsaOptions) -> Builder<'a> {
        Builder {
            m,
            cg,
            opts,
            uf: Vec::new(),
            nodes: Vec::new(),
            global_nodes: Vec::new(),
            func_obj_nodes: Vec::new(),
            param_nodes: Vec::new(),
            ret_nodes: Vec::new(),
            val_nodes: vec![HashMap::new(); m.num_funcs()],
            offsets: vec![HashMap::new(); m.num_funcs()],
            accesses: vec![Vec::new(); m.num_funcs()],
        }
    }

    fn fresh(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.uf.push(id.0);
        self.nodes.push(NodeData::default());
        id
    }

    fn find(&mut self, mut n: u32) -> u32 {
        // Path halving.
        while self.uf[n as usize] != n {
            self.uf[n as usize] = self.uf[self.uf[n as usize] as usize];
            n = self.uf[n as usize];
        }
        n
    }

    /// Unify two nodes (and, transitively, their matching fields).
    fn union(&mut self, a: NodeId, b: NodeId) {
        let mut work = vec![(a, b)];
        while let Some((a, b)) = work.pop() {
            let ra = self.find(a.0);
            let rb = self.find(b.0);
            if ra == rb {
                continue;
            }
            // Merge rb into ra.
            self.uf[rb as usize] = ra;
            let bdata = std::mem::take(&mut self.nodes[rb as usize]);
            let adata = &mut self.nodes[ra as usize];
            adata.flags.merge(bdata.flags);
            let mut need_collapse = bdata.collapsed;
            match (adata.ty, bdata.ty) {
                (Some(x), Some(y)) if x != y => need_collapse = true,
                (None, Some(y)) => adata.ty = Some(y),
                _ => {}
            }
            for (off, n) in bdata.fields {
                match self.nodes[ra as usize].fields.get(&off) {
                    Some(&e) => work.push((e, n)),
                    None => {
                        self.nodes[ra as usize].fields.insert(off, n);
                    }
                }
            }
            if need_collapse {
                self.collapse_into(NodeId(ra), &mut work);
            }
        }
    }

    /// Collapse a node: type info is lost, all pointer fields merge into a
    /// single successor at offset 0.
    fn collapse_into(&mut self, n: NodeId, work: &mut Vec<(NodeId, NodeId)>) {
        let r = self.find(n.0);
        let data = &mut self.nodes[r as usize];
        data.collapsed = true;
        data.ty = None;
        let fields = std::mem::take(&mut data.fields);
        let mut it = fields.into_values();
        if let Some(first) = it.next() {
            self.nodes[r as usize].fields.insert(0, first);
            for other in it {
                work.push((first, other));
            }
        }
    }

    fn collapse(&mut self, n: NodeId) {
        let mut work = Vec::new();
        self.collapse_into(n, &mut work);
        while let Some((a, b)) = work.pop() {
            self.union(a, b);
        }
    }

    /// Speculatively set the declared allocation type; a disagreement
    /// collapses the node (we check, never infer).
    fn set_alloc_type(&mut self, n: NodeId, ty: TypeId) {
        let r = self.find(n.0);
        let data = &mut self.nodes[r as usize];
        if data.collapsed {
            return;
        }
        match data.ty {
            None => data.ty = Some(ty),
            Some(t) if t == ty => {}
            Some(_) => self.collapse(NodeId(r)),
        }
    }

    /// The node a pointer stored in `n` at `off` points to.
    fn field(&mut self, n: NodeId, off: Off) -> NodeId {
        let mut r = self.find(n.0);
        let off = match off {
            Off::Known(o) if !self.nodes[r as usize].collapsed => o,
            _ => {
                self.collapse(NodeId(r));
                r = self.find(r);
                0
            }
        };
        if let Some(&f) = self.nodes[r as usize].fields.get(&off) {
            return f;
        }
        let f = self.fresh();
        let rep = self.find(r) as usize;
        self.nodes[rep].fields.insert(off, f);
        f
    }

    fn flags_mut(&mut self, n: NodeId) -> &mut NodeFlags {
        let r = self.find(n.0);
        &mut self.nodes[r as usize].flags
    }

    /// Node for a value; created fresh on first sight.
    fn node_of(&mut self, fid: FuncId, v: Value) -> NodeId {
        if let Value::Const(c) = v {
            match self.m.consts.get(c) {
                Const::GlobalAddr(g) => return self.global_nodes[g.index()],
                Const::FuncAddr(f) => return self.func_obj_nodes[f.index()],
                _ => {}
            }
        }
        if let Some(&n) = self.val_nodes[fid.index()].get(&v) {
            return n;
        }
        let n = self.fresh();
        self.val_nodes[fid.index()].insert(v, n);
        n
    }

    // ---- seeding --------------------------------------------------------

    fn seed(&mut self) {
        for (gid, g) in self.m.globals() {
            let n = self.fresh();
            self.global_nodes.push(n);
            self.set_alloc_type(n, g.value_ty);
            self.flags_mut(n).global = true;
            if g.is_declaration() {
                self.flags_mut(n).external = true;
            }
            let _ = gid;
        }
        for (fid, f) in self.m.funcs() {
            let n = self.fresh();
            self.func_obj_nodes.push(n);
            self.flags_mut(n).function = true;
            let params = f
                .params()
                .iter()
                .map(|&p| {
                    if self.m.types.is_ptr(p) {
                        Some(self.fresh())
                    } else {
                        None
                    }
                })
                .collect();
            self.param_nodes.push(params);
            let ret = if self.m.types.is_ptr(f.ret_type()) {
                Some(self.fresh())
            } else {
                None
            };
            self.ret_nodes.push(ret);
            let _ = fid;
        }
        // Global initializers: pointer fields link to their targets.
        for (gid, g) in self.m.globals() {
            if let Some(init) = g.init {
                let n = self.global_nodes[gid.index()];
                self.seed_init(n, 0, init);
            }
        }
        // Pointer params map to their param node at offset 0.
        for (fid, f) in self.m.funcs() {
            for (i, &p) in f.params().to_vec().iter().enumerate() {
                if self.m.types.is_ptr(p) {
                    let pn = self.param_nodes[fid.index()][i].unwrap();
                    self.val_nodes[fid.index()].insert(Value::Arg(i as u32), pn);
                }
            }
        }
    }

    /// Link pointer constants inside initializers into the node graph.
    fn seed_init(&mut self, n: NodeId, off: u64, c: ConstId) {
        match self.m.consts.get(c).clone() {
            Const::GlobalAddr(g) => {
                let target = self.global_nodes[g.index()];
                let f = self.field(n, Off::Known(off));
                self.union(f, target);
            }
            Const::FuncAddr(fu) => {
                let target = self.func_obj_nodes[fu.index()];
                let f = self.field(n, Off::Known(off));
                self.union(f, target);
            }
            Const::Array { ty, elems } => {
                let elem_ty = match self.m.types.ty(ty) {
                    Type::Array { elem, .. } => *elem,
                    _ => return,
                };
                let sz = self.m.types.size_of(elem_ty);
                for (i, e) in elems.iter().enumerate() {
                    // Array elements fold: field sensitivity is modulo the
                    // element size, so link at the folded offset.
                    let _ = i;
                    let _ = sz;
                    self.seed_init(n, off, *e);
                }
            }
            Const::Struct { ty, fields } => {
                for (i, e) in fields.iter().enumerate() {
                    let fo = self.m.types.field_offset(ty, i);
                    self.seed_init(n, off + fo, *e);
                }
            }
            _ => {}
        }
    }

    // ---- offsets ---------------------------------------------------------

    /// Flow-insensitive fixpoint computing each pointer value's byte offset
    /// into its node. Arrays fold: a variable index contributes zero, so
    /// `a[i].f` keeps the field offset of `f`.
    fn compute_offsets(&mut self, fid: FuncId) {
        let f = self.m.func(fid);
        let mut offs: HashMap<Value, Off> = HashMap::new();
        // Roots.
        for (i, &p) in f.params().iter().enumerate() {
            if self.m.types.is_ptr(p) {
                offs.insert(Value::Arg(i as u32), Off::Known(0));
            }
        }
        let inst_ids: Vec<InstId> = f.inst_ids_in_order().collect();
        let mut changed = true;
        while changed {
            changed = false;
            for &iid in &inst_ids {
                let v = Value::Inst(iid);
                let ty = f.inst_ty(iid);
                if !self.m.types.is_ptr(ty) {
                    continue;
                }
                let new = match f.inst(iid) {
                    Inst::Alloca { .. }
                    | Inst::Malloc { .. }
                    | Inst::Load { .. }
                    | Inst::Call { .. }
                    | Inst::Invoke { .. }
                    | Inst::VaArg { .. } => Off::Known(0),
                    Inst::Cast { val, .. } => {
                        let src_ty = self.m.value_type(f, *val);
                        if self.m.types.is_ptr(src_ty) {
                            match self.value_off(&offs, *val) {
                                Some(o) => o,
                                None => continue,
                            }
                        } else {
                            Off::Unknown // int -> ptr
                        }
                    }
                    Inst::Gep { ptr, indices } => {
                        let base = match self.value_off(&offs, *ptr) {
                            Some(o) => o,
                            None => continue,
                        };
                        let bty = self.m.value_type(f, *ptr);
                        base.add(self.gep_delta(f, bty, indices))
                    }
                    Inst::Phi { incoming } => {
                        let mut acc: Option<Off> = None;
                        let mut any = false;
                        for (v, _) in incoming {
                            if let Some(o) = self.value_off(&offs, *v) {
                                acc = Some(Off::meet(acc, o));
                                any = true;
                            }
                        }
                        match (any, acc) {
                            (true, Some(o)) => o,
                            _ => continue,
                        }
                    }
                    Inst::Bin { .. } => Off::Unknown, // pointer arithmetic outside gep
                    _ => Off::Known(0),
                };
                let entry = offs.get(&v).copied();
                let merged = Off::meet(entry, new);
                if entry != Some(merged) {
                    offs.insert(v, merged);
                    changed = true;
                }
            }
        }
        self.offsets[fid.index()] = offs;
    }

    fn value_off(&self, offs: &HashMap<Value, Off>, v: Value) -> Option<Off> {
        match v {
            Value::Const(_) => Some(Off::Known(0)),
            _ => offs.get(&v).copied(),
        }
    }

    /// Byte delta contributed by a GEP's index list. Constant indices give
    /// exact offsets; variable array indices fold to zero (array
    /// sensitivity is modulo the element size); anything irregular gives
    /// `Unknown`.
    fn gep_delta(&self, f: &Function, base_ptr_ty: TypeId, indices: &[Value]) -> Off {
        if !self.opts.field_sensitive {
            return Off::Unknown;
        }
        let tys = &self.m.types;
        let mut cur = match tys.pointee(base_ptr_ty) {
            Some(t) => t,
            None => return Off::Unknown,
        };
        let mut delta = 0u64;
        for (k, idx) in indices.iter().enumerate() {
            if k == 0 {
                // Pointer-as-array step.
                match self.const_int(*idx) {
                    Some(0) => {}
                    Some(v) => delta += (v as u64).wrapping_mul(tys.size_of(cur)) & 0xFFFF_FFFF,
                    None => {} // variable: fold (element-aligned)
                }
                continue;
            }
            match tys.ty(cur).clone() {
                Type::Struct { fields, .. } => {
                    let fi = match self.const_int(*idx) {
                        Some(v) => v as usize,
                        None => return Off::Unknown,
                    };
                    if fi >= fields.len() {
                        return Off::Unknown;
                    }
                    delta += tys.field_offset(cur, fi);
                    cur = fields[fi];
                }
                Type::Array { elem, .. } => {
                    // Non-constant index: fold (offset unknown within the array).
                    if let Some(v) = self.const_int(*idx) {
                        delta += (v as u64).wrapping_mul(tys.size_of(elem));
                    }
                    cur = elem;
                }
                _ => return Off::Unknown,
            }
        }
        let _ = f;
        Off::Known(delta)
    }

    fn const_int(&self, v: Value) -> Option<i64> {
        match v {
            Value::Const(c) => self.m.consts.as_int(c).map(|(_, v)| v),
            _ => None,
        }
    }

    // ---- constraints ------------------------------------------------------

    fn constraints(&mut self) {
        for fid in self.m.func_ids() {
            if self.m.func(fid).is_declaration() {
                continue;
            }
            self.compute_offsets(fid);
            self.constrain_func(fid);
        }
    }

    fn constrain_func(&mut self, fid: FuncId) {
        let f = self.m.func(fid).clone();
        let tys_is_ptr = |b: &Builder<'_>, t: TypeId| -> bool { b.m.types.is_ptr(t) };
        for iid in f.inst_ids_in_order().collect::<Vec<_>>() {
            let inst = f.inst(iid).clone();
            let res = Value::Inst(iid);
            match inst {
                Inst::Alloca { elem_ty, count } | Inst::Malloc { elem_ty, count } => {
                    let n = self.node_of(fid, res);
                    let is_heap = matches!(f.inst(iid), Inst::Malloc { .. });
                    if is_heap {
                        self.flags_mut(n).heap = true;
                    } else {
                        self.flags_mut(n).stack = true;
                    }
                    match count {
                        None => self.set_alloc_type(n, elem_ty),
                        Some(c) => {
                            // `malloc T, uint N` is an array of T; constant
                            // N gives a precise array type, else fold to T
                            // (array sensitivity is modulo element size).
                            match self.const_int(c) {
                                Some(_) | None => self.set_alloc_type(n, elem_ty),
                            }
                        }
                    }
                }
                Inst::Cast { val, to } => {
                    let from = self.m.value_type(&f, val);
                    if tys_is_ptr(self, to) {
                        if tys_is_ptr(self, from) {
                            let a = self.node_of(fid, val);
                            let b = self.node_of(fid, res);
                            self.union(a, b);
                        } else {
                            // int -> ptr: unknown object.
                            let n = self.node_of(fid, res);
                            self.collapse(n);
                        }
                    }
                }
                Inst::Gep { ptr, .. } => {
                    let a = self.node_of(fid, ptr);
                    let b = self.node_of(fid, res);
                    self.union(a, b);
                }
                Inst::Phi { incoming } if tys_is_ptr(self, f.inst_ty(iid)) => {
                    let r = self.node_of(fid, res);
                    for (v, _) in incoming {
                        let n = self.node_of(fid, v);
                        self.union(r, n);
                    }
                }
                Inst::Load { ptr } => {
                    let n = self.node_of(fid, ptr);
                    self.flags_mut(n).read = true;
                    let ty = f.inst_ty(iid);
                    if tys_is_ptr(self, ty) {
                        let off = self.off_of(fid, ptr);
                        let fnode = self.field(n, off);
                        let r = self.node_of(fid, res);
                        self.union(fnode, r);
                    }
                }
                Inst::Store { val, ptr } => {
                    let n = self.node_of(fid, ptr);
                    self.flags_mut(n).modified = true;
                    let vt = self.m.value_type(&f, val);
                    if tys_is_ptr(self, vt) {
                        let off = self.off_of(fid, ptr);
                        let fnode = self.field(n, off);
                        let v = self.node_of(fid, val);
                        self.union(fnode, v);
                    }
                }
                Inst::Call { callee, args } | Inst::Invoke { callee, args, .. } => {
                    self.constrain_call(fid, &f, iid, callee, &args);
                }
                Inst::Ret(Some(v)) if tys_is_ptr(self, self.m.value_type(&f, v)) => {
                    let n = self.node_of(fid, v);
                    if let Some(rn) = self.ret_nodes[fid.index()] {
                        self.union(n, rn);
                    }
                }
                Inst::Free(_) => {}
                _ => {}
            }
        }
    }

    fn off_of(&self, fid: FuncId, v: Value) -> Off {
        match v {
            Value::Const(_) => Off::Known(0),
            _ => self.offsets[fid.index()]
                .get(&v)
                .copied()
                .unwrap_or(Off::Unknown),
        }
    }

    fn constrain_call(
        &mut self,
        fid: FuncId,
        f: &Function,
        iid: InstId,
        callee: Value,
        args: &[Value],
    ) {
        let res = Value::Inst(iid);
        let direct = match callee {
            Value::Const(c) => match self.m.consts.get(c) {
                Const::FuncAddr(t) => Some(*t),
                _ => None,
            },
            _ => None,
        };
        let targets: Vec<FuncId> = match direct {
            Some(t) => vec![t],
            None => self
                .m
                .func_ids()
                .filter(|t| self.cg.is_address_taken(*t))
                .collect(),
        };
        for t in targets {
            let target = self.m.func(t);
            if target.is_declaration() {
                let benign = self.opts.benign_externals.contains(&target.name);
                for &a in args {
                    let at = self.m.value_type(f, a);
                    if self.m.types.is_ptr(at) {
                        let n = self.node_of(fid, a);
                        self.flags_mut(n).external = true;
                        if !benign {
                            self.collapse_reachable(n);
                        }
                    }
                }
                if self.m.types.is_ptr(f.inst_ty(iid)) {
                    let n = self.node_of(fid, res);
                    self.flags_mut(n).external = true;
                    if !benign {
                        self.collapse(n);
                    }
                }
                continue;
            }
            for (i, &a) in args.iter().enumerate() {
                let at = self.m.value_type(f, a);
                if !self.m.types.is_ptr(at) {
                    continue;
                }
                if let Some(Some(pn)) = self.param_nodes[t.index()].get(i).copied() {
                    let n = self.node_of(fid, a);
                    self.union(n, pn);
                }
            }
            if self.m.types.is_ptr(f.inst_ty(iid)) {
                if let Some(rn) = self.ret_nodes[t.index()] {
                    let n = self.node_of(fid, res);
                    self.union(n, rn);
                }
            }
        }
    }

    /// Conservatively collapse a node and everything reachable from it
    /// (an unanalyzed external may follow any pointer chain it receives).
    fn collapse_reachable(&mut self, n: NodeId) {
        let mut seen = HashSet::new();
        let mut work = vec![n];
        while let Some(n) = work.pop() {
            let r = self.find(n.0);
            if !seen.insert(r) {
                continue;
            }
            self.collapse(NodeId(r));
            let r = self.find(r);
            self.nodes[r as usize].flags.external = true;
            let succs: Vec<NodeId> = self.nodes[r as usize].fields.values().copied().collect();
            work.extend(succs);
        }
    }

    // ---- classification ----------------------------------------------------

    fn classify(&mut self) {
        for fid in self.m.func_ids() {
            let f = self.m.func(fid).clone();
            if f.is_declaration() {
                continue;
            }
            let mut out = Vec::new();
            for iid in f.inst_ids_in_order() {
                let (ptr, want) = match f.inst(iid) {
                    Inst::Load { ptr } => (*ptr, f.inst_ty(iid)),
                    Inst::Store { val, ptr } => (*ptr, self.m.value_type(&f, *val)),
                    _ => continue,
                };
                let typed = self.access_is_typed(fid, ptr, want);
                out.push(AccessInfo { inst: iid, typed });
            }
            self.accesses[fid.index()] = out;
        }
    }

    fn access_is_typed(&mut self, fid: FuncId, ptr: Value, want: TypeId) -> bool {
        let n = self.node_of(fid, ptr);
        let r = self.find(n.0);
        let data = &self.nodes[r as usize];
        if data.collapsed {
            return false;
        }
        let declared = match data.ty {
            Some(t) => t,
            None => return false,
        };
        let off = match self.off_of(fid, ptr) {
            Off::Known(o) => o,
            Off::Unknown => return false,
        };
        type_at_offset(self.m, declared, off, want)
    }

    fn finish(self) -> Dsa {
        Dsa {
            uf: self.uf,
            nodes: self.nodes,
            global_nodes: self.global_nodes,
            func_obj_nodes: self.func_obj_nodes,
            param_nodes: self.param_nodes,
            ret_nodes: self.ret_nodes,
            val_nodes: self.val_nodes,
            offsets: self.offsets,
            accesses: self.accesses,
        }
    }
}

/// Check whether type `declared`, viewed at byte offset `off`, has a
/// primitive or pointer component of exactly type `want`.
///
/// Arrays fold: offsets are taken modulo the element size, which is what
/// makes `a[i].f` accesses typed without reasoning about `i`.
pub fn type_at_offset(m: &Module, declared: TypeId, off: u64, want: TypeId) -> bool {
    let mut cur = declared;
    let mut off = off;
    loop {
        if cur == want && off == 0 {
            return true;
        }
        match m.types.ty(cur).clone() {
            Type::Array { elem, .. } => {
                let sz = m.types.size_of(elem);
                if sz == 0 {
                    return false;
                }
                off %= sz;
                cur = elem;
            }
            Type::Struct { fields, .. } => {
                // Find the field containing `off`.
                let mut fo = 0u64;
                let mut found = None;
                for (i, &fty) in fields.iter().enumerate() {
                    let start = lpat_core::types::align_to(fo, m.types.align_of(fty));
                    let end = start + m.types.size_of(fty);
                    if off >= start && off < end {
                        found = Some((fty, off - start));
                        break;
                    }
                    fo = end;
                    let _ = i;
                }
                match found {
                    Some((fty, rem)) => {
                        cur = fty;
                        off = rem;
                    }
                    None => return false,
                }
            }
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    fn run(src: &str) -> (Module, Dsa) {
        let m = parse_module("t", src).unwrap();
        m.verify().unwrap();
        let cg = CallGraph::build(&m);
        let dsa = Dsa::analyze(&m, &cg, &DsaOptions::default());
        (m, dsa)
    }

    #[test]
    fn disciplined_code_is_fully_typed() {
        let (_, dsa) = run("
%pt = type { int, double }
define double @f(int %n) {
e:
  %p = malloc %pt
  %pi = getelementptr %pt* %p, long 0, ubyte 0
  store int %n, int* %pi
  %pd = getelementptr %pt* %p, long 0, ubyte 1
  store double 0x3FF0000000000000, double* %pd
  %v = load double* %pd
  ret double %v
}");
        let s = dsa.access_stats();
        assert_eq!(s.untyped, 0);
        assert_eq!(s.typed, 3);
        assert!((s.percent() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn custom_allocator_collapses() {
        // A pool allocator carving ints out of a byte array: the node's
        // declared type is sbyte, so int accesses are untyped.
        let (_, dsa) = run("
define int @f(int %n) {
e:
  %pool = malloc sbyte, uint 4096
  %p = cast sbyte* %pool to int*
  store int %n, int* %p
  %v = load int* %p
  ret int %v
}");
        let s = dsa.access_stats();
        assert_eq!(s.typed, 0);
        assert_eq!(s.untyped, 2);
    }

    #[test]
    fn type_punning_two_structs_collapses() {
        // Same object viewed as two different struct types (the 176.gcc
        // pattern): phi merges the two views, types disagree, collapse.
        let (_, dsa) = run("
%a = type { int, int }
%b = type { float, int }
define int @f(bool %c) {
e:
  br bool %c, label %l, label %r
l:
  %x = malloc %a
  %xp = cast %a* %x to int*
  br label %j
r:
  %y = malloc %b
  %yp = cast %b* %y to int*
  br label %j
j:
  %p = phi int* [ %xp, %l ], [ %yp, %r ]
  %v = load int* %p
  ret int %v
}");
        let s = dsa.access_stats();
        assert_eq!(s.typed, 0, "merged disagreeing types must collapse");
    }

    #[test]
    fn same_type_merge_stays_typed() {
        let (_, dsa) = run("
define int @f(bool %c) {
e:
  br bool %c, label %l, label %r
l:
  %x = malloc int
  br label %j
r:
  %y = malloc int
  br label %j
j:
  %p = phi int* [ %x, %l ], [ %y, %r ]
  %v = load int* %p
  ret int %v
}");
        assert_eq!(dsa.access_stats().typed, 1);
        assert_eq!(dsa.access_stats().untyped, 0);
    }

    #[test]
    fn array_of_structs_with_variable_index_stays_typed() {
        let (_, dsa) = run("
%s = type { int, float }
define float @f(long %i) {
e:
  %a = malloc [16 x %s]
  %p = getelementptr [16 x %s]* %a, long 0, long %i, ubyte 1
  %v = load float* %p
  ret float %v
}");
        assert_eq!(dsa.access_stats().typed, 1);
    }

    #[test]
    fn interprocedural_flow_keeps_types() {
        let (_, dsa) = run("
define void @init(int* %p) {
e:
  store int 1, int* %p
  ret void
}
define int @main() {
e:
  %x = malloc int
  call void @init(int* %x)
  %v = load int* %x
  ret int %v
}");
        assert_eq!(dsa.access_stats().typed, 2);
        assert_eq!(dsa.access_stats().untyped, 0);
    }

    #[test]
    fn nonbenign_external_collapses() {
        let (m, dsa) = run("
declare void @mystery(int*)
define int @main() {
e:
  %x = malloc int
  call void @mystery(int* %x)
  %v = load int* %x
  ret int %v
}");
        let main = m.func_by_name("main").unwrap();
        assert_eq!(dsa.access_stats_for(main).untyped, 1);
    }

    #[test]
    fn benign_external_keeps_types() {
        let (_, dsa) = run("
declare int @puts(sbyte*)
define int @main() {
e:
  %s = malloc sbyte, uint 8
  store sbyte 0, sbyte* %s
  %r = call int @puts(sbyte* %s)
  ret int %r
}");
        assert_eq!(dsa.access_stats().typed, 1);
    }

    #[test]
    fn global_accesses_are_typed() {
        let (m, dsa) = run("
@g = global int 5
define int @f() {
e:
  %v = load int* @g
  store int 6, int* @g
  ret int %v
}");
        assert_eq!(dsa.access_stats().typed, 2);
        let g = m.global_by_name("g").unwrap();
        let n = dsa.node_of_global(g);
        assert!(dsa.node_flags(n).global);
        assert!(dsa.node_flags(n).modified);
        assert!(dsa.node_flags(n).read);
    }

    #[test]
    fn may_alias_distinguishes_allocations() {
        let (m, dsa) = run("
define void @f() {
e:
  %a = malloc int
  %b = malloc int
  store int 1, int* %a
  store int 2, int* %b
  ret void
}");
        let f = m.func_by_name("f").unwrap();
        let a = Value::Inst(lpat_core::InstId::from_index(0));
        let b = Value::Inst(lpat_core::InstId::from_index(1));
        assert!(!dsa.may_alias(&m, f, a, b));
        assert!(dsa.may_alias(&m, f, a, a));
    }

    #[test]
    fn void_star_roundtrip_stays_typed() {
        // DSA is aggressive: storing through a void* (sbyte*) cast and
        // loading back at the same type keeps the node typed, because the
        // *declared allocation type* is checked, not the cast chain
        // (paper footnote 8).
        let (_, dsa) = run("
%s = type { int, int* }
define int @f() {
e:
  %x = malloc %s
  %vp = cast %s* %x to sbyte*
  %back = cast sbyte* %vp to %s*
  %p = getelementptr %s* %back, long 0, ubyte 0
  %v = load int* %p
  ret int %v
}");
        assert_eq!(dsa.access_stats().typed, 1);
        assert_eq!(dsa.access_stats().untyped, 0);
    }
}
