//! # lpat-analysis — program analyses over the representation
//!
//! The analyses the compiler framework builds on (paper §3.3, §4.1.1):
//!
//! * [`domtree`] — dominator trees and dominance frontiers (SSA
//!   construction, verifier support);
//! * [`loops`] — natural-loop detection (runtime hot-region profiling);
//! * [`callgraph`] — call-graph construction including function pointers;
//! * [`dsa`] — Data Structure Analysis: flow-insensitive, field-sensitive,
//!   unification-based points-to analysis with *speculative type checking*,
//!   the engine behind the paper's Table 1 typed-access statistics;
//! * [`modref`] — interprocedural Mod/Ref built on DSA and the call graph;
//! * [`summary`] — compile-time interprocedural summaries that travel with
//!   the bytecode so link-time passes can skip recomputation (§3.3);
//! * [`manager`] — the analysis cache the pass framework requests analyses
//!   through, with modification-counter staleness checks and
//!   `PreservedAnalyses`-driven invalidation.

#![warn(missing_docs)]

pub mod callgraph;
pub mod domtree;
pub mod dsa;
pub mod loops;
pub mod manager;
pub mod modref;
pub mod summary;

pub use callgraph::CallGraph;
pub use domtree::DomTree;
pub use dsa::{AccessStats, Dsa, DsaOptions};
pub use loops::LoopInfo;
pub use manager::{AnalysisManager, CacheStats, FuncAnalyses, PreservedAnalyses};
pub use modref::ModRef;
pub use summary::{compute_summaries, FuncSummary, ModuleSummaries};
