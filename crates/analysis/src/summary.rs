//! Compile-time interprocedural summaries (paper §3.3).
//!
//! "At compile-time, interprocedural summaries can be computed for each
//! function in the program and attached to the bytecode. The link-time
//! interprocedural optimizer can then process these interprocedural
//! summaries as input instead of having to compute results from scratch" —
//! the well-known technique for speeding up incremental whole-program
//! compilation.
//!
//! A [`FuncSummary`] captures the per-function facts the link-time passes
//! consume: local `unwind` presence and call structure (for `prune-eh`),
//! and directly read/written globals (a symbol-level Mod/Ref). Summaries
//! are name-keyed so they survive linking and can be serialized next to
//! the bytecode (`lpat-bytecode` provides the container).

use std::collections::{HashMap, HashSet};

use lpat_core::{Const, Inst, Module, Value};

/// Per-function summary facts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FuncSummary {
    /// Function name (the cross-module key).
    pub name: String,
    /// Is a declaration (externally defined — worst-case assumptions).
    pub is_declaration: bool,
    /// Contains a literal `unwind` instruction.
    pub may_unwind_local: bool,
    /// Contains an indirect call (callee unknown at summary time).
    pub has_indirect_calls: bool,
    /// Names of directly *called* functions (through `call`; invokes
    /// catch their callees' unwinds and are excluded from unwind
    /// propagation, matching `prune-eh`'s analysis).
    pub direct_callees: Vec<String>,
    /// Names of globals read directly.
    pub reads_globals: Vec<String>,
    /// Names of globals written directly.
    pub writes_globals: Vec<String>,
}

/// Summaries for a whole module.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ModuleSummaries {
    /// One summary per function, in module order.
    pub funcs: Vec<FuncSummary>,
}

/// Compute summaries for every function of `m`.
pub fn compute_summaries(m: &Module) -> ModuleSummaries {
    let mut funcs = Vec::with_capacity(m.num_funcs());
    for (_, f) in m.funcs() {
        let mut s = FuncSummary {
            name: f.name.clone(),
            is_declaration: f.is_declaration(),
            ..FuncSummary::default()
        };
        let mut callees = HashSet::new();
        let mut reads = HashSet::new();
        let mut writes = HashSet::new();
        for iid in f.inst_ids_in_order() {
            match f.inst(iid) {
                Inst::Unwind => s.may_unwind_local = true,
                Inst::Call { callee, .. } => match direct_name(m, *callee) {
                    Some(n) => {
                        callees.insert(n);
                    }
                    None => s.has_indirect_calls = true,
                },
                Inst::Load { ptr } => {
                    if let Some(n) = global_name(m, *ptr) {
                        reads.insert(n);
                    }
                }
                Inst::Store { ptr, .. } => {
                    if let Some(n) = global_name(m, *ptr) {
                        writes.insert(n);
                    }
                }
                _ => {}
            }
        }
        s.direct_callees = callees.into_iter().collect();
        s.reads_globals = reads.into_iter().collect();
        s.writes_globals = writes.into_iter().collect();
        s.direct_callees.sort();
        s.reads_globals.sort();
        s.writes_globals.sort();
        funcs.push(s);
    }
    ModuleSummaries { funcs }
}

fn direct_name(m: &Module, v: Value) -> Option<String> {
    match v {
        Value::Const(c) => match m.consts.get(c) {
            Const::FuncAddr(f) => Some(m.func(*f).name.clone()),
            _ => None,
        },
        _ => None,
    }
}

fn global_name(m: &Module, v: Value) -> Option<String> {
    match v {
        Value::Const(c) => match m.consts.get(c) {
            Const::GlobalAddr(g) => Some(m.global(*g).name.clone()),
            _ => None,
        },
        _ => None,
    }
}

impl ModuleSummaries {
    /// Merge summaries from several modules (the linker's view: one entry
    /// per symbol, definitions win over declarations).
    ///
    /// Internal symbols that collide across modules are renamed by the
    /// linker (`name.1`, ...) but keyed here by their original name, so
    /// the merged entry may describe the *other* copy. Consumers must
    /// treat functions they cannot find in the summaries conservatively
    /// (see `run_prune_eh_with_summaries`), which makes a collision cost
    /// optimization, never soundness.
    pub fn merge(parts: Vec<ModuleSummaries>) -> ModuleSummaries {
        let mut by_name: HashMap<String, FuncSummary> = HashMap::new();
        for p in parts {
            for s in p.funcs {
                match by_name.get(&s.name) {
                    Some(prev) if !prev.is_declaration => {}
                    _ => {
                        by_name.insert(s.name.clone(), s);
                    }
                }
            }
        }
        let mut funcs: Vec<FuncSummary> = by_name.into_values().collect();
        funcs.sort_by(|a, b| a.name.cmp(&b.name));
        ModuleSummaries { funcs }
    }

    /// The set of function names that may unwind, computed purely from the
    /// summaries (no IR traversal) — the `prune-eh` fixpoint over summary
    /// data.
    pub fn may_unwind_closure(&self) -> HashSet<String> {
        let mut may: HashSet<String> = self
            .funcs
            .iter()
            .filter(|s| s.is_declaration || s.may_unwind_local || s.has_indirect_calls)
            .map(|s| s.name.clone())
            .collect();
        // Names called but not summarized are unknown externals.
        let known: HashSet<&str> = self.funcs.iter().map(|s| s.name.as_str()).collect();
        let mut changed = true;
        while changed {
            changed = false;
            for s in &self.funcs {
                if may.contains(&s.name) {
                    continue;
                }
                let throws = s
                    .direct_callees
                    .iter()
                    .any(|c| may.contains(c) || !known.contains(c.as_str()));
                if throws {
                    may.insert(s.name.clone());
                    changed = true;
                }
            }
        }
        may
    }

    /// Whether `caller` may (transitively, per summaries) write global
    /// `global` — the symbol-level Mod query.
    pub fn may_write_global(&self, caller: &str, global: &str) -> bool {
        let idx: HashMap<&str, &FuncSummary> =
            self.funcs.iter().map(|s| (s.name.as_str(), s)).collect();
        let mut seen = HashSet::new();
        let mut work = vec![caller.to_string()];
        while let Some(f) = work.pop() {
            if !seen.insert(f.clone()) {
                continue;
            }
            match idx.get(f.as_str()) {
                None => return true, // unknown external: assume the worst
                Some(s) => {
                    if s.is_declaration || s.has_indirect_calls {
                        return true;
                    }
                    if s.writes_globals.iter().any(|g| g == global) {
                        return true;
                    }
                    work.extend(s.direct_callees.iter().cloned());
                }
            }
        }
        false
    }

    // ---- serialization (attached to bytecode files) ----------------------

    /// Serialize to bytes (a simple length-prefixed layout).
    pub fn to_bytes(&self) -> Vec<u8> {
        fn wv(out: &mut Vec<u8>, mut v: u64) {
            loop {
                let b = (v & 0x7F) as u8;
                v >>= 7;
                if v == 0 {
                    out.push(b);
                    break;
                }
                out.push(b | 0x80);
            }
        }
        fn ws(out: &mut Vec<u8>, s: &str) {
            wv(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        fn wl(out: &mut Vec<u8>, l: &[String]) {
            wv(out, l.len() as u64);
            for s in l {
                ws(out, s);
            }
        }
        let mut out = Vec::new();
        wv(&mut out, self.funcs.len() as u64);
        for s in &self.funcs {
            ws(&mut out, &s.name);
            out.push(
                s.is_declaration as u8
                    | (s.may_unwind_local as u8) << 1
                    | (s.has_indirect_calls as u8) << 2,
            );
            wl(&mut out, &s.direct_callees);
            wl(&mut out, &s.reads_globals);
            wl(&mut out, &s.writes_globals);
        }
        out
    }

    /// Deserialize from [`ModuleSummaries::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed input.
    pub fn from_bytes(mut b: &[u8]) -> Result<ModuleSummaries, String> {
        fn rv(b: &mut &[u8]) -> Result<u64, String> {
            let mut v = 0u64;
            let mut shift = 0;
            loop {
                let (&x, rest) = b.split_first().ok_or("truncated summary")?;
                *b = rest;
                v |= ((x & 0x7F) as u64) << shift;
                if x & 0x80 == 0 {
                    return Ok(v);
                }
                shift += 7;
                if shift >= 64 {
                    return Err("overlong varint".into());
                }
            }
        }
        fn rs(b: &mut &[u8]) -> Result<String, String> {
            let n = rv(b)? as usize;
            if b.len() < n {
                return Err("truncated string".into());
            }
            let (s, rest) = b.split_at(n);
            *b = rest;
            String::from_utf8(s.to_vec()).map_err(|_| "bad utf8".into())
        }
        fn rl(b: &mut &[u8]) -> Result<Vec<String>, String> {
            let n = rv(b)? as usize;
            let mut out = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                out.push(rs(b)?);
            }
            Ok(out)
        }
        let b = &mut b;
        let n = rv(b)? as usize;
        let mut funcs = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let name = rs(b)?;
            let (&flags, rest) = b.split_first().ok_or("truncated flags")?;
            *b = rest;
            funcs.push(FuncSummary {
                name,
                is_declaration: flags & 1 != 0,
                may_unwind_local: flags & 2 != 0,
                has_indirect_calls: flags & 4 != 0,
                direct_callees: rl(b)?,
                reads_globals: rl(b)?,
                writes_globals: rl(b)?,
            });
        }
        Ok(ModuleSummaries { funcs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_asm::parse_module;

    const SRC: &str = "
@g = global int 0
declare void @external()
define internal void @thrower() {
e:
  unwind
}
define internal void @calls_thrower() {
e:
  call void @thrower()
  ret void
}
define internal int @pure(int %x) {
e:
  %r = add int %x, 1
  ret int %r
}
define internal void @writer() {
e:
  store int 1, int* @g
  ret void
}
define int @main() {
e:
  call void @calls_thrower()
  call void @writer()
  %v = call int @pure(int 1)
  %g = load int* @g
  %s = add int %v, %g
  ret int %s
}";

    #[test]
    fn closure_matches_direct_analysis() {
        let m = parse_module("t", SRC).unwrap();
        let sums = compute_summaries(&m);
        let may = sums.may_unwind_closure();
        assert!(may.contains("thrower"));
        assert!(may.contains("calls_thrower"));
        assert!(may.contains("main"));
        assert!(may.contains("external"), "declarations assumed throwing");
        assert!(!may.contains("pure"));
        assert!(!may.contains("writer"));
    }

    #[test]
    fn mod_queries() {
        let m = parse_module("t", SRC).unwrap();
        let sums = compute_summaries(&m);
        assert!(sums.may_write_global("writer", "g"));
        assert!(sums.may_write_global("main", "g"), "transitive");
        assert!(!sums.may_write_global("pure", "g"));
        assert!(!sums.may_write_global("thrower", "g"));
    }

    #[test]
    fn serialization_roundtrip() {
        let m = parse_module("t", SRC).unwrap();
        let sums = compute_summaries(&m);
        let bytes = sums.to_bytes();
        let back = ModuleSummaries::from_bytes(&bytes).unwrap();
        assert_eq!(sums, back);
        assert!(ModuleSummaries::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn merge_prefers_definitions() {
        let a = parse_module(
            "a",
            "declare void @f()\ndefine void @g() {\ne:\n  call void @f()\n  ret void\n}",
        )
        .unwrap();
        let b = parse_module("b", "define void @f() {\ne:\n  ret void\n}").unwrap();
        let merged = ModuleSummaries::merge(vec![compute_summaries(&a), compute_summaries(&b)]);
        let f = merged.funcs.iter().find(|s| s.name == "f").unwrap();
        assert!(!f.is_declaration);
        // With the definition visible, nothing throws.
        assert!(merged.may_unwind_closure().is_empty());
    }
}
