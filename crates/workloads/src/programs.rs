//! The fifteen SPEC-CPU2000-shaped miniC programs.
//!
//! Each program reproduces the *type-discipline idioms* the paper
//! attributes to the corresponding SPEC C benchmark (§4.1.1): disciplined
//! array/struct code where the paper reports high typed-access
//! percentages; custom pool allocators (197.parser, 254.gap, 255.vortex),
//! struct-type punning (176.gcc, 253.perlbmk), and analysis-defeating
//! generic buffers (177.mesa, 188.ammp) where it reports low ones.
//!
//! Programs scale: `scale` appends that many *memory-free* arithmetic
//! worker functions (plus calls), growing code size for the Table 2 /
//! Figure 5 measurements without disturbing the typed-access ratio.

/// Shared external declarations every program starts with.
const PRELUDE: &str = "
extern void print_int(int v);
extern int read_int();
";

/// Append `scale` pure-arithmetic worker functions and a driver that calls
/// them; they contain no loads or stores, so Table 1 ratios are unaffected.
fn scaled(base: &str, scale: u32) -> String {
    let mut out = String::with_capacity(base.len() + scale as usize * 256);
    out.push_str(PRELUDE);
    out.push_str(base);
    for i in 0..scale {
        // Every third worker takes a dead parameter (DAE fodder); results
        // of every fourth call go unused (dead-return-value fodder).
        let extra = if i % 3 == 0 { ", int unused" } else { "" };
        out.push_str(&format!(
            "
static int cfg{i} = {i};
static long tuning{i} = 7L;
static int work{i}(int a, int b{extra}) {{
    int x = a * {mul} + b;
    int y = (x << 3) ^ (b >> 1);
    int z = y % 8191 + a / (b + 7 + {i});
    if (z > 100000) z = z - a * 3;
    return z ^ (x + y);
}}",
            mul = i % 13 + 2,
        ));
    }
    if scale > 0 {
        out.push_str("\nint run_workers(int seed) {\n    int acc = seed;\n");
        for i in 0..scale {
            let extra = if i % 3 == 0 { ", 0" } else { "" };
            if i % 4 == 0 {
                out.push_str(&format!("    work{i}(acc, seed + {i}{extra});\n"));
            } else {
                out.push_str(&format!(
                    "    acc = acc + work{i}(acc, seed + {i}{extra});\n"
                ));
            }
        }
        out.push_str("    return acc;\n}\n");
    }
    out
}

/// 164.gzip — disciplined byte/int array compression kernel (paper: high
/// typed %).
pub fn gzip(scale: u32) -> String {
    scaled(
        r#"
char window[4096];
int freq[256];
int encode(char* data, int n) {
    int bits = 0;
    for (int i = 0; i < n; i = i + 1) {
        int c = (int)data[i];
        if (c < 0) c = c + 256;
        freq[c] = freq[c] + 1;
        int run = 0;
        while (i + 1 < n && data[i + 1] == data[i] && run < 255) {
            run = run + 1;
            i = i + 1;
        }
        bits = bits + (run > 0 ? 16 : 9);
    }
    return bits;
}
int main() {
    for (int i = 0; i < 4096; i = i + 1) {
        window[i] = (char)((i * 17 + i / 7) % 251);
    }
    int bits = encode(&window[0], 4096);
    print_int(bits);
    return bits % 256;
}
"#,
        scale,
    )
}

/// 175.vpr — place & route style structs + float cost arrays (high typed %).
pub fn vpr(scale: u32) -> String {
    scaled(
        r#"
struct block { int x; int y; double cost; };
struct block blocks[128];
double wire_cost(struct block* a, struct block* b) {
    int dx = a->x - b->x;
    int dy = a->y - b->y;
    if (dx < 0) dx = -dx;
    if (dy < 0) dy = -dy;
    return (double)(dx + dy) * 1.5 + a->cost + b->cost;
}
int main() {
    for (int i = 0; i < 128; i = i + 1) {
        blocks[i].x = i % 16;
        blocks[i].y = i / 16;
        blocks[i].cost = (double)i * 0.25;
    }
    double total = 0.0;
    for (int i = 0; i + 1 < 128; i = i + 1) {
        total = total + wire_cost(&blocks[i], &blocks[i + 1]);
    }
    int t = (int)total;
    print_int(t);
    return t % 97;
}
"#,
        scale,
    )
}

/// 176.gcc — the same object used under two different struct types
/// (paper: type punning drops typed % to ~54).
pub fn gcc(scale: u32) -> String {
    scaled(
        r#"
struct rtx_int { int code; int value; int extra; };
struct rtx_pair { int code; struct rtx_int* left; struct rtx_int* right; };
char* obstack;
int obstack_used;
char* obstack_alloc(int size) {
    char* p = obstack + obstack_used;
    obstack_used = obstack_used + ((size + 7) / 8) * 8;
    return p;
}
struct rtx_int* make_int(int v) {
    struct rtx_int* r = (struct rtx_int*)obstack_alloc(sizeof(struct rtx_int));
    r->code = 1;
    r->value = v;
    return r;
}
struct rtx_pair* make_pair(struct rtx_int* l, struct rtx_int* r) {
    struct rtx_pair* p = (struct rtx_pair*)obstack_alloc(sizeof(struct rtx_pair));
    p->code = 2;
    p->left = l;
    p->right = r;
    return p;
}
int eval(struct rtx_pair* p) {
    if (p->code == 2) {
        return p->left->value + p->right->value;
    }
    struct rtx_int* as_int = (struct rtx_int*)p;
    return as_int->value;
}
int regs[64];
int alloc_reg(int want) {
    for (int i = 0; i < 64; i = i + 1) {
        if (regs[i] == 0) {
            regs[i] = want;
            return i;
        }
    }
    return -1;
}
int main() {
    obstack = new char[65536];
    obstack_used = 0;
    int sum = 0;
    for (int i = 0; i < 50; i = i + 1) {
        struct rtx_pair* p = make_pair(make_int(i), make_int(i * 2));
        sum = sum + eval(p);
        sum = sum + alloc_reg(i + 1);
    }
    print_int(sum);
    return sum % 211;
}
"#,
        scale,
    )
}

/// 177.mesa — generic vertex buffers passed through untyped helpers
/// (paper: analysis imprecision, ~47 typed %).
pub fn mesa(scale: u32) -> String {
    scaled(
        r#"
struct vertex { double x; double y; double z; };
char* make_buffer(int bytes) {
    char* b = new char[bytes];
    for (int i = 0; i < bytes; i = i + 1) b[i] = (char)0;
    return b;
}
double transform(struct vertex* v, double s) {
    v->x = v->x * s + 1.0;
    v->y = v->y * s - 1.0;
    v->z = v->z * s;
    return v->x + v->y + v->z;
}
int pixels[256];
int rasterize(int n) {
    int lit = 0;
    for (int i = 0; i < n; i = i + 1) {
        pixels[i % 256] = pixels[i % 256] + i;
        if (pixels[i % 256] % 3 == 0) lit = lit + 1;
    }
    return lit;
}
int main() {
    char* vb = make_buffer(sizeof(struct vertex) * 32);
    struct vertex* verts = (struct vertex*)vb;
    double acc = 0.0;
    for (int i = 0; i < 32; i = i + 1) {
        verts[i].x = (double)i;
        verts[i].y = (double)(i * 2);
        verts[i].z = 0.5;
        acc = acc + transform(&verts[i], 1.25);
    }
    int r = rasterize(200) + (int)acc;
    print_int(r);
    return r % 131;
}
"#,
        scale,
    )
}

/// 179.art — neural-net float arrays, fully disciplined (paper: ~99–100%).
pub fn art(scale: u32) -> String {
    scaled(
        r#"
double f1[64];
double weights[64];
double train(double rate) {
    double err = 0.0;
    for (int i = 0; i < 64; i = i + 1) {
        double o = f1[i] * weights[i];
        double d = 1.0 - o;
        weights[i] = weights[i] + rate * d;
        err = err + (d < 0.0 ? -d : d);
    }
    return err;
}
int main() {
    for (int i = 0; i < 64; i = i + 1) {
        f1[i] = 0.5 + (double)i * 0.01;
        weights[i] = 0.1;
    }
    double err = 0.0;
    for (int epoch = 0; epoch < 20; epoch = epoch + 1) {
        err = train(0.05);
    }
    int r = (int)(err * 100.0);
    print_int(r);
    return r % 50;
}
"#,
        scale,
    )
}

/// 181.mcf — network-simplex linked structs, disciplined (paper: ~95%).
pub fn mcf(scale: u32) -> String {
    scaled(
        r#"
struct arc { int cost; int flow; struct nodeT* head; struct arc* next; };
struct nodeT { int potential; int depth; struct arc* first; };
struct nodeT nodes[64];
struct arc arcs[256];
int n_arcs;
void add_arc(int from, int to, int cost) {
    struct arc* a = &arcs[n_arcs];
    n_arcs = n_arcs + 1;
    a->cost = cost;
    a->flow = 0;
    a->head = &nodes[to];
    a->next = nodes[from].first;
    nodes[from].first = a;
}
int price_out(struct nodeT* n) {
    int changed = 0;
    struct arc* a = n->first;
    while (a != null) {
        int red = a->cost + n->potential - a->head->potential;
        if (red < 0) {
            a->flow = a->flow + 1;
            a->head->potential = a->head->potential + red;
            changed = changed + 1;
        }
        a = a->next;
    }
    return changed;
}
int main() {
    for (int i = 0; i < 64; i = i + 1) {
        nodes[i].potential = i * 3 % 17;
        nodes[i].first = null;
    }
    n_arcs = 0;
    for (int i = 0; i < 200; i = i + 1) {
        add_arc(i % 64, (i * 7 + 1) % 64, i % 11 - 5);
    }
    int total = 0;
    for (int round = 0; round < 10; round = round + 1) {
        for (int i = 0; i < 64; i = i + 1) total = total + price_out(&nodes[i]);
    }
    print_int(total);
    return total % 77;
}
"#,
        scale,
    )
}

/// 183.equake — double matrices, disciplined (paper: ~100%).
pub fn equake(scale: u32) -> String {
    scaled(
        r#"
double K[32][32];
double disp[32];
double vel[32];
void smvp() {
    for (int i = 0; i < 32; i = i + 1) {
        double sum = 0.0;
        for (int j = 0; j < 32; j = j + 1) {
            sum = sum + K[i][j] * disp[j];
        }
        vel[i] = vel[i] + sum * 0.01;
    }
}
int main() {
    for (int i = 0; i < 32; i = i + 1) {
        disp[i] = (double)i * 0.1;
        vel[i] = 0.0;
        for (int j = 0; j < 32; j = j + 1) {
            K[i][j] = (i == j) ? 2.0 : ((i - j == 1 || j - i == 1) ? -1.0 : 0.0);
        }
    }
    for (int step = 0; step < 15; step = step + 1) smvp();
    double e = 0.0;
    for (int i = 0; i < 32; i = i + 1) e = e + vel[i] * vel[i];
    int r = (int)(e * 10.0);
    print_int(r);
    return r % 63;
}
"#,
        scale,
    )
}

/// 186.crafty — 64-bit bitboards and tables, disciplined (paper: ~97%).
pub fn crafty(scale: u32) -> String {
    scaled(
        r#"
long attacks[64];
int history[256];
int popcount(long b) {
    int n = 0;
    while (b != 0L) {
        n = n + 1;
        b = b & (b - 1L);
    }
    return n;
}
int evaluate(long own, long enemy) {
    int score = 0;
    for (int sq = 0; sq < 64; sq = sq + 1) {
        long mask = 1L << sq;
        if ((own & mask) != 0L) score = score + popcount(attacks[sq] & enemy);
        history[(sq * 3) % 256] = history[(sq * 3) % 256] + 1;
    }
    return score;
}
int main() {
    for (int i = 0; i < 64; i = i + 1) {
        attacks[i] = (255L << (i % 56)) ^ (long)i;
    }
    int total = 0;
    long own = 65535L;
    long enemy = own << 48;
    for (int game = 0; game < 20; game = game + 1) {
        total = total + evaluate(own, enemy);
        own = own ^ (own << 1);
    }
    print_int(total);
    return total % 119;
}
"#,
        scale,
    )
}

/// 188.ammp — molecular dynamics with a recycled-atom free list treated as
/// raw bytes (paper: imprecision, ~23%).
pub fn ammp(scale: u32) -> String {
    scaled(
        r#"
struct atom { double x; double fx; struct atom* next; };
char* arena;
int arena_used;
char* freelist;
char* raw_alloc(int size) {
    if (freelist != null) {
        char* p = freelist;
        freelist = *(char**)freelist;
        return p;
    }
    char* p = arena + arena_used;
    arena_used = arena_used + ((size + 7) / 8) * 8;
    return p;
}
void raw_free(char* p) {
    *(char**)p = freelist;
    freelist = p;
}
struct atom* new_atom(double x) {
    struct atom* a = (struct atom*)raw_alloc(sizeof(struct atom));
    a->x = x;
    a->fx = 0.0;
    a->next = null;
    return a;
}
int main() {
    arena = new char[32768];
    arena_used = 0;
    freelist = null;
    struct atom* list = null;
    for (int i = 0; i < 100; i = i + 1) {
        struct atom* a = new_atom((double)i * 0.5);
        a->next = list;
        list = a;
    }
    double f = 0.0;
    struct atom* p = list;
    while (p != null) {
        if (p->next != null) {
            double d = p->x - p->next->x;
            p->fx = p->fx + 1.0 / (d * d + 0.1);
            f = f + p->fx;
        }
        struct atom* dead = p;
        p = p->next;
        if (((int)dead->x) % 3 == 0) raw_free((char*)dead);
    }
    int r = (int)f;
    print_int(r);
    return r % 45;
}
"#,
        scale,
    )
}

/// 197.parser — the classic custom pool ("xalloc") allocator (paper: ~16%).
pub fn parser(scale: u32) -> String {
    scaled(
        r#"
struct word { char* text; int length; struct word* link; };
struct conn { struct word* left; struct word* right; int cost; };
char* xalloc_pool;
int xalloc_top;
char* xalloc(int size) {
    char* p = xalloc_pool + xalloc_top;
    xalloc_top = xalloc_top + ((size + 7) / 8) * 8;
    return p;
}
struct word* make_word(char* text, int len) {
    struct word* w = (struct word*)xalloc(sizeof(struct word));
    w->text = text;
    w->length = len;
    w->link = null;
    return w;
}
struct conn* connect_words(struct word* l, struct word* r) {
    struct conn* c = (struct conn*)xalloc(sizeof(struct conn));
    c->left = l;
    c->right = r;
    c->cost = l->length + r->length;
    return c;
}
int main() {
    xalloc_pool = new char[65536];
    xalloc_top = 0;
    char* dict = new char[512];
    for (int i = 0; i < 512; i = i + 1) dict[i] = (char)(97 + i % 26);
    struct word* prev = make_word(dict, 3);
    int total = 0;
    for (int i = 1; i < 80; i = i + 1) {
        struct word* w = make_word(dict + i * 4, i % 9 + 1);
        struct conn* c = connect_words(prev, w);
        total = total + c->cost;
        w->link = prev;
        prev = w;
    }
    print_int(total);
    return total % 101;
}
"#,
        scale,
    )
}

/// 253.perlbmk — tagged scalar values reinterpreted across variants
/// (paper: ~40%).
pub fn perlbmk(scale: u32) -> String {
    scaled(
        r#"
struct sv_int { int tag; int value; };
struct sv_str { int tag; char* text; };
char* sv_arena;
int sv_used;
char* sv_alloc(int size) {
    char* p = sv_arena + sv_used;
    sv_used = sv_used + ((size + 7) / 8) * 8;
    return p;
}
struct sv_int* new_int_sv(int v) {
    struct sv_int* s = (struct sv_int*)sv_alloc(sizeof(struct sv_int));
    s->tag = 1;
    s->value = v;
    return s;
}
struct sv_str* upgrade_to_str(struct sv_int* s, char* text) {
    struct sv_str* t = (struct sv_str*)s;
    t->tag = 2;
    t->text = text;
    return t;
}
int hash[97];
int lookup(int key) {
    int h = key % 97;
    if (h < 0) h = h + 97;
    hash[h] = hash[h] + 1;
    return hash[h];
}
int op_add(int a, int b) { return a + b; }
int op_xor(int a, int b) { return a ^ b; }
int op_shift(int a, int b) { return (a << 1) + b; }
int run_op(fn<int(int, int)> op, int a, int b) {
    return op(a, b);
}
int main() {
    sv_arena = new char[32768];
    sv_used = 0;
    char* text = new char[64];
    text[0] = 'p';
    int sum = 0;
    for (int i = 0; i < 60; i = i + 1) {
        struct sv_int* s = new_int_sv(i * 3);
        sum = sum + s->value + lookup(i * 7);
        if (i % 4 == 0) {
            struct sv_str* t = upgrade_to_str(s, text);
            sum = sum + (t->tag == 2 ? 1 : 0);
        }
    }
    fn<int(int, int)> optable[3];
    optable[0] = op_add;
    optable[1] = op_xor;
    optable[2] = op_shift;
    for (int pc = 0; pc < 300; pc = pc + 1) {
        int sel = 0;
        if (pc % 19 == 18) sel = 1;
        if (pc % 97 == 96) sel = 2;
        sum = sum + run_op(optable[sel], sum % 1021, pc % 127);
    }
    print_int(sum);
    return sum % 89;
}
"#,
        scale,
    )
}

/// 254.gap — "bag" allocator handing out chunks from a master arena with
/// handle indirection (paper: ~22%).
pub fn gap(scale: u32) -> String {
    scaled(
        r#"
char* masterpool;
int master_used;
char** handles;
int n_handles;
int new_bag(int size) {
    char* block = masterpool + master_used;
    master_used = master_used + ((size + 7) / 8) * 8;
    handles[n_handles] = block;
    n_handles = n_handles + 1;
    return n_handles - 1;
}
int* bag_ints(int handle) {
    return (int*)handles[handle];
}
void bag_fill(int h, int seed) {
    int* b = bag_ints(h);
    b[0] = seed;
    b[1] = seed * 3;
    b[2] = b[0] ^ b[1];
    b[3] = b[2] - seed;
    long* wide = (long*)handles[h];
    wide[2] = (long)b[3] * 5L;
}
int bag_total(int h) {
    int* b = bag_ints(h);
    int t = b[0] + b[1] + b[2] + b[3];
    long* wide = (long*)handles[h];
    t = t + (int)wide[2];
    return t;
}
int main() {
    masterpool = new char[65536];
    master_used = 0;
    handles = new char*[256];
    n_handles = 0;
    int total = 0;
    for (int i = 0; i < 40; i = i + 1) {
        int h = new_bag(32 + (i % 4) * 8);
        bag_fill(h, i);
        total = total + bag_total(h);
    }
    for (int i = 0; i < n_handles; i = i + 1) {
        int* ints = bag_ints(i);
        total = total + ints[0];
    }
    print_int(total);
    return total % 67;
}
"#,
        scale,
    )
}

/// 255.vortex — chunked object database with its own memory manager
/// (paper: ~35%).
pub fn vortex(scale: u32) -> String {
    scaled(
        r#"
struct dbobj { int id; int kind; struct dbobj* owner; };
struct chunk { char* base; int used; struct chunk* next; };
struct chunk* chunks;
char* chunk_alloc(int size) {
    if (chunks == null || chunks->used + size > 4096) {
        struct chunk* c = new struct chunk;
        c->base = new char[4096];
        c->used = 0;
        c->next = chunks;
        chunks = c;
    }
    char* p = chunks->base + chunks->used;
    chunks->used = chunks->used + ((size + 7) / 8) * 8;
    return p;
}
struct dbobj* new_obj(int id, int kind, struct dbobj* owner) {
    struct dbobj* o = (struct dbobj*)chunk_alloc(sizeof(struct dbobj));
    o->id = id;
    o->kind = kind;
    o->owner = owner;
    return o;
}
int index_kind[16];
int main() {
    chunks = null;
    struct dbobj* root = new_obj(0, 0, null);
    struct dbobj* cur = root;
    int total = 0;
    for (int i = 1; i < 120; i = i + 1) {
        cur = new_obj(i, i % 16, cur);
        index_kind[cur->kind] = index_kind[cur->kind] + 1;
        total = total + cur->id - cur->owner->id;
    }
    for (int k = 0; k < 16; k = k + 1) total = total + index_kind[k];
    print_int(total);
    return total % 57;
}
"#,
        scale,
    )
}

/// 256.bzip2 — block-sorting over byte/int arrays, disciplined (paper:
/// ~99%).
pub fn bzip2(scale: u32) -> String {
    scaled(
        r#"
char block[2048];
int ptr[2048];
int counts[256];
void sort_block(int n) {
    for (int i = 0; i < 256; i = i + 1) counts[i] = 0;
    for (int i = 0; i < n; i = i + 1) {
        int c = (int)block[i];
        if (c < 0) c = c + 256;
        counts[c] = counts[c] + 1;
    }
    int run = 0;
    for (int i = 0; i < 256; i = i + 1) {
        int t = counts[i];
        counts[i] = run;
        run = run + t;
    }
    for (int i = 0; i < n; i = i + 1) {
        int c = (int)block[i];
        if (c < 0) c = c + 256;
        ptr[counts[c]] = i;
        counts[c] = counts[c] + 1;
    }
}
int main() {
    for (int i = 0; i < 2048; i = i + 1) block[i] = (char)((i * 31 + 7) % 253);
    sort_block(2048);
    int checksum = 0;
    for (int i = 0; i < 2048; i = i + 1) checksum = (checksum + ptr[i] * i) % 65521;
    print_int(checksum);
    return checksum % 37;
}
"#,
        scale,
    )
}

/// 300.twolf — placement structs with modest sharing (paper: ~90%).
pub fn twolf(scale: u32) -> String {
    scaled(
        r#"
struct cell { int x; int y; int width; struct net* first; };
struct net { struct cell* owner; int weight; struct net* next; };
struct cell cells[96];
struct net nets[192];
int n_nets;
void attach(int c, int weight) {
    struct net* n = &nets[n_nets];
    n_nets = n_nets + 1;
    n->owner = &cells[c];
    n->weight = weight;
    n->next = cells[c].first;
    cells[c].first = n;
}
int wirelength() {
    int total = 0;
    for (int i = 0; i < 96; i = i + 1) {
        struct net* n = cells[i].first;
        while (n != null) {
            total = total + n->weight * (cells[i].x + cells[i].y);
            n = n->next;
        }
    }
    return total;
}
int main() {
    for (int i = 0; i < 96; i = i + 1) {
        cells[i].x = i % 12;
        cells[i].y = i / 12;
        cells[i].width = 2 + i % 5;
        cells[i].first = null;
    }
    n_nets = 0;
    for (int i = 0; i < 180; i = i + 1) attach(i % 96, i % 7 + 1);
    int before = wirelength();
    for (int i = 0; i < 96; i = i + 1) {
        if (cells[i].x > 6) cells[i].x = cells[i].x - 1;
    }
    int after = wirelength();
    print_int(before - after);
    return (before - after) % 43;
}
"#,
        scale,
    )
}
