//! # lpat-workloads — the SPEC-shaped benchmark suite
//!
//! Fifteen miniC programs substituting for the SPEC CPU2000 C benchmarks
//! the paper evaluates on (see DESIGN.md §2 for the substitution argument).
//! Each reproduces the *allocation and casting idioms* that drive the
//! paper's per-benchmark typed-access results (Table 1): disciplined
//! programs stay near 100 % typed; custom-pool and type-punning programs
//! collapse. A `scale` knob appends memory-free worker functions so code
//! size grows for the timing (Table 2) and size (Figure 5) experiments
//! without changing the typed-access ratio — and gives DGE/DAE/inline
//! realistic elimination fodder.

#![warn(missing_docs)]

pub mod programs;

use lpat_core::Module;

/// One benchmark program.
#[derive(Clone, Debug)]
pub struct Workload {
    /// SPEC-style name (`164.gzip`).
    pub name: &'static str,
    /// miniC source text.
    pub source: String,
    /// The typed-access percentage the paper's Table 1 reports for the
    /// corresponding SPEC benchmark (for side-by-side reporting).
    pub paper_typed_percent: f64,
    /// Coarse discipline class used by shape assertions.
    pub disciplined: bool,
}

/// Build the full suite at a given scale (0 = base programs only).
pub fn suite(scale: u32) -> Vec<Workload> {
    use programs::*;
    let w = |name, source, paper, disciplined| Workload {
        name,
        source,
        paper_typed_percent: paper,
        disciplined,
    };
    vec![
        w("164.gzip", gzip(scale), 99.9, true),
        w("175.vpr", vpr(scale), 85.9, true),
        w("176.gcc", gcc(scale), 54.1, false),
        w("177.mesa", mesa(scale), 46.8, false),
        w("179.art", art(scale), 99.7, true),
        w("181.mcf", mcf(scale), 95.6, true),
        w("183.equake", equake(scale), 100.0, true),
        w("186.crafty", crafty(scale), 97.8, true),
        w("188.ammp", ammp(scale), 23.1, false),
        w("197.parser", parser(scale), 15.9, false),
        w("253.perlbmk", perlbmk(scale), 40.4, false),
        w("254.gap", gap(scale), 22.5, false),
        w("255.vortex", vortex(scale), 35.3, false),
        w("256.bzip2", bzip2(scale), 99.5, true),
        w("300.twolf", twolf(scale), 89.6, true),
    ]
}

/// Compile every workload to a module.
///
/// # Panics
///
/// Panics if a workload fails to compile or verify — the suite is a fixed
/// artifact, so that is a bug, not an input error.
pub fn compile_suite(scale: u32) -> Vec<(&'static str, Module)> {
    suite(scale)
        .into_iter()
        .map(|w| {
            let m = lpat_minic::compile(w.name, &w.source)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            m.verify().unwrap_or_else(|e| panic!("{}: {e:?}", w.name));
            (w.name, m)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpat_analysis::{CallGraph, Dsa, DsaOptions};
    use lpat_vm::{Vm, VmOptions};

    #[test]
    fn all_fifteen_compile_and_run() {
        for (name, m) in compile_suite(0) {
            let opts = VmOptions {
                fuel: Some(20_000_000),
                ..VmOptions::default()
            };
            let mut vm = Vm::new(&m, opts).unwrap();
            let r = vm.run_main().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(r >= 0, "{name} returned {r}");
            assert!(!vm.output.is_empty(), "{name} printed nothing");
        }
    }

    #[test]
    fn scaled_programs_grow_and_still_run() {
        let base = compile_suite(0);
        let big = compile_suite(20);
        for ((name, m0), (_, m1)) in base.iter().zip(big.iter()) {
            assert!(
                m1.total_insts() > m0.total_insts() + 100,
                "{name} did not grow"
            );
        }
        // Spot-check one scaled program end-to-end.
        let (_, m) = &big[0];
        let mut vm = Vm::new(m, VmOptions::default()).unwrap();
        vm.run_main().unwrap();
    }

    #[test]
    fn discipline_split_matches_paper_shape() {
        // After SSA construction, disciplined programs must report a
        // higher typed-access fraction than every custom-allocator
        // program.
        let mut disciplined = Vec::new();
        let mut undisciplined = Vec::new();
        for w in suite(0) {
            let mut m = lpat_minic::compile(w.name, &w.source).unwrap();
            lpat_transform::function_pipeline().run(&mut m);
            let cg = CallGraph::build(&m);
            let dsa = Dsa::analyze(&m, &cg, &DsaOptions::default());
            let pct = dsa.access_stats().percent();
            if w.disciplined {
                disciplined.push((w.name, pct));
            } else {
                undisciplined.push((w.name, pct));
            }
        }
        let min_d = disciplined
            .iter()
            .map(|(_, p)| *p)
            .fold(f64::INFINITY, f64::min);
        let max_u = undisciplined.iter().map(|(_, p)| *p).fold(0.0, f64::max);
        assert!(
            min_d > max_u,
            "disciplined {disciplined:?} vs undisciplined {undisciplined:?}"
        );
        for (name, p) in &disciplined {
            assert!(*p >= 80.0, "{name} too low: {p}");
        }
        for (name, p) in &undisciplined {
            assert!(*p <= 70.0, "{name} too high: {p}");
        }
    }

    #[test]
    fn link_pipeline_preserves_behavior_on_suite() {
        for (name, mut m) in compile_suite(2) {
            let before = {
                let mut vm = Vm::new(&m, VmOptions::default()).unwrap();
                (vm.run_main().unwrap(), vm.output.clone())
            };
            lpat_transform::function_pipeline().run(&mut m);
            let mut pm = lpat_transform::link_time_pipeline();
            pm.verify_each = true;
            pm.run(&mut m);
            let after = {
                let mut vm = Vm::new(&m, VmOptions::default()).unwrap();
                (vm.run_main().unwrap(), vm.output.clone())
            };
            assert_eq!(before, after, "{name} changed behavior");
        }
    }
}
