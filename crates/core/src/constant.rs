//! Constants and the per-module constant pool.
//!
//! Constants are immutable, interned values: integer/float/bool scalars,
//! `null` pointers, `undef`, aggregate initializers, and the *addresses* of
//! globals and functions (the paper's unified memory model: a global
//! definition defines a symbol providing the **address** of the object, not
//! the object itself — §2.3).

use std::collections::HashMap;
use std::fmt;

use crate::types::{IntKind, TypeCtx, TypeId};

/// Handle to an interned [`Const`] in a [`ConstPool`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConstId(pub(crate) u32);

impl ConstId {
    /// Raw pool index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Rebuild from a raw pool index (for deserializers).
    #[inline]
    pub fn from_index(i: usize) -> ConstId {
        ConstId(i as u32)
    }
}

impl fmt::Debug for ConstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Handle to a global variable in a module.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalId(pub(crate) u32);

impl GlobalId {
    /// Raw module index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Rebuild from a raw module index (for deserializers).
    #[inline]
    pub fn from_index(i: usize) -> GlobalId {
        GlobalId(i as u32)
    }
}

impl fmt::Debug for GlobalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// Handle to a function in a module.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub(crate) u32);

impl FuncId {
    /// Raw module index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Rebuild from a raw module index (for deserializers).
    #[inline]
    pub fn from_index(i: usize) -> FuncId {
        FuncId(i as u32)
    }
}

impl fmt::Debug for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// An interned constant value.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Const {
    /// A boolean constant.
    Bool(bool),
    /// An integer constant; `value` is stored canonicalized for `kind`
    /// (see [`IntKind::canonicalize`]).
    Int {
        /// Integer kind.
        kind: IntKind,
        /// Canonical two's-complement payload.
        value: i64,
    },
    /// A `float` constant, stored as raw bits so interning is exact.
    F32(u32),
    /// A `double` constant, stored as raw bits so interning is exact.
    F64(u64),
    /// The null pointer of pointer type `ty`.
    Null(TypeId),
    /// An undefined value of first-class type `ty`.
    Undef(TypeId),
    /// A zero initializer for any sized type `ty`.
    Zero(TypeId),
    /// A constant array of type `ty` (an `Array` type) with element
    /// constants.
    Array {
        /// The array type.
        ty: TypeId,
        /// One constant per element.
        elems: Vec<ConstId>,
    },
    /// A constant struct of type `ty` with field constants.
    Struct {
        /// The struct type.
        ty: TypeId,
        /// One constant per field.
        fields: Vec<ConstId>,
    },
    /// The address of a global variable (type: pointer to the global's
    /// value type).
    GlobalAddr(GlobalId),
    /// The address of a function (type: pointer to the function type).
    FuncAddr(FuncId),
}

/// Interning pool for constants; one per [`crate::Module`].
#[derive(Clone, Debug, Default)]
pub struct ConstPool {
    consts: Vec<Const>,
    intern: HashMap<Const, ConstId>,
}

impl ConstPool {
    /// Create an empty pool.
    pub fn new() -> ConstPool {
        ConstPool::default()
    }

    /// Number of distinct constants interned.
    pub fn len(&self) -> usize {
        self.consts.len()
    }

    /// Whether the pool has no constants.
    pub fn is_empty(&self) -> bool {
        self.consts.is_empty()
    }

    /// Look up a constant's structure.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this pool.
    #[inline]
    pub fn get(&self, id: ConstId) -> &Const {
        &self.consts[id.0 as usize]
    }

    /// Drop every constant with index `>= len`, restoring the pool to an
    /// earlier snapshot. Used by the parallel function-pass executor to
    /// reset a worker's pool overlay between functions.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.consts.len() {
            return;
        }
        self.intern.retain(|_, id| (id.0 as usize) < len);
        self.consts.truncate(len);
    }

    /// Iterate over `(ConstId, &Const)` in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (ConstId, &Const)> {
        self.consts
            .iter()
            .enumerate()
            .map(|(i, c)| (ConstId(i as u32), c))
    }

    /// Intern an arbitrary constant.
    pub fn intern(&mut self, c: Const) -> ConstId {
        if let Some(&id) = self.intern.get(&c) {
            return id;
        }
        let id = ConstId(self.consts.len() as u32);
        self.intern.insert(c.clone(), id);
        self.consts.push(c);
        id
    }

    /// Intern a boolean constant.
    pub fn bool_(&mut self, b: bool) -> ConstId {
        self.intern(Const::Bool(b))
    }

    /// Intern an integer constant, canonicalizing `value` for `kind`.
    pub fn int(&mut self, kind: IntKind, value: i64) -> ConstId {
        self.intern(Const::Int {
            kind,
            value: kind.canonicalize(value),
        })
    }

    /// Intern a signed 32-bit integer constant (`int`).
    pub fn i32(&mut self, value: i32) -> ConstId {
        self.int(IntKind::S32, value as i64)
    }

    /// Intern a signed 64-bit integer constant (`long`).
    pub fn i64(&mut self, value: i64) -> ConstId {
        self.int(IntKind::S64, value)
    }

    /// Intern an unsigned 32-bit integer constant (`uint`).
    pub fn u32(&mut self, value: u32) -> ConstId {
        self.int(IntKind::U32, value as i64)
    }

    /// Intern an unsigned 8-bit integer constant (`ubyte`), the type of
    /// struct field indices in `getelementptr`.
    pub fn u8(&mut self, value: u8) -> ConstId {
        self.int(IntKind::U8, value as i64)
    }

    /// Intern a `float` constant.
    pub fn f32(&mut self, value: f32) -> ConstId {
        self.intern(Const::F32(value.to_bits()))
    }

    /// Intern a `double` constant.
    pub fn f64(&mut self, value: f64) -> ConstId {
        self.intern(Const::F64(value.to_bits()))
    }

    /// Intern the null pointer of pointer type `ty`.
    pub fn null(&mut self, ty: TypeId) -> ConstId {
        self.intern(Const::Null(ty))
    }

    /// Intern `undef` of type `ty`.
    pub fn undef(&mut self, ty: TypeId) -> ConstId {
        self.intern(Const::Undef(ty))
    }

    /// Intern a zero initializer of type `ty`.
    pub fn zero(&mut self, ty: TypeId) -> ConstId {
        self.intern(Const::Zero(ty))
    }

    /// Intern the address of global `g`.
    pub fn global_addr(&mut self, g: GlobalId) -> ConstId {
        self.intern(Const::GlobalAddr(g))
    }

    /// Intern the address of function `f`.
    pub fn func_addr(&mut self, f: FuncId) -> ConstId {
        self.intern(Const::FuncAddr(f))
    }

    /// Intern a constant array.
    pub fn array(&mut self, ty: TypeId, elems: Vec<ConstId>) -> ConstId {
        self.intern(Const::Array { ty, elems })
    }

    /// Intern a constant struct.
    pub fn struct_(&mut self, ty: TypeId, fields: Vec<ConstId>) -> ConstId {
        self.intern(Const::Struct { ty, fields })
    }

    /// Intern a NUL-terminated byte string as `[len+1 x sbyte]`, the common
    /// encoding of C string literals.
    pub fn cstr(&mut self, tc: &mut TypeCtx, s: &str) -> ConstId {
        let bytes: Vec<ConstId> = s
            .bytes()
            .chain(std::iter::once(0))
            .map(|b| self.int(IntKind::S8, b as i64))
            .collect();
        let ty = tc.array(tc.i8(), bytes.len() as u64);
        self.array(ty, bytes)
    }

    /// The type of constant `id`, resolved against `tc`.
    ///
    /// `GlobalAddr`/`FuncAddr` types depend on the module; use
    /// [`crate::Module::const_type`] for those. This method panics on them.
    pub fn type_of(&self, tc: &TypeCtx, id: ConstId) -> TypeId {
        match self.get(id) {
            Const::Bool(_) => tc.bool_(),
            Const::Int { kind, .. } => tc.int(*kind),
            Const::F32(_) => tc.f32(),
            Const::F64(_) => tc.f64(),
            Const::Null(t) | Const::Undef(t) | Const::Zero(t) => *t,
            Const::Array { ty, .. } | Const::Struct { ty, .. } => *ty,
            Const::GlobalAddr(_) | Const::FuncAddr(_) => {
                panic!("type of global/function address requires the module")
            }
        }
    }

    /// If `id` is an integer constant, return `(kind, value)`.
    pub fn as_int(&self, id: ConstId) -> Option<(IntKind, i64)> {
        match self.get(id) {
            Const::Int { kind, value } => Some((*kind, *value)),
            _ => None,
        }
    }

    /// If `id` is a boolean constant, return it.
    pub fn as_bool(&self, id: ConstId) -> Option<bool> {
        match self.get(id) {
            Const::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::TypeCtx;

    #[test]
    fn interning_dedups_and_canonicalizes() {
        let mut cp = ConstPool::new();
        let a = cp.int(IntKind::U8, 256 + 7);
        let b = cp.int(IntKind::U8, 7);
        assert_eq!(a, b);
        let c = cp.int(IntKind::S8, -1);
        let d = cp.int(IntKind::S8, 255);
        assert_eq!(c, d);
        assert_ne!(a, c); // different kinds
        assert_eq!(cp.as_int(a), Some((IntKind::U8, 7)));
    }

    #[test]
    fn float_bits_exact() {
        let mut cp = ConstPool::new();
        let a = cp.f64(0.1);
        let b = cp.f64(0.1);
        assert_eq!(a, b);
        let nan1 = cp.f32(f32::NAN);
        let nan2 = cp.f32(f32::NAN);
        assert_eq!(nan1, nan2); // same bit pattern interned once
    }

    #[test]
    fn cstr_builds_sbyte_array() {
        let mut tc = TypeCtx::new();
        let mut cp = ConstPool::new();
        let s = cp.cstr(&mut tc, "hi");
        match cp.get(s) {
            Const::Array { ty, elems } => {
                assert_eq!(tc.display(*ty), "[3 x sbyte]");
                assert_eq!(elems.len(), 3);
                assert_eq!(cp.as_int(elems[2]), Some((IntKind::S8, 0)));
            }
            _ => panic!("expected array"),
        }
    }

    #[test]
    fn type_of_scalars() {
        let mut tc = TypeCtx::new();
        let mut cp = ConstPool::new();
        let i = cp.i32(5);
        assert_eq!(cp.type_of(&tc, i), tc.i32());
        let p = tc.ptr(tc.f64());
        let n = cp.null(p);
        assert_eq!(cp.type_of(&tc, n), p);
        let z = cp.zero(p);
        assert_ne!(n, z);
    }
}
