//! Unified tracing and metrics (observability spine).
//!
//! Every subsystem — pass manager, interpreter, JIT, heap, PGO, and the
//! lifelong store — records into this one module: RAII **spans** (timed
//! regions), **instant events** (point-in-time facts such as traps or
//! quarantines), and named **counters** (monotonic sums such as cache hits
//! or per-opcode execution counts). Recordings land in per-thread ring
//! buffers and are exported as Chrome trace-event JSON (loadable in
//! Perfetto / `chrome://tracing`) plus a machine-readable metrics summary.
//!
//! # Cost model
//!
//! Tracing is off by default. Every record site ([`counter`], [`instant`],
//! [`instant_args`], span recording) is gated on a single relaxed atomic
//! load ([`enabled`]); when disabled nothing else runs and nothing
//! allocates. [`Span`] additionally measures wall time with
//! [`Instant`] because its callers (e.g. `--time-passes`) need the
//! duration whether or not tracing is on — the pass report is a *view*
//! over the same measurement the trace records, not a second stopwatch.
//!
//! # Determinism
//!
//! Two mechanisms keep the exported trace byte-identical regardless of
//! `--jobs`, mirroring the fault-injection design:
//!
//! 1. **Ordinals.** Every event carries a `u64` ordinal; export sorts by
//!    it. Serial code draws ordinals from a global counter; parallel
//!    stages [`reserve`] a contiguous block *before* spawning workers and
//!    index it by function number (exactly like `FaultPlan::reserve`), so
//!    the set of (ordinal, event) pairs is independent of interleaving.
//! 2. **Virtual clock.** Under [`ClockMode::Virtual`] (the injectable
//!    clock pattern from `lpat_vm::store`), exported timestamps, durations
//!    and thread ids are pure functions of the ordinal: `ts = ordinal *
//!    10`, `dur = 5`, `tid = 0`. Real measurements still happen (reports
//!    keep their wall-clock numbers); only the *export* is virtualized.
//!
//! Counters are order-independent sums and need no special handling.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Maximum buffered events per thread; overflow increments a drop counter
/// instead of reallocating without bound.
pub const RING_CAPACITY: usize = 1 << 16;

/// Clock used when *exporting* timestamps (recording always measures real
/// time; see the module docs).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ClockMode {
    /// Wall-clock microseconds since [`enable`].
    Real,
    /// Timestamps derived purely from event ordinals — byte-deterministic
    /// across runs and `--jobs` values.
    Virtual,
}

/// What kind of trace event a [`TraceEvent`] is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A timed region (Chrome phase `"X"`).
    Span {
        /// Measured wall-clock duration, in microseconds.
        dur_us: u64,
    },
    /// A point-in-time event (Chrome phase `"i"`).
    Instant,
}

/// One recorded event, as drained by [`drain`].
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Deterministic sort key; see the module docs.
    pub ordinal: u64,
    /// Subsystem category (`"pass"`, `"vm"`, `"jit"`, `"heap"`, `"pgo"`,
    /// `"store"`, ...).
    pub cat: &'static str,
    /// Event name (pass name, opcode, file stem, ...).
    pub name: String,
    /// Span or instant.
    pub kind: EventKind,
    /// Wall-clock start, microseconds since [`enable`].
    pub ts_us: u64,
    /// Recording thread's lane (export `tid` under the real clock).
    pub lane: u32,
    /// Structured key/value payload.
    pub args: Vec<(&'static str, String)>,
}

struct LocalBuf {
    lane: u32,
    events: Vec<TraceEvent>,
    counters: HashMap<&'static str, u64>,
    dropped: u64,
}

impl LocalBuf {
    fn new(lane: u32) -> LocalBuf {
        LocalBuf {
            lane,
            events: Vec::new(),
            counters: HashMap::new(),
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < RING_CAPACITY {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }
}

struct GlobalTrace {
    enabled: AtomicBool,
    virtual_clock: AtomicBool,
    /// Bumped by [`enable`] so thread-local buffers from a previous session
    /// re-register instead of writing into drained storage.
    epoch: AtomicU64,
    ordinal: AtomicU64,
    next_lane: AtomicU32,
    start: Mutex<Option<Instant>>,
    buffers: Mutex<Vec<Arc<Mutex<LocalBuf>>>>,
}

fn global() -> &'static GlobalTrace {
    static G: OnceLock<GlobalTrace> = OnceLock::new();
    G.get_or_init(|| GlobalTrace {
        enabled: AtomicBool::new(false),
        virtual_clock: AtomicBool::new(false),
        epoch: AtomicU64::new(0),
        ordinal: AtomicU64::new(0),
        next_lane: AtomicU32::new(0),
        start: Mutex::new(None),
        buffers: Mutex::new(Vec::new()),
    })
}

thread_local! {
    static TLS: RefCell<Option<(u64, Arc<Mutex<LocalBuf>>)>> = const { RefCell::new(None) };
}

fn with_local<R>(f: impl FnOnce(&mut LocalBuf) -> R) -> R {
    let g = global();
    let epoch = g.epoch.load(Ordering::Relaxed);
    TLS.with(|slot| {
        let mut slot = slot.borrow_mut();
        let stale = match &*slot {
            Some((e, _)) => *e != epoch,
            None => true,
        };
        if stale {
            let lane = g.next_lane.fetch_add(1, Ordering::Relaxed);
            let buf = Arc::new(Mutex::new(LocalBuf::new(lane)));
            g.buffers.lock().unwrap().push(Arc::clone(&buf));
            *slot = Some((epoch, buf));
        }
        let buf = Arc::clone(&slot.as_ref().unwrap().1);
        drop(slot);
        let r = f(&mut buf.lock().unwrap());
        r
    })
}

/// Start a tracing session, discarding any previous one.
pub fn enable(clock: ClockMode) {
    let g = global();
    g.enabled.store(false, Ordering::SeqCst);
    g.buffers.lock().unwrap().clear();
    g.epoch.fetch_add(1, Ordering::SeqCst);
    g.ordinal.store(0, Ordering::SeqCst);
    g.next_lane.store(0, Ordering::SeqCst);
    *g.start.lock().unwrap() = Some(Instant::now());
    g.virtual_clock
        .store(clock == ClockMode::Virtual, Ordering::SeqCst);
    g.enabled.store(true, Ordering::SeqCst);
}

/// Stop recording. Buffered events stay drainable.
pub fn disable() {
    global().enabled.store(false, Ordering::SeqCst);
}

/// Whether tracing is on — the one relaxed atomic check every record site
/// is gated on.
#[inline]
pub fn enabled() -> bool {
    global().enabled.load(Ordering::Relaxed)
}

/// The clock mode of the current (or last) session.
pub fn clock_mode() -> ClockMode {
    if global().virtual_clock.load(Ordering::Relaxed) {
        ClockMode::Virtual
    } else {
        ClockMode::Real
    }
}

/// Microseconds since [`enable`] (0 when tracing is off).
pub fn now_us() -> u64 {
    if !enabled() {
        return 0;
    }
    match *global().start.lock().unwrap() {
        Some(t0) => t0.elapsed().as_micros() as u64,
        None => 0,
    }
}

fn next_ordinal() -> u64 {
    global().ordinal.fetch_add(1, Ordering::Relaxed)
}

/// Reserve a contiguous block of `n` ordinals and return its base.
///
/// Call this *serially* before fanning work out to parallel workers; each
/// worker then records with `base + deterministic_index` via
/// [`record_span_at`], so the exported trace is independent of `--jobs`
/// (the same protocol `FaultPlan::reserve` uses for fault sites).
pub fn reserve(n: u64) -> u64 {
    global().ordinal.fetch_add(n, Ordering::Relaxed)
}

/// A timed region. Created by [`span`]; records itself on drop.
///
/// The measured [`Duration`] is available through [`Span::stop`] /
/// [`Span::finish`] so callers (e.g. `--time-passes`) report *exactly*
/// the number the trace records — one stopwatch, two views.
pub struct Span {
    recording: bool,
    cat: &'static str,
    name: Cow<'static, str>,
    ordinal: u64,
    ts_us: u64,
    t0: Instant,
    dur: Option<Duration>,
    args: Vec<(&'static str, String)>,
}

/// Open a [`Span`] in category `cat`. Draws a serial ordinal — parallel
/// workers must use [`record_span_at`] with reserved ordinals instead.
pub fn span(cat: &'static str, name: impl Into<Cow<'static, str>>) -> Span {
    let recording = enabled();
    Span {
        recording,
        cat,
        name: name.into(),
        ordinal: if recording { next_ordinal() } else { 0 },
        ts_us: if recording { now_us() } else { 0 },
        t0: Instant::now(),
        dur: None,
        args: Vec::new(),
    }
}

impl Span {
    /// Attach a structured argument (no-op when tracing is off).
    pub fn arg(&mut self, key: &'static str, value: impl Into<String>) {
        if self.recording {
            self.args.push((key, value.into()));
        }
    }

    /// Freeze and return the duration without recording yet (idempotent).
    /// Lets callers bank the measurement, then attach outcome args before
    /// the span records on drop.
    pub fn stop(&mut self) -> Duration {
        if self.dur.is_none() {
            self.dur = Some(self.t0.elapsed());
        }
        self.dur.unwrap()
    }

    /// Record the span and return its measured duration.
    pub fn finish(mut self) -> Duration {
        self.stop()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur = self.dur.unwrap_or_else(|| self.t0.elapsed());
        if self.recording {
            let ev = TraceEvent {
                ordinal: self.ordinal,
                cat: self.cat,
                name: std::mem::take(&mut self.name).into_owned(),
                kind: EventKind::Span {
                    dur_us: dur.as_micros() as u64,
                },
                ts_us: self.ts_us,
                lane: 0, // filled from the local buffer below
                args: std::mem::take(&mut self.args),
            };
            with_local(|b| {
                let mut ev = ev;
                ev.lane = b.lane;
                b.push(ev);
            });
        }
    }
}

/// Record a completed span with a *reserved* ordinal (parallel workers).
///
/// `ts_us` should come from [`now_us`] at region start; `dur` is the
/// measured duration. Only call when [`enabled`] — reserved ordinals only
/// exist in that case.
pub fn record_span_at(
    cat: &'static str,
    name: String,
    ordinal: u64,
    ts_us: u64,
    dur: Duration,
    args: Vec<(&'static str, String)>,
) {
    if !enabled() {
        return;
    }
    with_local(|b| {
        let lane = b.lane;
        b.push(TraceEvent {
            ordinal,
            cat,
            name,
            kind: EventKind::Span {
                dur_us: dur.as_micros() as u64,
            },
            ts_us,
            lane,
            args,
        });
    });
}

/// Record a point-in-time event.
pub fn instant(cat: &'static str, name: impl Into<Cow<'static, str>>) {
    instant_args(cat, name, Vec::new());
}

/// Record a point-in-time event with structured arguments.
pub fn instant_args(
    cat: &'static str,
    name: impl Into<Cow<'static, str>>,
    args: Vec<(&'static str, String)>,
) {
    if !enabled() {
        return;
    }
    let ordinal = next_ordinal();
    let ts_us = now_us();
    let name = name.into().into_owned();
    with_local(|b| {
        let lane = b.lane;
        b.push(TraceEvent {
            ordinal,
            cat,
            name,
            kind: EventKind::Instant,
            ts_us,
            lane,
            args,
        });
    });
}

/// Add `delta` to the named counter. Sums are folded across threads at
/// [`drain`] time; addition commutes, so counters never perturb
/// determinism.
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    with_local(|b| *b.counters.entry(name).or_insert(0) += delta);
}

/// Like [`counter`], but records the key even when `delta` is zero.
/// For counter families whose consumers rely on a stable key set
/// (e.g. `vm.spec.*`): a zero is a statement, not an omission.
pub fn counter_keyed(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_local(|b| *b.counters.entry(name).or_insert(0) += delta);
}

/// Everything recorded in the current session, drained and merged.
#[derive(Clone, Debug)]
pub struct TraceData {
    /// All events, sorted by ordinal (deterministic order).
    pub events: Vec<TraceEvent>,
    /// Folded counter sums, keyed by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Events discarded due to per-thread ring overflow.
    pub dropped: u64,
    /// Clock mode the session was enabled with.
    pub clock: ClockMode,
}

/// Drain all per-thread buffers into one deterministic [`TraceData`].
/// Recording may continue afterwards (buffers stay registered, emptied).
pub fn drain() -> TraceData {
    let g = global();
    let mut events = Vec::new();
    let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut dropped = 0;
    for buf in g.buffers.lock().unwrap().iter() {
        let mut b = buf.lock().unwrap();
        events.append(&mut b.events);
        for (k, v) in b.counters.drain() {
            *counters.entry(k).or_insert(0) += v;
        }
        dropped += b.dropped;
        b.dropped = 0;
    }
    events.sort_by_key(|e| e.ordinal);
    TraceData {
        events,
        counters,
        dropped,
        clock: clock_mode(),
    }
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl TraceData {
    /// Exported (ts, dur, tid) for an event — virtualized under
    /// [`ClockMode::Virtual`] so the JSON is byte-identical across runs
    /// and `--jobs` values.
    fn view(&self, e: &TraceEvent) -> (u64, u64, u32) {
        let dur = match e.kind {
            EventKind::Span { dur_us } => dur_us,
            EventKind::Instant => 0,
        };
        match self.clock {
            ClockMode::Real => (e.ts_us, dur, e.lane),
            ClockMode::Virtual => (
                e.ordinal * 10,
                match e.kind {
                    EventKind::Span { .. } => 5,
                    EventKind::Instant => 0,
                },
                0,
            ),
        }
    }

    /// Serialize as Chrome trace-event JSON (`{"traceEvents": [...]}`),
    /// loadable in Perfetto and `chrome://tracing`. Span events use phase
    /// `"X"`, instants `"i"`, counters `"C"`.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut end_ts = 0u64;
        for e in &self.events {
            let (ts, dur, tid) = self.view(e);
            end_ts = end_ts.max(ts + dur);
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n{\"name\":\"");
            escape_json(&e.name, &mut out);
            out.push_str("\",\"cat\":\"");
            escape_json(e.cat, &mut out);
            match e.kind {
                EventKind::Span { .. } => {
                    let _ = write!(out, "\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur}");
                }
                EventKind::Instant => {
                    let _ = write!(out, "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts}");
                }
            }
            let _ = write!(out, ",\"pid\":1,\"tid\":{tid}");
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_json(k, &mut out);
                    out.push_str("\":\"");
                    escape_json(v, &mut out);
                    out.push('"');
                }
                out.push('}');
            }
            out.push('}');
        }
        for (name, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n{\"name\":\"");
            escape_json(name, &mut out);
            let _ = write!(
                out,
                "\",\"ph\":\"C\",\"ts\":{end_ts},\"pid\":1,\"tid\":0,\"args\":{{\"value\":{value}}}}}"
            );
        }
        out.push_str("\n]}\n");
        out
    }

    /// Per-category span aggregates: `(count, total duration in µs)`.
    /// Virtualized durations under the virtual clock, so the metrics file
    /// is deterministic whenever the trace is.
    pub fn span_totals(&self) -> BTreeMap<&'static str, (u64, u64)> {
        let mut totals: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for e in &self.events {
            if let EventKind::Span { .. } = e.kind {
                let (_, dur, _) = self.view(e);
                let t = totals.entry(e.cat).or_insert((0, 0));
                t.0 += 1;
                t.1 += dur;
            }
        }
        totals
    }

    /// Serialize the metrics summary as JSON: counters, per-category span
    /// aggregates, event/drop totals.
    pub fn to_metrics_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n\"clock\":\"{}\",\n\"events\":{},\n\"dropped\":{},\n",
            match self.clock {
                ClockMode::Real => "real",
                ClockMode::Virtual => "virtual",
            },
            self.events.len(),
            self.dropped
        );
        out.push_str("\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n\"");
            escape_json(k, &mut out);
            let _ = write!(out, "\":{v}");
        }
        out.push_str("\n},\n\"spans\":{");
        for (i, (cat, (count, total_us))) in self.span_totals().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n\"");
            escape_json(cat, &mut out);
            let _ = write!(out, "\":{{\"count\":{count},\"total_us\":{total_us}}}");
        }
        out.push_str("\n}\n}\n");
        out
    }

    /// Render the human `--stats` table.
    pub fn render_stats(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== trace stats ===");
        let totals = self.span_totals();
        if !totals.is_empty() {
            let _ = writeln!(
                out,
                "{:<20} {:>8} {:>12}",
                "span category", "count", "total µs"
            );
            for (cat, (count, total_us)) in &totals {
                let _ = writeln!(out, "{cat:<20} {count:>8} {total_us:>12}");
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<32} {:>14}", "counter", "value");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "{k:<32} {v:>14}");
            }
        }
        let _ = writeln!(
            out,
            "{} event(s), {} dropped",
            self.events.len(),
            self.dropped
        );
        out
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON shape validation (zero-dependency), used by tests and the CI
// schema smoke job to check emitted traces against the Chrome trace-event
// shape.
// ---------------------------------------------------------------------------

enum Json {
    Null,
    Bool,
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            s: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool),
            Some(b'f') => self.literal("false", Json::Bool),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.s[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.s[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.s.len() {
                                return Err(self.err("bad \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.s[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.s[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Validate `json` against the Chrome trace-event shape: a root object
/// with a `traceEvents` array whose elements carry `name`/`ph`/`ts`/
/// `pid`/`tid` (and `dur` for phase `"X"`). Returns the event count.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let mut p = Parser::new(json);
    let root = p.value()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(p.err("trailing data after document"));
    }
    let events = match root.get("traceEvents") {
        Some(Json::Arr(items)) => items,
        Some(_) => return Err("traceEvents is not an array".into()),
        None => return Err("missing traceEvents".into()),
    };
    for (i, ev) in events.iter().enumerate() {
        let fail = |msg: &str| Err(format!("traceEvents[{i}]: {msg}"));
        if !matches!(ev, Json::Obj(_)) {
            return fail("not an object");
        }
        match ev.get("name") {
            Some(Json::Str(_)) => {}
            _ => return fail("missing string 'name'"),
        }
        let ph = match ev.get("ph") {
            Some(Json::Str(s)) => s.as_str(),
            _ => return fail("missing string 'ph'"),
        };
        for key in ["ts", "pid", "tid"] {
            match ev.get(key) {
                Some(Json::Num(n)) if n.is_finite() && *n >= 0.0 => {}
                _ => return fail(&format!("missing non-negative numeric '{key}'")),
            }
        }
        match ph {
            "X" => match ev.get("dur") {
                Some(Json::Num(n)) if n.is_finite() && *n >= 0.0 => {}
                _ => return fail("phase 'X' missing numeric 'dur'"),
            },
            "i" | "C" => {}
            other => return fail(&format!("unexpected phase {other:?}")),
        }
        if ph == "C" {
            match ev.get("args") {
                Some(Json::Obj(fields))
                    if fields.iter().any(|(_, v)| matches!(v, Json::Num(_))) => {}
                _ => return fail("phase 'C' needs an args object with a numeric value"),
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state is process-global; tests that enable it serialize
    /// through this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = locked();
        disable();
        let _ = drain();
        counter("t.disabled", 3);
        instant("test", "nope");
        let s = span("test", "also-nope");
        let d = s.finish();
        assert!(d <= Duration::from_secs(1));
        let data = drain();
        assert!(data.events.is_empty());
        assert!(data.counters.is_empty());
    }

    #[test]
    fn spans_counters_and_instants_roundtrip() {
        let _g = locked();
        enable(ClockMode::Real);
        {
            let mut s = span("test", "outer");
            s.arg("k", "v");
            instant_args("test", "mark", vec![("why", "because".into())]);
            counter("t.count", 2);
            counter("t.count", 3);
            let _ = s.finish();
        }
        disable();
        let data = drain();
        assert_eq!(data.events.len(), 2);
        // Ordinal order: the span opened before the instant.
        assert_eq!(data.events[0].name, "outer");
        assert_eq!(data.events[0].args, vec![("k", "v".to_string())]);
        assert!(matches!(data.events[0].kind, EventKind::Span { .. }));
        assert_eq!(data.events[1].name, "mark");
        assert!(matches!(data.events[1].kind, EventKind::Instant));
        assert_eq!(data.counters.get("t.count"), Some(&5));
        assert!(validate_chrome_trace(&data.to_chrome_json()).unwrap() >= 3);
    }

    #[test]
    fn reserved_ordinals_sort_deterministically() {
        let _g = locked();
        enable(ClockMode::Virtual);
        let base = reserve(4);
        // Record out of order, as racing workers would.
        for idx in [2u64, 0, 3, 1] {
            record_span_at(
                "test",
                format!("unit-{idx}"),
                base + idx,
                0,
                Duration::from_micros(7),
                Vec::new(),
            );
        }
        disable();
        let data = drain();
        let names: Vec<&str> = data.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["unit-0", "unit-1", "unit-2", "unit-3"]);
        // Virtual clock: export is a pure function of ordinals.
        let json = data.to_chrome_json();
        assert!(json.contains("\"ts\":0,\"dur\":5"));
        assert!(json.contains(&format!("\"ts\":{}", (base + 3) * 10)));
        assert!(!json.contains("\"tid\":1"));
    }

    #[test]
    fn ring_overflow_counts_drops() {
        let _g = locked();
        enable(ClockMode::Virtual);
        for _ in 0..(RING_CAPACITY + 10) {
            instant("test", "spam");
        }
        disable();
        let data = drain();
        assert_eq!(data.events.len(), RING_CAPACITY);
        assert_eq!(data.dropped, 10);
    }

    #[test]
    fn json_escaping_and_validation() {
        let _g = locked();
        enable(ClockMode::Virtual);
        instant_args(
            "test",
            "weird \"name\"\twith\nescapes\u{1}",
            vec![("path", "a\\b".into())],
        );
        disable();
        let data = drain();
        let json = data.to_chrome_json();
        assert_eq!(validate_chrome_trace(&json).unwrap(), 1);
        assert!(json.contains("weird \\\"name\\\"\\twith\\nescapes\\u0001"));
        assert!(json.contains("a\\\\b"));
    }

    #[test]
    fn validator_rejects_malformed_shapes() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":3}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        // Phase X without dur.
        assert!(validate_chrome_trace(
            "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":1,\"pid\":1,\"tid\":0}]}"
        )
        .is_err());
        assert_eq!(
            validate_chrome_trace(
                "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"i\",\"ts\":1,\"pid\":1,\"tid\":0}]}"
            ),
            Ok(1)
        );
        assert!(validate_chrome_trace("{\"traceEvents\":[]} trailing").is_err());
    }

    #[test]
    fn metrics_and_stats_render() {
        let _g = locked();
        enable(ClockMode::Virtual);
        counter("m.counter", 41);
        counter("m.counter", 1);
        let _ = span("mcat", "thing").finish();
        disable();
        let data = drain();
        let metrics = data.to_metrics_json();
        assert!(metrics.contains("\"m.counter\":42"));
        assert!(metrics.contains("\"mcat\":{\"count\":1,\"total_us\":5}"));
        assert!(metrics.contains("\"clock\":\"virtual\""));
        let stats = data.render_stats();
        assert!(stats.contains("m.counter"));
        assert!(stats.contains("mcat"));
    }

    #[test]
    fn reenable_resets_ordinals_and_buffers() {
        let _g = locked();
        enable(ClockMode::Virtual);
        instant("test", "first-session");
        enable(ClockMode::Virtual);
        instant("test", "second-session");
        disable();
        let data = drain();
        assert_eq!(data.events.len(), 1);
        assert_eq!(data.events[0].name, "second-session");
        assert_eq!(data.events[0].ordinal, 0);
    }

    #[test]
    fn worker_threads_fold_into_one_drain() {
        let _g = locked();
        enable(ClockMode::Virtual);
        let base = reserve(8);
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                scope.spawn(move || {
                    record_span_at(
                        "test",
                        format!("w{w}"),
                        base + w,
                        0,
                        Duration::from_micros(1),
                        Vec::new(),
                    );
                    counter("t.worker", 1);
                });
            }
        });
        disable();
        let data = drain();
        assert_eq!(data.events.len(), 4);
        assert_eq!(data.counters.get("t.worker"), Some(&4));
        // Virtual export never leaks real lane ids.
        assert!(!data.to_chrome_json().contains("\"tid\":2"));
    }
}
