//! Unified tracing and metrics (observability spine).
//!
//! Every subsystem — pass manager, interpreter, JIT, heap, PGO, and the
//! lifelong store — records into this one module: RAII **spans** (timed
//! regions), **instant events** (point-in-time facts such as traps or
//! quarantines), and named **counters** (monotonic sums such as cache hits
//! or per-opcode execution counts). Recordings land in per-thread ring
//! buffers and are exported as Chrome trace-event JSON (loadable in
//! Perfetto / `chrome://tracing`) plus a machine-readable metrics summary.
//!
//! # Cost model
//!
//! Tracing is off by default. Every record site ([`counter`], [`instant`],
//! [`instant_args`], span recording) is gated on a single relaxed atomic
//! load ([`enabled`]); when disabled nothing else runs and nothing
//! allocates. [`Span`] additionally measures wall time with
//! [`Instant`] because its callers (e.g. `--time-passes`) need the
//! duration whether or not tracing is on — the pass report is a *view*
//! over the same measurement the trace records, not a second stopwatch.
//!
//! # Determinism
//!
//! Two mechanisms keep the exported trace byte-identical regardless of
//! `--jobs`, mirroring the fault-injection design:
//!
//! 1. **Ordinals.** Every event carries a `u64` ordinal; export sorts by
//!    it. Serial code draws ordinals from a global counter; parallel
//!    stages [`reserve`] a contiguous block *before* spawning workers and
//!    index it by function number (exactly like `FaultPlan::reserve`), so
//!    the set of (ordinal, event) pairs is independent of interleaving.
//! 2. **Virtual clock.** Under [`ClockMode::Virtual`] (the injectable
//!    clock pattern from `lpat_vm::store`), exported timestamps, durations
//!    and thread ids are pure functions of the ordinal: `ts = ordinal *
//!    10`, `dur = 5`, `tid = 0`. Real measurements still happen (reports
//!    keep their wall-clock numbers); only the *export* is virtualized.
//!
//! Counters are order-independent sums and need no special handling.
//!
//! # Distributed traces
//!
//! A trace session can *absorb* event buffers recorded by other
//! processes (the `lpatd` workers): the remote side serializes its
//! drained session with [`encode_wire_trace`], ships the bytes over
//! whatever transport it already has, and the collecting side calls
//! [`absorb_foreign`]. Foreign events are re-based onto this session's
//! ordinal space (via [`reserve`]) and exported as their own Chrome
//! `pid` lane; under the virtual clock all foreign lanes collapse to
//! one stable virtual pid so the merged export stays byte-deterministic
//! no matter how many worker processes served the requests.
//!
//! # Always-on telemetry and the flight recorder
//!
//! [`Histogram`] is a zero-dependency log-linear (HDR-style) quantile
//! sketch for always-on latency/size telemetry — see its docs for the
//! bucket scheme and error bound. [`FlightRecorder`] keeps a bounded
//! ring of the most recent trace events spilled incrementally to a
//! checksummed file, so a `SIGKILL`ed process leaves a salvageable
//! post-mortem record behind ([`read_flight`]).

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::hash::crc32;

/// Maximum buffered events per thread; overflow increments a drop counter
/// instead of reallocating without bound.
pub const RING_CAPACITY: usize = 1 << 16;

/// Clock used when *exporting* timestamps (recording always measures real
/// time; see the module docs).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ClockMode {
    /// Wall-clock microseconds since [`enable`].
    Real,
    /// Timestamps derived purely from event ordinals — byte-deterministic
    /// across runs and `--jobs` values.
    Virtual,
}

/// What kind of trace event a [`TraceEvent`] is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A timed region (Chrome phase `"X"`).
    Span {
        /// Measured wall-clock duration, in microseconds.
        dur_us: u64,
    },
    /// A point-in-time event (Chrome phase `"i"`).
    Instant,
}

/// One recorded event, as drained by [`drain`].
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Deterministic sort key; see the module docs.
    pub ordinal: u64,
    /// Subsystem category (`"pass"`, `"vm"`, `"jit"`, `"heap"`, `"pgo"`,
    /// `"store"`, ...).
    pub cat: &'static str,
    /// Event name (pass name, opcode, file stem, ...).
    pub name: String,
    /// Span or instant.
    pub kind: EventKind,
    /// Wall-clock start, microseconds since [`enable`].
    pub ts_us: u64,
    /// Recording thread's lane (export `tid` under the real clock).
    pub lane: u32,
    /// Structured key/value payload.
    pub args: Vec<(&'static str, String)>,
}

struct LocalBuf {
    lane: u32,
    events: Vec<TraceEvent>,
    counters: HashMap<&'static str, u64>,
    dropped: u64,
}

impl LocalBuf {
    fn new(lane: u32) -> LocalBuf {
        LocalBuf {
            lane,
            events: Vec::new(),
            counters: HashMap::new(),
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        flight_observe(&ev);
        if self.events.len() < RING_CAPACITY {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }
}

struct GlobalTrace {
    enabled: AtomicBool,
    virtual_clock: AtomicBool,
    /// Bumped by [`enable`] so thread-local buffers from a previous session
    /// re-register instead of writing into drained storage.
    epoch: AtomicU64,
    ordinal: AtomicU64,
    next_lane: AtomicU32,
    start: Mutex<Option<Instant>>,
    buffers: Mutex<Vec<Arc<Mutex<LocalBuf>>>>,
    foreign: Mutex<Vec<ForeignLane>>,
}

fn global() -> &'static GlobalTrace {
    static G: OnceLock<GlobalTrace> = OnceLock::new();
    G.get_or_init(|| GlobalTrace {
        enabled: AtomicBool::new(false),
        virtual_clock: AtomicBool::new(false),
        epoch: AtomicU64::new(0),
        ordinal: AtomicU64::new(0),
        next_lane: AtomicU32::new(0),
        start: Mutex::new(None),
        buffers: Mutex::new(Vec::new()),
        foreign: Mutex::new(Vec::new()),
    })
}

thread_local! {
    static TLS: RefCell<Option<(u64, Arc<Mutex<LocalBuf>>)>> = const { RefCell::new(None) };
}

fn with_local<R>(f: impl FnOnce(&mut LocalBuf) -> R) -> R {
    let g = global();
    let epoch = g.epoch.load(Ordering::Relaxed);
    TLS.with(|slot| {
        let mut slot = slot.borrow_mut();
        let stale = match &*slot {
            Some((e, _)) => *e != epoch,
            None => true,
        };
        if stale {
            let lane = g.next_lane.fetch_add(1, Ordering::Relaxed);
            let buf = Arc::new(Mutex::new(LocalBuf::new(lane)));
            g.buffers.lock().unwrap().push(Arc::clone(&buf));
            *slot = Some((epoch, buf));
        }
        let buf = Arc::clone(&slot.as_ref().unwrap().1);
        drop(slot);
        let r = f(&mut buf.lock().unwrap());
        r
    })
}

/// Start a tracing session, discarding any previous one.
pub fn enable(clock: ClockMode) {
    let g = global();
    g.enabled.store(false, Ordering::SeqCst);
    g.buffers.lock().unwrap().clear();
    g.foreign.lock().unwrap().clear();
    g.epoch.fetch_add(1, Ordering::SeqCst);
    g.ordinal.store(0, Ordering::SeqCst);
    g.next_lane.store(0, Ordering::SeqCst);
    *g.start.lock().unwrap() = Some(Instant::now());
    g.virtual_clock
        .store(clock == ClockMode::Virtual, Ordering::SeqCst);
    g.enabled.store(true, Ordering::SeqCst);
}

/// Stop recording. Buffered events stay drainable.
pub fn disable() {
    global().enabled.store(false, Ordering::SeqCst);
}

/// Whether tracing is on — the one relaxed atomic check every record site
/// is gated on.
#[inline]
pub fn enabled() -> bool {
    global().enabled.load(Ordering::Relaxed)
}

/// The clock mode of the current (or last) session.
pub fn clock_mode() -> ClockMode {
    if global().virtual_clock.load(Ordering::Relaxed) {
        ClockMode::Virtual
    } else {
        ClockMode::Real
    }
}

/// Microseconds since [`enable`] (0 when tracing is off).
pub fn now_us() -> u64 {
    if !enabled() {
        return 0;
    }
    match *global().start.lock().unwrap() {
        Some(t0) => t0.elapsed().as_micros() as u64,
        None => 0,
    }
}

fn next_ordinal() -> u64 {
    global().ordinal.fetch_add(1, Ordering::Relaxed)
}

/// Reserve a contiguous block of `n` ordinals and return its base.
///
/// Call this *serially* before fanning work out to parallel workers; each
/// worker then records with `base + deterministic_index` via
/// [`record_span_at`], so the exported trace is independent of `--jobs`
/// (the same protocol `FaultPlan::reserve` uses for fault sites).
pub fn reserve(n: u64) -> u64 {
    global().ordinal.fetch_add(n, Ordering::Relaxed)
}

/// A timed region. Created by [`span`]; records itself on drop.
///
/// The measured [`Duration`] is available through [`Span::stop`] /
/// [`Span::finish`] so callers (e.g. `--time-passes`) report *exactly*
/// the number the trace records — one stopwatch, two views.
pub struct Span {
    recording: bool,
    cat: &'static str,
    name: Cow<'static, str>,
    ordinal: u64,
    ts_us: u64,
    t0: Instant,
    dur: Option<Duration>,
    args: Vec<(&'static str, String)>,
}

/// Open a [`Span`] in category `cat`. Draws a serial ordinal — parallel
/// workers must use [`record_span_at`] with reserved ordinals instead.
pub fn span(cat: &'static str, name: impl Into<Cow<'static, str>>) -> Span {
    let recording = enabled();
    Span {
        recording,
        cat,
        name: name.into(),
        ordinal: if recording { next_ordinal() } else { 0 },
        ts_us: if recording { now_us() } else { 0 },
        t0: Instant::now(),
        dur: None,
        args: Vec::new(),
    }
}

impl Span {
    /// Attach a structured argument (no-op when tracing is off).
    pub fn arg(&mut self, key: &'static str, value: impl Into<String>) {
        if self.recording {
            self.args.push((key, value.into()));
        }
    }

    /// Freeze and return the duration without recording yet (idempotent).
    /// Lets callers bank the measurement, then attach outcome args before
    /// the span records on drop.
    pub fn stop(&mut self) -> Duration {
        if self.dur.is_none() {
            self.dur = Some(self.t0.elapsed());
        }
        self.dur.unwrap()
    }

    /// Record the span and return its measured duration.
    pub fn finish(mut self) -> Duration {
        self.stop()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur = self.dur.unwrap_or_else(|| self.t0.elapsed());
        if self.recording {
            let ev = TraceEvent {
                ordinal: self.ordinal,
                cat: self.cat,
                name: std::mem::take(&mut self.name).into_owned(),
                kind: EventKind::Span {
                    dur_us: dur.as_micros() as u64,
                },
                ts_us: self.ts_us,
                lane: 0, // filled from the local buffer below
                args: std::mem::take(&mut self.args),
            };
            with_local(|b| {
                let mut ev = ev;
                ev.lane = b.lane;
                b.push(ev);
            });
        }
    }
}

/// Record a completed span with a *reserved* ordinal (parallel workers).
///
/// `ts_us` should come from [`now_us`] at region start; `dur` is the
/// measured duration. Only call when [`enabled`] — reserved ordinals only
/// exist in that case.
pub fn record_span_at(
    cat: &'static str,
    name: String,
    ordinal: u64,
    ts_us: u64,
    dur: Duration,
    args: Vec<(&'static str, String)>,
) {
    if !enabled() {
        return;
    }
    with_local(|b| {
        let lane = b.lane;
        b.push(TraceEvent {
            ordinal,
            cat,
            name,
            kind: EventKind::Span {
                dur_us: dur.as_micros() as u64,
            },
            ts_us,
            lane,
            args,
        });
    });
}

/// Record a point-in-time event.
pub fn instant(cat: &'static str, name: impl Into<Cow<'static, str>>) {
    instant_args(cat, name, Vec::new());
}

/// Record a point-in-time event with structured arguments.
pub fn instant_args(
    cat: &'static str,
    name: impl Into<Cow<'static, str>>,
    args: Vec<(&'static str, String)>,
) {
    if !enabled() {
        return;
    }
    let ordinal = next_ordinal();
    let ts_us = now_us();
    let name = name.into().into_owned();
    with_local(|b| {
        let lane = b.lane;
        b.push(TraceEvent {
            ordinal,
            cat,
            name,
            kind: EventKind::Instant,
            ts_us,
            lane,
            args,
        });
    });
}

/// Add `delta` to the named counter. Sums are folded across threads at
/// [`drain`] time; addition commutes, so counters never perturb
/// determinism.
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() || delta == 0 {
        return;
    }
    with_local(|b| *b.counters.entry(name).or_insert(0) += delta);
}

/// Like [`counter`], but records the key even when `delta` is zero.
/// For counter families whose consumers rely on a stable key set
/// (e.g. `vm.spec.*`): a zero is a statement, not an omission.
pub fn counter_keyed(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_local(|b| *b.counters.entry(name).or_insert(0) += delta);
}

/// Events absorbed from another process ([`absorb_foreign`]), exported
/// as their own Chrome `pid` lane.
#[derive(Clone, Debug)]
pub struct ForeignLane {
    /// Recording process id (collapsed to one virtual pid on export
    /// under [`ClockMode::Virtual`]).
    pub pid: u32,
    /// The absorbed events; ordinals already re-based onto the local
    /// session's ordinal space.
    pub events: Vec<TraceEvent>,
    /// Events the remote ring dropped before shipping.
    pub dropped: u64,
}

/// Everything recorded in the current session, drained and merged.
#[derive(Clone, Debug)]
pub struct TraceData {
    /// All events, sorted by ordinal (deterministic order).
    pub events: Vec<TraceEvent>,
    /// Folded counter sums, keyed by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Events discarded due to per-thread ring overflow.
    pub dropped: u64,
    /// Clock mode the session was enabled with.
    pub clock: ClockMode,
    /// Per-process lanes absorbed from workers via [`absorb_foreign`].
    pub foreign: Vec<ForeignLane>,
}

/// Drain all per-thread buffers into one deterministic [`TraceData`].
/// Recording may continue afterwards (buffers stay registered, emptied).
pub fn drain() -> TraceData {
    let g = global();
    let mut events = Vec::new();
    let mut counters: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut dropped = 0;
    for buf in g.buffers.lock().unwrap().iter() {
        let mut b = buf.lock().unwrap();
        events.append(&mut b.events);
        for (k, v) in b.counters.drain() {
            *counters.entry(k).or_insert(0) += v;
        }
        dropped += b.dropped;
        b.dropped = 0;
    }
    events.sort_by_key(|e| e.ordinal);
    let foreign = std::mem::take(&mut *g.foreign.lock().unwrap());
    TraceData {
        events,
        counters,
        dropped,
        clock: clock_mode(),
        foreign,
    }
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl TraceData {
    /// Exported (ts, dur, tid) for an event — virtualized under
    /// [`ClockMode::Virtual`] so the JSON is byte-identical across runs
    /// and `--jobs` values.
    fn view(&self, e: &TraceEvent) -> (u64, u64, u32) {
        let dur = match e.kind {
            EventKind::Span { dur_us } => dur_us,
            EventKind::Instant => 0,
        };
        match self.clock {
            ClockMode::Real => (e.ts_us, dur, e.lane),
            ClockMode::Virtual => (
                e.ordinal * 10,
                match e.kind {
                    EventKind::Span { .. } => 5,
                    EventKind::Instant => 0,
                },
                0,
            ),
        }
    }

    /// The Chrome `pid` a local event exports with: the stable virtual
    /// pid 1 under [`ClockMode::Virtual`], the real process id otherwise.
    fn local_pid(&self) -> u64 {
        match self.clock {
            ClockMode::Virtual => 1,
            ClockMode::Real => u64::from(std::process::id()),
        }
    }

    /// The Chrome `pid` a foreign lane exports with. Under the virtual
    /// clock every worker collapses to pid 2 (which worker served a
    /// request is scheduling noise; keeping real pids would break byte
    /// determinism), under the real clock each keeps its process id.
    fn foreign_pid(&self, lane: &ForeignLane) -> u64 {
        match self.clock {
            ClockMode::Virtual => 2,
            ClockMode::Real => u64::from(lane.pid),
        }
    }

    /// Serialize as Chrome trace-event JSON (`{"traceEvents": [...]}`),
    /// loadable in Perfetto and `chrome://tracing`. Span events use phase
    /// `"X"`, instants `"i"`, counters `"C"`. Local events export under
    /// [`Self::local_pid`]; absorbed worker lanes under their own pid
    /// (phase `"M"` `process_name` metadata labels the lanes), the whole
    /// merged stream sorted by ordinal.
    pub fn to_chrome_json(&self) -> String {
        let n = self.events.len() + self.foreign.iter().map(|l| l.events.len()).sum::<usize>();
        let mut out = String::with_capacity(256 + n * 96);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        // Merge local + foreign into one ordinal-sorted stream.
        // Absorbed lanes carry re-based (unique) ordinals, so the sort
        // is total and the merged bytes stay deterministic.
        let mut merged: Vec<(u64, u32, &TraceEvent)> = Vec::with_capacity(n);
        let local_pid = self.local_pid();
        for e in &self.events {
            merged.push((local_pid, e.lane, e));
        }
        for lane in &self.foreign {
            let pid = self.foreign_pid(lane);
            for e in &lane.events {
                let tid = match self.clock {
                    ClockMode::Virtual => 0,
                    ClockMode::Real => e.lane,
                };
                merged.push((pid, tid, e));
            }
        }
        merged.sort_by_key(|(_, _, e)| e.ordinal);
        if !self.foreign.is_empty() {
            // Label the process lanes so Perfetto shows "daemon" and
            // "worker" instead of bare numbers.
            let mut pids: Vec<(u64, &str)> = vec![(local_pid, "daemon")];
            for lane in &self.foreign {
                let pid = self.foreign_pid(lane);
                if !pids.iter().any(|&(p, _)| p == pid) {
                    pids.push((pid, "worker"));
                }
            }
            pids.sort_unstable();
            for (pid, label) in pids {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "\n{{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\
                     \"tid\":0,\"args\":{{\"name\":\"{label}\"}}}}"
                );
            }
        }
        let mut end_ts = 0u64;
        for (pid, tid, e) in &merged {
            let (ts, dur, local_tid) = self.view(e);
            let tid = if *pid == local_pid { local_tid } else { *tid };
            end_ts = end_ts.max(ts + dur);
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n{\"name\":\"");
            escape_json(&e.name, &mut out);
            out.push_str("\",\"cat\":\"");
            escape_json(e.cat, &mut out);
            match e.kind {
                EventKind::Span { .. } => {
                    let _ = write!(out, "\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur}");
                }
                EventKind::Instant => {
                    let _ = write!(out, "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts}");
                }
            }
            let _ = write!(out, ",\"pid\":{pid},\"tid\":{tid}");
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_json(k, &mut out);
                    out.push_str("\":\"");
                    escape_json(v, &mut out);
                    out.push('"');
                }
                out.push('}');
            }
            out.push('}');
        }
        for (name, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n{\"name\":\"");
            escape_json(name, &mut out);
            let _ = write!(
                out,
                "\",\"ph\":\"C\",\"ts\":{end_ts},\"pid\":{local_pid},\"tid\":0,\
                 \"args\":{{\"value\":{value}}}}}"
            );
        }
        out.push_str("\n]}\n");
        out
    }

    /// Per-category span aggregates: `(count, total duration in µs)`,
    /// absorbed worker lanes included. Virtualized durations under the
    /// virtual clock, so the metrics file is deterministic whenever the
    /// trace is.
    pub fn span_totals(&self) -> BTreeMap<&'static str, (u64, u64)> {
        let mut totals: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        let locals = self.events.iter();
        let foreigns = self.foreign.iter().flat_map(|l| l.events.iter());
        for e in locals.chain(foreigns) {
            if let EventKind::Span { .. } = e.kind {
                let (_, dur, _) = self.view(e);
                let t = totals.entry(e.cat).or_insert((0, 0));
                t.0 += 1;
                t.1 += dur;
            }
        }
        totals
    }

    /// Serialize the metrics summary as JSON: counters, per-category span
    /// aggregates, event/drop totals.
    pub fn to_metrics_json(&self) -> String {
        let foreign_events: usize = self.foreign.iter().map(|l| l.events.len()).sum();
        let foreign_dropped: u64 = self.foreign.iter().map(|l| l.dropped).sum();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str(
            "clock",
            match self.clock {
                ClockMode::Real => "real",
                ClockMode::Virtual => "virtual",
            },
        );
        w.field_u64("events", self.events.len() as u64);
        w.field_u64("foreign_events", foreign_events as u64);
        w.field_u64("dropped", self.dropped + foreign_dropped);
        w.begin_object_field("counters");
        for (k, v) in &self.counters {
            w.field_u64(k, *v);
        }
        w.end_object();
        w.begin_object_field("spans");
        for (cat, (count, total_us)) in &self.span_totals() {
            w.begin_object_field(cat);
            w.field_u64("count", *count);
            w.field_u64("total_us", *total_us);
            w.end_object();
        }
        w.end_object();
        w.end_object();
        let mut out = w.finish();
        out.push('\n');
        out
    }

    /// Render the human `--stats` table.
    pub fn render_stats(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== trace stats ===");
        let totals = self.span_totals();
        if !totals.is_empty() {
            let _ = writeln!(
                out,
                "{:<20} {:>8} {:>12}",
                "span category", "count", "total µs"
            );
            for (cat, (count, total_us)) in &totals {
                let _ = writeln!(out, "{cat:<20} {count:>8} {total_us:>12}");
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<32} {:>14}", "counter", "value");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "{k:<32} {v:>14}");
            }
        }
        let foreign_events: usize = self.foreign.iter().map(|l| l.events.len()).sum();
        if foreign_events > 0 {
            let _ = writeln!(
                out,
                "{} event(s) (+{} from {} worker lane(s)), {} dropped",
                self.events.len(),
                foreign_events,
                self.foreign.len(),
                self.dropped + self.foreign.iter().map(|l| l.dropped).sum::<u64>()
            );
        } else {
            let _ = writeln!(
                out,
                "{} event(s), {} dropped",
                self.events.len(),
                self.dropped
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON parsing (zero-dependency), used by the trace-schema
// validator below, by `lpatc remote top` to read `lpat-serve-stats/v2`
// documents, and by tests.
// ---------------------------------------------------------------------------

/// A parsed JSON value — validation-grade (numbers are `f64`, object
/// field order is preserved but not deduplicated).
pub enum Json {
    /// `null`.
    Null,
    /// `true` or `false` (the value itself is not retained).
    Bool,
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field `key` of an object (`None` for other shapes / missing keys).
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric field `key` of an object.
    pub fn num(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Json::Num(n)) => Some(*n),
            _ => None,
        }
    }

    /// String field `key` of an object.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Json::Str(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The object's fields, in document order (empty for other shapes).
    pub fn fields(&self) -> &[(String, Json)] {
        match self {
            Json::Obj(fields) => fields.as_slice(),
            _ => &[],
        }
    }
}

/// Parse a complete JSON document (rejects trailing data).
///
/// # Errors
///
/// A human-readable message with the byte offset of the first error.
pub fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            s: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool),
            Some(b'f') => self.literal("false", Json::Bool),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.s[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.s[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.s.len() {
                                return Err(self.err("bad \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.s[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.s[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Validate `json` against the Chrome trace-event shape: a root object
/// with a `traceEvents` array whose elements carry `name`/`ph`/`ts`/
/// `pid`/`tid` (and `dur` for phase `"X"`). Returns the event count.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let root = parse_json(json)?;
    let events = match root.get("traceEvents") {
        Some(Json::Arr(items)) => items,
        Some(_) => return Err("traceEvents is not an array".into()),
        None => return Err("missing traceEvents".into()),
    };
    for (i, ev) in events.iter().enumerate() {
        let fail = |msg: &str| Err(format!("traceEvents[{i}]: {msg}"));
        if !matches!(ev, Json::Obj(_)) {
            return fail("not an object");
        }
        match ev.get("name") {
            Some(Json::Str(_)) => {}
            _ => return fail("missing string 'name'"),
        }
        let ph = match ev.get("ph") {
            Some(Json::Str(s)) => s.as_str(),
            _ => return fail("missing string 'ph'"),
        };
        for key in ["ts", "pid", "tid"] {
            match ev.get(key) {
                Some(Json::Num(n)) if n.is_finite() && *n >= 0.0 => {}
                _ => return fail(&format!("missing non-negative numeric '{key}'")),
            }
        }
        match ph {
            "X" => match ev.get("dur") {
                Some(Json::Num(n)) if n.is_finite() && *n >= 0.0 => {}
                _ => return fail("phase 'X' missing numeric 'dur'"),
            },
            "i" | "C" | "M" => {}
            other => return fail(&format!("unexpected phase {other:?}")),
        }
        if ph == "C" {
            match ev.get("args") {
                Some(Json::Obj(fields))
                    if fields.iter().any(|(_, v)| matches!(v, Json::Num(_))) => {}
                _ => return fail("phase 'C' needs an args object with a numeric value"),
            }
        }
    }
    Ok(events.len())
}

// ---------------------------------------------------------------------------
// JSON writer: the one serializer behind every stats/metrics/bench JSON
// document in the workspace (daemon stats, `--metrics-out`, servebench).
// ---------------------------------------------------------------------------

/// A minimal zero-dependency JSON writer with correct escaping and comma
/// placement. Objects are written with `field_*` methods, arrays with
/// `value_*` methods; nesting via `begin_*`/`end_*`. The caller is
/// responsible for balanced begin/end calls — this is a serializer for
/// code-shaped documents, not a general-purpose emitter.
pub struct JsonWriter {
    out: String,
    comma: Vec<bool>,
}

impl Default for JsonWriter {
    fn default() -> JsonWriter {
        JsonWriter::new()
    }
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> JsonWriter {
        JsonWriter {
            out: String::new(),
            comma: vec![false],
        }
    }

    fn sep(&mut self) {
        if let Some(c) = self.comma.last_mut() {
            if *c {
                self.out.push(',');
            }
            *c = true;
        }
    }

    fn key(&mut self, k: &str) {
        self.sep();
        self.out.push('"');
        escape_json(k, &mut self.out);
        self.out.push_str("\":");
    }

    /// Open an object as a bare value (document root or array element).
    pub fn begin_object(&mut self) {
        self.sep();
        self.out.push('{');
        self.comma.push(false);
    }

    /// Open an object under key `k` of the enclosing object.
    pub fn begin_object_field(&mut self, k: &str) {
        self.key(k);
        self.out.push('{');
        self.comma.push(false);
    }

    /// Open an array under key `k` of the enclosing object.
    pub fn begin_array_field(&mut self, k: &str) {
        self.key(k);
        self.out.push('[');
        self.comma.push(false);
    }

    /// Close the innermost object.
    pub fn end_object(&mut self) {
        self.comma.pop();
        self.out.push('}');
    }

    /// Close the innermost array.
    pub fn end_array(&mut self) {
        self.comma.pop();
        self.out.push(']');
    }

    /// String field of the enclosing object.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.out.push('"');
        escape_json(v, &mut self.out);
        self.out.push('"');
    }

    /// Unsigned integer field of the enclosing object.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        let _ = write!(self.out, "{v}");
    }

    /// Signed integer field of the enclosing object.
    pub fn field_i64(&mut self, k: &str, v: i64) {
        self.key(k);
        let _ = write!(self.out, "{v}");
    }

    /// Boolean field of the enclosing object.
    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        let _ = write!(self.out, "{v}");
    }

    /// Float field of the enclosing object, with fixed `decimals`.
    pub fn field_f64(&mut self, k: &str, v: f64, decimals: usize) {
        self.key(k);
        let _ = write!(self.out, "{v:.decimals$}");
    }

    /// Pre-rendered JSON under key `k` — for embedding a document that
    /// was serialized elsewhere (e.g. scraped server stats). The caller
    /// guarantees `raw` is valid JSON.
    pub fn field_raw(&mut self, k: &str, raw: &str) {
        self.key(k);
        self.out.push_str(raw);
    }

    /// Unsigned integer element of the enclosing array.
    pub fn value_u64(&mut self, v: u64) {
        self.sep();
        let _ = write!(self.out, "{v}");
    }

    /// String element of the enclosing array.
    pub fn value_str(&mut self, v: &str) {
        self.sep();
        self.out.push('"');
        escape_json(v, &mut self.out);
        self.out.push('"');
    }

    /// Float element of the enclosing array, with fixed `decimals`.
    pub fn value_f64(&mut self, v: f64, decimals: usize) {
        self.sep();
        let _ = write!(self.out, "{v:.decimals$}");
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

// ---------------------------------------------------------------------------
// Log-linear histograms: always-on quantile telemetry.
// ---------------------------------------------------------------------------

/// Linear sub-buckets per power-of-two group: 2^4 = 16, which bounds the
/// relative bucket width — and therefore the quantile overestimate — at
/// 1/16 = 6.25%.
const HIST_SUB_BITS: u32 = 4;
const HIST_SUB: u64 = 1 << HIST_SUB_BITS;
/// Group 0 holds the exact values `0..16`; one 16-bucket group per
/// most-significant-bit position 4..=63 covers the rest of `u64`.
const HIST_GROUPS: usize = 64 - HIST_SUB_BITS as usize + 1;
const HIST_BUCKETS: usize = HIST_SUB as usize * HIST_GROUPS;

fn hist_index(v: u64) -> usize {
    if v < HIST_SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let group = (msb - HIST_SUB_BITS + 1) as usize;
    let sub = ((v >> (msb - HIST_SUB_BITS)) & (HIST_SUB - 1)) as usize;
    group * HIST_SUB as usize + sub
}

/// Inclusive upper edge of bucket `index` (what quantile queries report).
fn hist_upper(index: usize) -> u64 {
    let sub = (index as u64) & (HIST_SUB - 1);
    let group = (index as u64) >> HIST_SUB_BITS;
    if group == 0 {
        return sub;
    }
    let hi = (u128::from(HIST_SUB + sub + 1) << (group - 1)) - 1;
    u64::try_from(hi).unwrap_or(u64::MAX)
}

/// A zero-dependency log-linear (HDR-style) histogram over `u64` values.
///
/// # Bucket scheme
///
/// Values `0..16` get exact unit buckets. Every larger value lands in
/// one of 16 equal-width linear sub-buckets of its power-of-two range
/// `[2^m, 2^(m+1))`, so bucket width is `2^(m-4)` — at most 1/16 of the
/// bucket's lower edge. Fixed size: 976 buckets × 8 bytes ≈ 7.6 KiB.
///
/// # Error bound
///
/// [`Histogram::quantile`] reports the inclusive upper edge of the
/// bucket holding the target rank (clamped to the observed maximum), so
/// it never under-reports, and over-reports by less than one bucket
/// width: the estimate `r` for a true rank value `t` satisfies
/// `t <= r <= t + t/16 + 1` (exact below 16).
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            counts: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[hist_index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.max = self.max.max(v);
    }

    /// Fold `other`'s observations into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Largest recorded observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`q` in `[0, 1]`), within the documented bucket
    /// error; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return hist_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Write the standard summary fields (`count`, `sum`, `max`, `p50`,
    /// `p90`, `p99`) into the currently open [`JsonWriter`] object.
    pub fn write_fields(&self, w: &mut JsonWriter) {
        w.field_u64("count", self.count);
        w.field_u64("sum", u64::try_from(self.sum).unwrap_or(u64::MAX));
        w.field_u64("max", self.max);
        w.field_u64("p50", self.quantile(0.50));
        w.field_u64("p90", self.quantile(0.90));
        w.field_u64("p99", self.quantile(0.99));
    }
}

/// A bounded family of histograms keyed by string (per-op, per-tenant).
/// Once `max_keys` distinct keys exist, further keys fold into `"other"`
/// so a tenant-name flood cannot grow memory without bound.
#[derive(Clone, Debug)]
pub struct HistogramSet {
    map: BTreeMap<String, Histogram>,
    max_keys: usize,
}

impl HistogramSet {
    /// An empty set admitting at most `max_keys` distinct keys.
    pub fn new(max_keys: usize) -> HistogramSet {
        HistogramSet {
            map: BTreeMap::new(),
            max_keys: max_keys.max(1),
        }
    }

    /// Record `v` under `key` (or under `"other"` once full).
    pub fn record(&mut self, key: &str, v: u64) {
        if let Some(h) = self.map.get_mut(key) {
            h.record(v);
            return;
        }
        let key = if self.map.len() >= self.max_keys {
            "other"
        } else {
            key
        };
        self.map.entry(key.to_string()).or_default().record(v);
    }

    /// The keyed histograms, in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.map.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Write one summary object per key into the currently open
    /// [`JsonWriter`] object.
    pub fn write_fields(&self, w: &mut JsonWriter) {
        for (k, h) in self.iter() {
            w.begin_object_field(k);
            h.write_fields(w);
            w.end_object();
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-process trace shipping: binary event encoding, wire buffers, and
// absorption into the collecting session as foreign pid lanes.
// ---------------------------------------------------------------------------

/// Intern a string, returning a `&'static str`. Backs decoded event
/// categories, arg keys, and counter names, which [`TraceEvent`] holds
/// as `&'static str`. The leak is bounded by the vocabulary of names the
/// workspace actually records — a fixed set, not per-event data.
fn intern(s: &str) -> &'static str {
    static INTERNED: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let m = INTERNED.get_or_init(|| Mutex::new(HashMap::new()));
    let mut m = m.lock().unwrap();
    if let Some(&v) = m.get(s) {
        return v;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    m.insert(s.to_owned(), leaked);
    leaked
}

struct ByteCursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> ByteCursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| format!("truncated {what}"))?;
        let s = &self.b[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn str16(&mut self, what: &str) -> Result<String, String> {
        let n = self.u16(what)? as usize;
        Ok(String::from_utf8_lossy(self.take(n, what)?).into_owned())
    }
}

fn push_str16(out: &mut Vec<u8>, s: &str) {
    let b = s.as_bytes();
    let n = b.len().min(u16::MAX as usize);
    out.extend_from_slice(&(n as u16).to_le_bytes());
    out.extend_from_slice(&b[..n]);
}

fn encode_event(e: &TraceEvent, out: &mut Vec<u8>) {
    out.extend_from_slice(&e.ordinal.to_le_bytes());
    let (kind, dur_us) = match e.kind {
        EventKind::Span { dur_us } => (0u8, dur_us),
        EventKind::Instant => (1u8, 0),
    };
    out.push(kind);
    out.extend_from_slice(&dur_us.to_le_bytes());
    out.extend_from_slice(&e.ts_us.to_le_bytes());
    out.extend_from_slice(&e.lane.to_le_bytes());
    push_str16(out, e.cat);
    push_str16(out, &e.name);
    let nargs = e.args.len().min(u16::MAX as usize);
    out.extend_from_slice(&(nargs as u16).to_le_bytes());
    for (k, v) in e.args.iter().take(nargs) {
        push_str16(out, k);
        push_str16(out, v);
    }
}

fn decode_event_at(c: &mut ByteCursor) -> Result<TraceEvent, String> {
    let ordinal = c.u64("event ordinal")?;
    let kind = c.u8("event kind")?;
    let dur_us = c.u64("event dur")?;
    let ts_us = c.u64("event ts")?;
    let lane = c.u32("event lane")?;
    let cat = intern(&c.str16("event cat")?);
    let name = c.str16("event name")?;
    let nargs = c.u16("event nargs")?;
    let mut args = Vec::with_capacity(usize::from(nargs).min(64));
    for _ in 0..nargs {
        let k = intern(&c.str16("arg key")?);
        let v = c.str16("arg value")?;
        args.push((k, v));
    }
    let kind = match kind {
        0 => EventKind::Span { dur_us },
        1 => EventKind::Instant,
        k => return Err(format!("bad event kind {k}")),
    };
    Ok(TraceEvent {
        ordinal,
        cat,
        name,
        kind,
        ts_us,
        lane,
        args,
    })
}

/// Magic prefix of a serialized trace buffer ([`encode_wire_trace`]).
pub const WIRE_TRACE_MAGIC: [u8; 4] = *b"LPTB";
const WIRE_TRACE_VERSION: u16 = 1;

/// A decoded wire trace buffer ([`decode_wire_trace`]): one process's
/// events plus its counter sums.
pub struct WireTrace {
    /// The remote events as a lane (ordinals still in the remote
    /// session's space until [`absorb_foreign`] re-bases them).
    pub lane: ForeignLane,
    /// Counter sums the remote session folded.
    pub counters: Vec<(&'static str, u64)>,
}

/// Serialize a drained session for shipping to a collecting process.
/// Layout: `"LPTB"` magic, `u16` version, `u32` pid, `u64` dropped,
/// `u32` event count + events, `u16` counter count + `(name, u64)`
/// pairs; all integers little-endian, strings as `u16` length + UTF-8.
/// `data.foreign` lanes are not nested (workers have none).
pub fn encode_wire_trace(data: &TraceData, pid: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + data.events.len() * 64);
    out.extend_from_slice(&WIRE_TRACE_MAGIC);
    out.extend_from_slice(&WIRE_TRACE_VERSION.to_le_bytes());
    out.extend_from_slice(&pid.to_le_bytes());
    out.extend_from_slice(&data.dropped.to_le_bytes());
    let n_events = data.events.len().min(u32::MAX as usize);
    out.extend_from_slice(&(n_events as u32).to_le_bytes());
    for e in data.events.iter().take(n_events) {
        encode_event(e, &mut out);
    }
    let n_counters = data.counters.len().min(u16::MAX as usize);
    out.extend_from_slice(&(n_counters as u16).to_le_bytes());
    for (k, v) in data.counters.iter().take(n_counters) {
        push_str16(&mut out, k);
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode a buffer produced by [`encode_wire_trace`]. Total: every
/// malformed input yields `Err`, never a panic.
///
/// # Errors
///
/// A description of the first framing/bounds violation.
pub fn decode_wire_trace(bytes: &[u8]) -> Result<WireTrace, String> {
    let mut c = ByteCursor { b: bytes, pos: 0 };
    if c.take(4, "magic")? != WIRE_TRACE_MAGIC {
        return Err("bad wire-trace magic".into());
    }
    let ver = c.u16("version")?;
    if ver != WIRE_TRACE_VERSION {
        return Err(format!("unsupported wire-trace version {ver}"));
    }
    let pid = c.u32("pid")?;
    let dropped = c.u64("dropped")?;
    let n_events = c.u32("event count")?;
    let mut events = Vec::with_capacity((n_events as usize).min(4096));
    for _ in 0..n_events {
        events.push(decode_event_at(&mut c)?);
    }
    let n_counters = c.u16("counter count")?;
    let mut counters = Vec::with_capacity(usize::from(n_counters).min(256));
    for _ in 0..n_counters {
        let k = intern(&c.str16("counter name")?);
        let v = c.u64("counter value")?;
        counters.push((k, v));
    }
    if c.pos != bytes.len() {
        return Err("trailing bytes after wire trace".into());
    }
    Ok(WireTrace {
        lane: ForeignLane {
            pid,
            events,
            dropped,
        },
        counters,
    })
}

/// Absorb a remote process's serialized trace buffer into the current
/// session: its events are re-ordered by remote ordinal, re-based onto a
/// [`reserve`]d block of local ordinals (so merged export order is
/// deterministic), shifted by `ts_base_us` (the local time the remote
/// work started), and kept as a [`ForeignLane`]; its counters fold into
/// the session counters. No-op (but still validated) when tracing is
/// off. Returns the number of absorbed events.
///
/// # Errors
///
/// Propagates [`decode_wire_trace`] errors.
pub fn absorb_foreign(bytes: &[u8], ts_base_us: u64) -> Result<usize, String> {
    let mut wt = decode_wire_trace(bytes)?;
    if !enabled() {
        return Ok(0);
    }
    wt.lane.events.sort_by_key(|e| e.ordinal);
    let base = reserve(wt.lane.events.len() as u64);
    for (i, e) in wt.lane.events.iter_mut().enumerate() {
        e.ordinal = base + i as u64;
        e.ts_us = e.ts_us.saturating_add(ts_base_us);
    }
    for (k, v) in &wt.counters {
        counter_keyed(k, *v);
    }
    let n = wt.lane.events.len();
    if n > 0 || wt.lane.dropped > 0 {
        global().foreign.lock().unwrap().push(wt.lane);
    }
    Ok(n)
}

// ---------------------------------------------------------------------------
// Crash flight recorder: a bounded ring of recent events, spilled
// incrementally to a checksummed file that survives SIGKILL.
// ---------------------------------------------------------------------------

/// Magic prefix of a flight spill/dump file.
pub const FLIGHT_MAGIC: [u8; 4] = *b"LPFR";
const FLIGHT_VERSION: u16 = 1;
/// Rewrite the spill file from the ring once it grows past this size, so
/// a long-lived worker's spill stays bounded.
const FLIGHT_REWRITE_BYTES: u64 = 64 * 1024;

fn flight_header() -> [u8; 6] {
    let mut h = [0u8; 6];
    h[..4].copy_from_slice(&FLIGHT_MAGIC);
    h[4..].copy_from_slice(&FLIGHT_VERSION.to_le_bytes());
    h
}

/// A bounded ring of the most recent trace events, spilled incrementally
/// to a file. Install with [`install_flight_recorder`]; every event any
/// record site pushes is then appended as a journal-style record
/// (`[len][crc32(payload)][payload]`, the same framing as the store's
/// write-ahead journal) after a `"LPFR"` header. Plain `write(2)` per
/// event — the data reaches the page cache, so it survives `SIGKILL`
/// and `abort(3)`; only a machine crash can lose the tail. A supervisor
/// salvages the file post-mortem with [`read_flight`], which keeps the
/// longest checksum-valid prefix and drops a torn tail record.
pub struct FlightRecorder {
    path: PathBuf,
    file: std::fs::File,
    ring: VecDeque<Vec<u8>>,
    capacity: usize,
    spilled_bytes: u64,
}

impl FlightRecorder {
    /// Create (truncating) the spill file at `path`, keeping at most
    /// `capacity` events in the ring.
    ///
    /// # Errors
    ///
    /// I/O errors creating or writing the file header.
    pub fn create(path: &Path, capacity: usize) -> std::io::Result<FlightRecorder> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(&flight_header())?;
        Ok(FlightRecorder {
            path: path.to_path_buf(),
            file,
            ring: VecDeque::new(),
            capacity: capacity.max(1),
            spilled_bytes: 6,
        })
    }

    /// The spill file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append_record(&mut self, payload: &[u8]) -> std::io::Result<()> {
        let mut framed = Vec::with_capacity(payload.len() + 8);
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(payload).to_le_bytes());
        framed.extend_from_slice(payload);
        self.file.write_all(&framed)?;
        self.file.flush()?;
        self.spilled_bytes += framed.len() as u64;
        Ok(())
    }

    fn record(&mut self, ev: &TraceEvent) -> std::io::Result<()> {
        let mut payload = Vec::new();
        encode_event(ev, &mut payload);
        self.ring.push_back(payload.clone());
        while self.ring.len() > self.capacity {
            self.ring.pop_front();
        }
        if self.spilled_bytes >= FLIGHT_REWRITE_BYTES {
            self.rewrite()
        } else {
            self.append_record(&payload)
        }
    }

    /// Rewrite the spill from the in-memory ring: truncate, re-write the
    /// header, and append the ring's records.
    fn rewrite(&mut self) -> std::io::Result<()> {
        use std::io::Seek as _;
        self.file.rewind()?;
        self.file.set_len(0)?;
        self.file.write_all(&flight_header())?;
        self.spilled_bytes = 6;
        let ring: Vec<Vec<u8>> = self.ring.iter().cloned().collect();
        for payload in &ring {
            self.append_record(payload)?;
        }
        Ok(())
    }
}

static FLIGHT_ON: AtomicBool = AtomicBool::new(false);

fn flight_global() -> &'static Mutex<Option<FlightRecorder>> {
    static F: OnceLock<Mutex<Option<FlightRecorder>>> = OnceLock::new();
    F.get_or_init(|| Mutex::new(None))
}

/// Install `r` as the process-wide flight recorder: from now on every
/// recorded trace event is also spilled to its file (sessions come and
/// go via [`enable`]; the flight ring persists across them).
pub fn install_flight_recorder(r: FlightRecorder) {
    *flight_global().lock().unwrap() = Some(r);
    FLIGHT_ON.store(true, Ordering::SeqCst);
}

/// Remove and return the installed flight recorder, if any.
pub fn uninstall_flight_recorder() -> Option<FlightRecorder> {
    FLIGHT_ON.store(false, Ordering::SeqCst);
    flight_global().lock().unwrap().take()
}

fn flight_observe(ev: &TraceEvent) {
    if !FLIGHT_ON.load(Ordering::Relaxed) {
        return;
    }
    if let Some(r) = flight_global().lock().unwrap().as_mut() {
        // Spill errors must never take down the recording process; the
        // flight record is best-effort by design.
        let _ = r.record(ev);
    }
}

/// Parse a flight spill/dump file: validate the `"LPFR"` header, then
/// decode records while their CRCs hold, dropping a torn or corrupt
/// tail. A process killed mid-`write(2)` therefore still yields every
/// fully-written event.
///
/// # Errors
///
/// Unreadable file, bad magic, or unsupported version. Torn/corrupt
/// record tails are not errors — the valid prefix is returned.
pub fn read_flight(path: &Path) -> Result<Vec<TraceEvent>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    if bytes.len() < 6 || bytes[..4] != FLIGHT_MAGIC {
        return Err(format!(
            "{}: not a flight record (bad magic)",
            path.display()
        ));
    }
    let ver = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if ver != FLIGHT_VERSION {
        return Err(format!(
            "{}: unsupported flight version {ver}",
            path.display()
        ));
    }
    let mut out = Vec::new();
    let mut pos = 6usize;
    while pos + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let start = pos + 8;
        let Some(end) = start.checked_add(len).filter(|&e| e <= bytes.len()) else {
            break; // torn tail record
        };
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            break; // corruption: keep the valid prefix
        }
        let mut c = ByteCursor { b: payload, pos: 0 };
        match decode_event_at(&mut c) {
            Ok(ev) if c.pos == payload.len() => out.push(ev),
            _ => break,
        }
        pos = end;
    }
    Ok(out)
}

/// Write `events` as a standalone flight dump at `path`, in the same
/// checksummed format [`read_flight`] parses. Used by the supervisor to
/// preserve a dead worker's salvaged ring next to its diagnostics.
///
/// # Errors
///
/// I/O errors writing the file.
pub fn write_flight_dump(path: &Path, events: &[TraceEvent]) -> std::io::Result<()> {
    let mut out = flight_header().to_vec();
    for ev in events {
        let mut payload = Vec::new();
        encode_event(ev, &mut payload);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state is process-global; tests that enable it serialize
    /// through this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = locked();
        disable();
        let _ = drain();
        counter("t.disabled", 3);
        instant("test", "nope");
        let s = span("test", "also-nope");
        let d = s.finish();
        assert!(d <= Duration::from_secs(1));
        let data = drain();
        assert!(data.events.is_empty());
        assert!(data.counters.is_empty());
    }

    #[test]
    fn spans_counters_and_instants_roundtrip() {
        let _g = locked();
        enable(ClockMode::Real);
        {
            let mut s = span("test", "outer");
            s.arg("k", "v");
            instant_args("test", "mark", vec![("why", "because".into())]);
            counter("t.count", 2);
            counter("t.count", 3);
            let _ = s.finish();
        }
        disable();
        let data = drain();
        assert_eq!(data.events.len(), 2);
        // Ordinal order: the span opened before the instant.
        assert_eq!(data.events[0].name, "outer");
        assert_eq!(data.events[0].args, vec![("k", "v".to_string())]);
        assert!(matches!(data.events[0].kind, EventKind::Span { .. }));
        assert_eq!(data.events[1].name, "mark");
        assert!(matches!(data.events[1].kind, EventKind::Instant));
        assert_eq!(data.counters.get("t.count"), Some(&5));
        assert!(validate_chrome_trace(&data.to_chrome_json()).unwrap() >= 3);
    }

    #[test]
    fn reserved_ordinals_sort_deterministically() {
        let _g = locked();
        enable(ClockMode::Virtual);
        let base = reserve(4);
        // Record out of order, as racing workers would.
        for idx in [2u64, 0, 3, 1] {
            record_span_at(
                "test",
                format!("unit-{idx}"),
                base + idx,
                0,
                Duration::from_micros(7),
                Vec::new(),
            );
        }
        disable();
        let data = drain();
        let names: Vec<&str> = data.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["unit-0", "unit-1", "unit-2", "unit-3"]);
        // Virtual clock: export is a pure function of ordinals.
        let json = data.to_chrome_json();
        assert!(json.contains("\"ts\":0,\"dur\":5"));
        assert!(json.contains(&format!("\"ts\":{}", (base + 3) * 10)));
        assert!(!json.contains("\"tid\":1"));
    }

    #[test]
    fn ring_overflow_counts_drops() {
        let _g = locked();
        enable(ClockMode::Virtual);
        for _ in 0..(RING_CAPACITY + 10) {
            instant("test", "spam");
        }
        disable();
        let data = drain();
        assert_eq!(data.events.len(), RING_CAPACITY);
        assert_eq!(data.dropped, 10);
    }

    #[test]
    fn json_escaping_and_validation() {
        let _g = locked();
        enable(ClockMode::Virtual);
        instant_args(
            "test",
            "weird \"name\"\twith\nescapes\u{1}",
            vec![("path", "a\\b".into())],
        );
        disable();
        let data = drain();
        let json = data.to_chrome_json();
        assert_eq!(validate_chrome_trace(&json).unwrap(), 1);
        assert!(json.contains("weird \\\"name\\\"\\twith\\nescapes\\u0001"));
        assert!(json.contains("a\\\\b"));
    }

    #[test]
    fn validator_rejects_malformed_shapes() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":3}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        // Phase X without dur.
        assert!(validate_chrome_trace(
            "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":1,\"pid\":1,\"tid\":0}]}"
        )
        .is_err());
        assert_eq!(
            validate_chrome_trace(
                "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"i\",\"ts\":1,\"pid\":1,\"tid\":0}]}"
            ),
            Ok(1)
        );
        assert!(validate_chrome_trace("{\"traceEvents\":[]} trailing").is_err());
    }

    #[test]
    fn metrics_and_stats_render() {
        let _g = locked();
        enable(ClockMode::Virtual);
        counter("m.counter", 41);
        counter("m.counter", 1);
        let _ = span("mcat", "thing").finish();
        disable();
        let data = drain();
        let metrics = data.to_metrics_json();
        assert!(metrics.contains("\"m.counter\":42"));
        assert!(metrics.contains("\"mcat\":{\"count\":1,\"total_us\":5}"));
        assert!(metrics.contains("\"clock\":\"virtual\""));
        let stats = data.render_stats();
        assert!(stats.contains("m.counter"));
        assert!(stats.contains("mcat"));
    }

    #[test]
    fn reenable_resets_ordinals_and_buffers() {
        let _g = locked();
        enable(ClockMode::Virtual);
        instant("test", "first-session");
        enable(ClockMode::Virtual);
        instant("test", "second-session");
        disable();
        let data = drain();
        assert_eq!(data.events.len(), 1);
        assert_eq!(data.events[0].name, "second-session");
        assert_eq!(data.events[0].ordinal, 0);
    }

    #[test]
    fn worker_threads_fold_into_one_drain() {
        let _g = locked();
        enable(ClockMode::Virtual);
        let base = reserve(8);
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                scope.spawn(move || {
                    record_span_at(
                        "test",
                        format!("w{w}"),
                        base + w,
                        0,
                        Duration::from_micros(1),
                        Vec::new(),
                    );
                    counter("t.worker", 1);
                });
            }
        });
        disable();
        let data = drain();
        assert_eq!(data.events.len(), 4);
        assert_eq!(data.counters.get("t.worker"), Some(&4));
        // Virtual export never leaks real lane ids.
        assert!(!data.to_chrome_json().contains("\"tid\":2"));
    }

    #[test]
    fn json_writer_nests_escapes_and_places_commas() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "x/v1");
        w.field_u64("n", 7);
        w.field_f64("rate", 0.5, 3);
        w.field_bool("ok", true);
        w.begin_object_field("nested");
        w.field_str("quote", "a\"b\\c");
        w.end_object();
        w.begin_array_field("xs");
        w.value_u64(1);
        w.value_u64(2);
        w.value_str("three");
        w.end_array();
        w.field_raw("raw", "{\"inner\":1}");
        w.end_object();
        let doc = w.finish();
        assert_eq!(
            doc,
            "{\"schema\":\"x/v1\",\"n\":7,\"rate\":0.500,\"ok\":true,\
             \"nested\":{\"quote\":\"a\\\"b\\\\c\"},\"xs\":[1,2,\"three\"],\
             \"raw\":{\"inner\":1}}"
        );
        // The writer's output parses back with our own parser.
        parse_json(&doc).expect("writer output is valid JSON");
    }

    #[test]
    fn histogram_quantiles_stay_within_documented_bucket_error() {
        // Property test over a deterministic pseudo-random stream: every
        // quantile estimate must satisfy t <= r <= t + t/16 + 1 against
        // the exact sorted data.
        let mut h = Histogram::new();
        let mut values = Vec::new();
        let mut z = 0x1234_5678_9abc_def0u64;
        for i in 0..5000u64 {
            z = z
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Mix magnitudes: exact range, mid-range, and huge values.
            let v = match i % 4 {
                0 => z % 16,
                1 => z % 10_000,
                2 => z % 100_000_000,
                _ => z,
            };
            values.push(v);
            h.record(v);
        }
        values.sort_unstable();
        assert_eq!(h.count(), 5000);
        assert_eq!(h.max(), *values.last().unwrap());
        for q in [0.0, 0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
            let r = h.quantile(q);
            let rank = ((values.len() as f64) * q).ceil().max(1.0) as usize - 1;
            let t = values[rank.min(values.len() - 1)];
            assert!(r >= t, "q={q}: estimate {r} under-reports true {t}");
            let bound = t.saturating_add(t / 16).saturating_add(1);
            assert!(r <= bound, "q={q}: estimate {r} > {t} + 6.25% ({bound})");
        }
        // Exact below 16.
        let mut small = Histogram::new();
        for v in [0u64, 1, 3, 3, 7, 15] {
            small.record(v);
        }
        assert_eq!(small.quantile(0.5), 3);
        assert_eq!(small.quantile(1.0), 15);
        // Merge is a sum of observations.
        let mut merged = Histogram::new();
        merged.merge(&h);
        merged.merge(&small);
        assert_eq!(merged.count(), h.count() + small.count());
        assert_eq!(merged.max(), h.max().max(small.max()));
    }

    #[test]
    fn histogram_set_caps_distinct_keys() {
        let mut s = HistogramSet::new(2);
        s.record("a", 1);
        s.record("b", 2);
        s.record("c", 3); // over the cap: folds into "other"
        s.record("a", 4);
        let keys: Vec<&str> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "b", "other"]);
        assert_eq!(s.iter().find(|(k, _)| *k == "a").unwrap().1.count(), 2);
    }

    #[test]
    fn wire_trace_roundtrips_and_rejects_garbage() {
        let _g = locked();
        enable(ClockMode::Virtual);
        let mut sp = span("serve.worker", "request");
        sp.arg("rid", "0000000000000001");
        drop(sp);
        instant("vm", "trap");
        counter("vm.insts", 42);
        disable();
        let data = drain();
        let bytes = encode_wire_trace(&data, 4242);
        let wt = decode_wire_trace(&bytes).expect("roundtrip");
        assert_eq!(wt.lane.pid, 4242);
        assert_eq!(wt.lane.events.len(), 2);
        assert_eq!(wt.lane.events[0].name, "request");
        assert_eq!(wt.lane.events[0].cat, "serve.worker");
        assert_eq!(
            wt.lane.events[0].args,
            vec![("rid", "0000000000000001".to_string())]
        );
        assert!(wt.counters.contains(&("vm.insts", 42)));
        // Total decoding: truncation at every offset errors, never panics.
        for cut in 0..bytes.len() {
            assert!(decode_wire_trace(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(decode_wire_trace(&bad).is_err());
    }

    #[test]
    fn absorbed_foreign_lanes_export_as_worker_pids() {
        let _g = locked();
        // "Worker" session: record two events, ship them.
        enable(ClockMode::Virtual);
        let _ = span("serve.worker", "request").finish();
        instant("vm", "ret");
        disable();
        let shipped = encode_wire_trace(&drain(), 777);

        // "Daemon" session: local span, then absorb the worker buffer.
        enable(ClockMode::Virtual);
        let _ = span("serve", "dispatch").finish();
        let n = absorb_foreign(&shipped, 0).expect("absorb");
        assert_eq!(n, 2);
        disable();
        let data = drain();
        assert_eq!(data.events.len(), 1);
        assert_eq!(data.foreign.len(), 1);
        assert_eq!(data.foreign[0].pid, 777);
        // Foreign ordinals were re-based after the local span's ordinal.
        assert!(data.foreign[0].events[0].ordinal > data.events[0].ordinal);
        let json = data.to_chrome_json();
        validate_chrome_trace(&json).expect("merged trace schema");
        // Virtual clock: daemon lane pid 1, worker lane pid 2, labeled.
        assert!(json.contains("\"pid\":1"), "{json}");
        assert!(json.contains("\"pid\":2"), "{json}");
        assert!(json.contains("\"name\":\"process_name\""), "{json}");
        assert!(json.contains("\"name\":\"worker\""), "{json}");
        // Worker counters folded into the session counters.
        // (vm.insts was not recorded here, but spans totals include the
        // foreign request span.)
        let totals = data.span_totals();
        assert_eq!(totals.get("serve.worker"), Some(&(1, 5)));
        // Byte determinism: same inputs, same merged bytes.
        enable(ClockMode::Virtual);
        let _ = span("serve", "dispatch").finish();
        absorb_foreign(&shipped, 0).unwrap();
        disable();
        assert_eq!(drain().to_chrome_json(), json);
    }

    #[test]
    fn flight_recorder_spills_salvageable_checksummed_events() {
        let _g = locked();
        let dir = std::env::temp_dir().join(format!("lpat-flight-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spill = dir.join("slot-0.spill");
        install_flight_recorder(FlightRecorder::create(&spill, 8).unwrap());
        enable(ClockMode::Virtual);
        for i in 0..20 {
            instant_args(
                "serve.worker",
                format!("ev-{i}"),
                vec![("i", i.to_string())],
            );
        }
        disable();
        let _ = drain();
        uninstall_flight_recorder();
        let events = read_flight(&spill).expect("salvage");
        // The spill holds at least the ring's worth of recent events and
        // ends with the last one recorded.
        assert!(events.len() >= 8, "only {} events salvaged", events.len());
        assert_eq!(events.last().unwrap().name, "ev-19");
        // A torn tail (partial record) is dropped, the prefix survives.
        let mut bytes = std::fs::read(&spill).unwrap();
        let clean = events.len();
        bytes.extend_from_slice(&[9, 0, 0, 0, 1, 2, 3, 4, 0xAB]); // bogus half record
        let torn = dir.join("torn.spill");
        std::fs::write(&torn, &bytes).unwrap();
        assert_eq!(read_flight(&torn).unwrap().len(), clean);
        // Corrupting a payload byte truncates the salvage at that record.
        let mut corrupt = std::fs::read(&spill).unwrap();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0xFF;
        let cpath = dir.join("corrupt.spill");
        std::fs::write(&cpath, &corrupt).unwrap();
        let salvaged = read_flight(&cpath).unwrap();
        assert!(salvaged.len() < clean, "corruption not detected");
        // A dump written from salvaged events reads back identically.
        let dump = dir.join("crash.flight");
        write_flight_dump(&dump, &events).unwrap();
        let reread = read_flight(&dump).unwrap();
        assert_eq!(reread.len(), events.len());
        assert_eq!(reread.last().unwrap().name, "ev-19");
        // Bad magic is an error, not an empty success.
        let junk = dir.join("junk.spill");
        std::fs::write(&junk, b"not a flight file").unwrap();
        assert!(read_flight(&junk).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
