//! Modules: translation units of the representation.
//!
//! A module owns the type context, the constant pool, global variables, and
//! functions. Global variable and function definitions define a *symbol
//! providing the address* of the object, not the object itself (paper §2.3):
//! the value of `@G` in operand position is a pointer constant.

use std::collections::HashMap;

use crate::constant::{Const, ConstId, ConstPool, FuncId, GlobalId};
use crate::function::{Function, Linkage};
use crate::inst::{Inst, Value};
use crate::types::{Type, TypeCtx, TypeId};

/// A global variable definition or declaration.
#[derive(Clone, Debug)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Type of the value stored in the global (not the pointer).
    pub value_ty: TypeId,
    /// Pointer-to-`value_ty`, pre-interned (the type of `@name`).
    pub addr_ty: TypeId,
    /// Initializer; `None` makes this an external declaration.
    pub init: Option<ConstId>,
    /// Whether the memory is immutable (`constant` vs `global`).
    pub is_const: bool,
    /// Linkage.
    pub linkage: Linkage,
}

/// Pre-resolved address types of a module's functions and globals, indexed
/// by raw id (see [`Module::addr_type_table`]).
#[derive(Clone, Debug)]
pub struct AddrTypeTable {
    /// `func_addr_tys[f.index()]` is the type of `FuncAddr(f)`.
    pub func_addr_tys: Vec<TypeId>,
    /// `global_addr_tys[g.index()]` is the type of `GlobalAddr(g)`.
    pub global_addr_tys: Vec<TypeId>,
}

impl AddrTypeTable {
    /// The type of constant `c`, like [`Module::const_type`] but against
    /// the snapshot instead of the module.
    pub fn const_type(&self, types: &TypeCtx, consts: &ConstPool, c: ConstId) -> TypeId {
        match consts.get(c) {
            Const::GlobalAddr(g) => self.global_addr_tys[g.index()],
            Const::FuncAddr(f) => self.func_addr_tys[f.index()],
            _ => consts.type_of(types, c),
        }
    }

    /// The type of operand `v` inside `f`, like [`Module::value_type`] but
    /// against the snapshot.
    pub fn value_type(
        &self,
        types: &TypeCtx,
        consts: &ConstPool,
        f: &Function,
        v: Value,
    ) -> TypeId {
        match v {
            Value::Inst(i) => f.inst_ty(i),
            Value::Arg(n) => f.params()[n as usize],
            Value::Const(c) => self.const_type(types, consts, c),
        }
    }
}

impl Global {
    /// Whether this is a declaration (no initializer).
    pub fn is_declaration(&self) -> bool {
        self.init.is_none()
    }
}

/// A translation unit: types, constants, globals, and functions.
///
/// # Examples
///
/// ```
/// use lpat_core::{Module, Linkage, inst::Value};
///
/// let mut m = Module::new("demo");
/// let i32t = m.types.i32();
/// let f = m.add_function("double_it", &[i32t], i32t, false, Linkage::External);
/// let mut b = m.builder(f);
/// let entry = b.block();
/// let two = b.iconst32(2);
/// let x = b.mul(Value::Arg(0), two);
/// b.ret(Some(x));
/// assert!(m.verify().is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct Module {
    /// Module identifier (usually the source file name).
    pub name: String,
    /// The type context.
    pub types: TypeCtx,
    /// The constant pool.
    pub consts: ConstPool,
    globals: Vec<Global>,
    funcs: Vec<Function>,
    global_names: HashMap<String, GlobalId>,
    func_names: HashMap<String, FuncId>,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: &str) -> Module {
        Module {
            name: name.to_string(),
            types: TypeCtx::new(),
            consts: ConstPool::new(),
            globals: Vec::new(),
            funcs: Vec::new(),
            global_names: HashMap::new(),
            func_names: HashMap::new(),
        }
    }

    // ---- globals ---------------------------------------------------------

    /// Add a global variable. `init == None` declares an external global.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken by another global.
    pub fn add_global(
        &mut self,
        name: &str,
        value_ty: TypeId,
        init: Option<ConstId>,
        is_const: bool,
        linkage: Linkage,
    ) -> GlobalId {
        assert!(
            !self.global_names.contains_key(name),
            "duplicate global {name}"
        );
        let addr_ty = self.types.ptr(value_ty);
        let id = GlobalId(self.globals.len() as u32);
        self.globals.push(Global {
            name: name.to_string(),
            value_ty,
            addr_ty,
            init,
            is_const,
            linkage,
        });
        self.global_names.insert(name.to_string(), id);
        id
    }

    /// Look up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.global_names.get(name).copied()
    }

    /// The global record for `id`.
    #[inline]
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.0 as usize]
    }

    /// Mutable global record.
    #[inline]
    pub fn global_mut(&mut self, id: GlobalId) -> &mut Global {
        &mut self.globals[id.0 as usize]
    }

    /// Iterate over `(GlobalId, &Global)`.
    pub fn globals(&self) -> impl Iterator<Item = (GlobalId, &Global)> {
        self.globals
            .iter()
            .enumerate()
            .map(|(i, g)| (GlobalId(i as u32), g))
    }

    /// Number of globals.
    pub fn num_globals(&self) -> usize {
        self.globals.len()
    }

    /// Remove globals not satisfying `keep`, remapping all references.
    ///
    /// Returns the number of globals removed. Used by dead-global
    /// elimination.
    pub fn retain_globals(&mut self, keep: impl Fn(GlobalId) -> bool) -> usize {
        let mut remap: Vec<Option<GlobalId>> = Vec::with_capacity(self.globals.len());
        let mut kept = Vec::new();
        for (i, g) in self.globals.drain(..).enumerate() {
            if keep(GlobalId(i as u32)) {
                remap.push(Some(GlobalId(kept.len() as u32)));
                kept.push(g);
            } else {
                remap.push(None);
            }
        }
        let removed = remap.iter().filter(|r| r.is_none()).count();
        self.globals = kept;
        self.global_names = self
            .globals
            .iter()
            .enumerate()
            .map(|(i, g)| (g.name.clone(), GlobalId(i as u32)))
            .collect();
        if removed > 0 {
            self.remap_const_refs(
                &remap,
                &(0..self.funcs.len())
                    .map(|i| Some(FuncId(i as u32)))
                    .collect::<Vec<_>>(),
            );
        }
        removed
    }

    /// Remove functions not satisfying `keep`, remapping all references.
    ///
    /// Returns the number removed.
    pub fn retain_functions(&mut self, keep: impl Fn(FuncId) -> bool) -> usize {
        let mut remap: Vec<Option<FuncId>> = Vec::with_capacity(self.funcs.len());
        let mut kept = Vec::new();
        for (i, f) in self.funcs.drain(..).enumerate() {
            if keep(FuncId(i as u32)) {
                remap.push(Some(FuncId(kept.len() as u32)));
                kept.push(f);
            } else {
                remap.push(None);
            }
        }
        let removed = remap.iter().filter(|r| r.is_none()).count();
        self.funcs = kept;
        self.func_names = self
            .funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), FuncId(i as u32)))
            .collect();
        if removed > 0 {
            let gremap: Vec<Option<GlobalId>> = (0..self.globals.len())
                .map(|i| Some(GlobalId(i as u32)))
                .collect();
            self.remap_const_refs(&gremap, &remap);
        }
        removed
    }

    /// Rewrite `GlobalAddr`/`FuncAddr` constants through the given remaps.
    ///
    /// Constants referencing removed symbols are replaced by `Undef` of
    /// their address type — the caller guarantees no live code still uses
    /// them.
    fn remap_const_refs(&mut self, gmap: &[Option<GlobalId>], fmap: &[Option<FuncId>]) {
        // The pool interns by structure, so rewrite by rebuilding: walk all
        // constants, compute replacements, then patch instruction operands
        // and initializers via a ConstId -> ConstId map.
        let mut cmap: HashMap<ConstId, ConstId> = HashMap::new();
        let ids: Vec<ConstId> = self.consts.iter().map(|(i, _)| i).collect();
        for id in ids {
            let replacement = match self.consts.get(id).clone() {
                Const::GlobalAddr(g) => match gmap.get(g.index()).copied().flatten() {
                    Some(ng) if ng != g => Some(self.consts.global_addr(ng)),
                    Some(_) => None,
                    None => {
                        let ty = self.types.ptr(self.types.i8());
                        Some(self.consts.undef(ty))
                    }
                },
                Const::FuncAddr(f) => match fmap.get(f.index()).copied().flatten() {
                    Some(nf) if nf != f => Some(self.consts.func_addr(nf)),
                    Some(_) => None,
                    None => {
                        let ty = self.types.ptr(self.types.i8());
                        Some(self.consts.undef(ty))
                    }
                },
                _ => None,
            };
            if let Some(r) = replacement {
                cmap.insert(id, r);
            }
        }
        // Aggregates containing remapped ids must be rewritten too.
        let ids: Vec<ConstId> = self.consts.iter().map(|(i, _)| i).collect();
        for id in ids {
            match self.consts.get(id).clone() {
                Const::Array { ty, elems } if elems.iter().any(|e| cmap.contains_key(e)) => {
                    let new: Vec<ConstId> =
                        elems.iter().map(|e| *cmap.get(e).unwrap_or(e)).collect();
                    let nid = self.consts.array(ty, new);
                    cmap.insert(id, nid);
                }
                Const::Struct { ty, fields } if fields.iter().any(|e| cmap.contains_key(e)) => {
                    let new: Vec<ConstId> =
                        fields.iter().map(|e| *cmap.get(e).unwrap_or(e)).collect();
                    let nid = self.consts.struct_(ty, new);
                    cmap.insert(id, nid);
                }
                _ => {}
            }
        }
        if cmap.is_empty() {
            return;
        }
        for f in &mut self.funcs {
            let n = f.num_inst_slots();
            for i in 0..n {
                let iid = crate::inst::InstId(i as u32);
                f.inst_mut(iid).map_operands(|v| match v {
                    Value::Const(c) => Value::Const(*cmap.get(&c).unwrap_or(&c)),
                    other => other,
                });
                // Switch case constants can also be remapped (they are
                // scalar ints, so in practice never are).
            }
        }
        for g in &mut self.globals {
            if let Some(init) = g.init {
                if let Some(&n) = cmap.get(&init) {
                    g.init = Some(n);
                }
            }
        }
    }

    // ---- functions --------------------------------------------------------

    /// Add a function with the given signature. The function starts as a
    /// declaration; add blocks (e.g. via [`Module::builder`]) to define it.
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn add_function(
        &mut self,
        name: &str,
        params: &[TypeId],
        ret: TypeId,
        varargs: bool,
        linkage: Linkage,
    ) -> FuncId {
        assert!(
            !self.func_names.contains_key(name),
            "duplicate function {name}"
        );
        let ty = self.types.func(ret, params.to_vec(), varargs);
        let addr_ty = self.types.ptr(ty);
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(Function::new(
            name.to_string(),
            ty,
            addr_ty,
            params.to_vec(),
            ret,
            varargs,
            linkage,
        ));
        self.func_names.insert(name.to_string(), id);
        id
    }

    /// Look up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.func_names.get(name).copied()
    }

    /// The function record for `id`.
    #[inline]
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.0 as usize]
    }

    /// Mutable function record.
    #[inline]
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.0 as usize]
    }

    /// Iterate over `(FuncId, &Function)`.
    pub fn funcs(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// All function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> {
        (0..self.funcs.len() as u32).map(FuncId)
    }

    /// Number of functions.
    pub fn num_funcs(&self) -> usize {
        self.funcs.len()
    }

    /// Rename a function, keeping the name index consistent.
    ///
    /// # Panics
    ///
    /// Panics if the new name is taken.
    pub fn rename_function(&mut self, id: FuncId, new_name: &str) {
        assert!(!self.func_names.contains_key(new_name));
        let old = std::mem::replace(&mut self.funcs[id.0 as usize].name, new_name.to_string());
        self.func_names.remove(&old);
        self.func_names.insert(new_name.to_string(), id);
    }

    // ---- typing -----------------------------------------------------------

    /// The type of constant `c`, including global/function addresses.
    pub fn const_type(&self, c: ConstId) -> TypeId {
        match self.consts.get(c) {
            Const::GlobalAddr(g) => self.global(*g).addr_ty,
            Const::FuncAddr(f) => self.func(*f).addr_type(),
            _ => self.consts.type_of(&self.types, c),
        }
    }

    /// The type of `v` as an operand inside function `f`.
    pub fn value_type(&self, f: &Function, v: Value) -> TypeId {
        match v {
            Value::Inst(i) => f.inst_ty(i),
            Value::Arg(n) => f.params()[n as usize],
            Value::Const(c) => self.const_type(c),
        }
    }

    /// Snapshot the address types of every function and global.
    ///
    /// This is the only cross-function state the intra-procedural passes
    /// read (through [`Module::value_type`] on `GlobalAddr`/`FuncAddr`
    /// constants). Signatures are immutable while function passes run, so
    /// one snapshot stays valid for a whole function-pass stage, letting
    /// each function be optimized against just (types, consts, body).
    pub fn addr_type_table(&self) -> AddrTypeTable {
        AddrTypeTable {
            func_addr_tys: self.funcs.iter().map(|f| f.addr_type()).collect(),
            global_addr_tys: self.globals.iter().map(|g| g.addr_ty).collect(),
        }
    }

    /// Split the module into disjoint mutable borrows of the type context,
    /// the constant pool, and the function table — the shape the parallel
    /// function-pass executor needs (each worker gets its own pool clones
    /// plus exclusive access to a subset of the functions).
    pub fn split_mut(&mut self) -> (&mut TypeCtx, &mut ConstPool, &mut [Function]) {
        (&mut self.types, &mut self.consts, &mut self.funcs)
    }

    /// Resolve the element type a `getelementptr` lands on, without
    /// interning the final pointer type (so `&self` suffices).
    ///
    /// # Errors
    ///
    /// Returns a message when the index list does not match the pointee's
    /// structure.
    pub fn gep_pointee(
        &self,
        f: &Function,
        base_ptr_ty: TypeId,
        indices: &[Value],
    ) -> Result<TypeId, String> {
        let mut cur = self
            .types
            .pointee(base_ptr_ty)
            .ok_or_else(|| "getelementptr base is not a pointer".to_string())?;
        let mut it = indices.iter();
        // First index steps over the pointer itself; any integer type.
        match it.next() {
            None => return Ok(cur),
            Some(&idx) => {
                let t = self.value_type(f, idx);
                if !self.types.is_int(t) {
                    return Err("first getelementptr index must be an integer".into());
                }
            }
        }
        for &idx in it {
            match self.types.ty(cur).clone() {
                Type::Struct { fields, .. } => {
                    let c = match idx {
                        Value::Const(c) => c,
                        _ => return Err("struct index must be a constant".into()),
                    };
                    let (_, v) = self
                        .consts
                        .as_int(c)
                        .ok_or_else(|| "struct index must be an integer constant".to_string())?;
                    let fidx = v as usize;
                    if fidx >= fields.len() {
                        return Err(format!(
                            "struct index {fidx} out of range ({} fields)",
                            fields.len()
                        ));
                    }
                    cur = fields[fidx];
                }
                Type::Array { elem, .. } => {
                    let t = self.value_type(f, idx);
                    if !self.types.is_int(t) {
                        return Err("array index must be an integer".into());
                    }
                    cur = elem;
                }
                _ => {
                    return Err(format!(
                        "cannot index into non-aggregate type {}",
                        self.types.display(cur)
                    ))
                }
            }
        }
        Ok(cur)
    }

    /// Infer the result type of `inst` were it inserted into `f`.
    ///
    /// Used by the builder (authoritatively) and the verifier (as a
    /// cross-check). `Phi` and `VaArg` cannot be inferred from operands and
    /// return an error; their type is declared at creation.
    pub fn infer_inst_type(&mut self, f: &Function, inst: &Inst) -> Result<TypeId, String> {
        Ok(match inst {
            Inst::Ret(_)
            | Inst::Br(_)
            | Inst::CondBr { .. }
            | Inst::Switch { .. }
            | Inst::Unwind
            | Inst::Unreachable
            | Inst::Free(_)
            | Inst::Store { .. } => self.types.void(),
            Inst::Bin { lhs, .. } => self.value_type(f, *lhs),
            Inst::Cmp { .. } => self.types.bool_(),
            Inst::Malloc { elem_ty, .. } | Inst::Alloca { elem_ty, .. } => self.types.ptr(*elem_ty),
            Inst::Load { ptr } => {
                let pt = self.value_type(f, *ptr);
                self.types
                    .pointee(pt)
                    .ok_or_else(|| "load from non-pointer".to_string())?
            }
            Inst::Gep { ptr, indices } => {
                let base = self.value_type(f, *ptr);
                let elem = self.gep_pointee(f, base, indices)?;
                self.types.ptr(elem)
            }
            Inst::Call { callee, .. } | Inst::Invoke { callee, .. } => {
                let ct = self.value_type(f, *callee);
                let fnty = self
                    .types
                    .pointee(ct)
                    .ok_or_else(|| "call through non-pointer".to_string())?;
                self.types
                    .func_ret(fnty)
                    .ok_or_else(|| "call through pointer to non-function".to_string())?
            }
            Inst::Cast { to, .. } => *to,
            Inst::Phi { .. } => return Err("phi type must be declared".into()),
            Inst::VaArg { ty } => *ty,
        })
    }

    /// Count linked instructions across all functions (a cheap size
    /// metric used in reports).
    pub fn total_insts(&self) -> usize {
        self.funcs.iter().map(|f| f.num_insts()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BinOp;

    #[test]
    fn globals_and_functions_by_name() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let init = m.consts.i32(7);
        let g = m.add_global("G", i32t, Some(init), false, Linkage::External);
        let f = m.add_function("f", &[i32t], i32t, false, Linkage::Internal);
        assert_eq!(m.global_by_name("G"), Some(g));
        assert_eq!(m.func_by_name("f"), Some(f));
        assert_eq!(m.global(g).value_ty, i32t);
        assert_eq!(m.types.pointee(m.global(g).addr_ty), Some(i32t));
        assert_eq!(m.func(f).ret_type(), i32t);
    }

    #[test]
    fn value_types() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fid = m.add_function("f", &[i32t], i32t, false, Linkage::External);
        let c = m.consts.f64(1.0);
        let g = m.add_global("G", i32t, None, false, Linkage::External);
        let ga = m.consts.global_addr(g);
        let fa = m.consts.func_addr(fid);
        let f = m.func(fid);
        assert_eq!(m.value_type(f, Value::Arg(0)), i32t);
        assert_eq!(m.value_type(f, Value::Const(c)), m.types.f64());
        assert_eq!(m.types.pointee(m.const_type(ga)), Some(i32t));
        assert!(m.types.is_ptr(m.const_type(fa)));
    }

    #[test]
    fn infer_types() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fid = m.add_function("f", &[i32t], i32t, false, Linkage::External);
        let f = m.func(fid).clone();
        let t = m
            .infer_inst_type(
                &f,
                &Inst::Bin {
                    op: BinOp::Add,
                    lhs: Value::Arg(0),
                    rhs: Value::Arg(0),
                },
            )
            .unwrap();
        assert_eq!(t, i32t);
        let t = m
            .infer_inst_type(
                &f,
                &Inst::Alloca {
                    elem_ty: i32t,
                    count: None,
                },
            )
            .unwrap();
        assert_eq!(m.types.pointee(t), Some(i32t));
    }

    #[test]
    fn gep_resolution() {
        let mut m = Module::new("m");
        // %xty = { int, [4 x float] }
        let arr = m.types.array(m.types.f32(), 4);
        let xty = m.types.struct_lit(vec![m.types.i32(), arr]);
        let pxty = m.types.ptr(xty);
        let fid = m.add_function(
            "f",
            &[pxty, m.types.i64()],
            m.types.void(),
            false,
            Linkage::External,
        );
        let zero = m.consts.i64(0);
        let one = m.consts.u8(1);
        let f = m.func(fid).clone();
        // X[0].field1[i] : float
        let elem = m
            .gep_pointee(
                &f,
                pxty,
                &[Value::Const(zero), Value::Const(one), Value::Arg(1)],
            )
            .unwrap();
        assert_eq!(elem, m.types.f32());
        // struct index must be constant
        assert!(m
            .gep_pointee(&f, pxty, &[Value::Const(zero), Value::Arg(1)])
            .is_err());
    }

    #[test]
    fn retain_functions_remaps_addresses() {
        let mut m = Module::new("m");
        let v = m.types.void();
        let a = m.add_function("a", &[], v, false, Linkage::Internal);
        let b = m.add_function("b", &[], v, false, Linkage::External);
        let c = m.add_function("c", &[], v, false, Linkage::External);
        let fb = m.consts.func_addr(b);
        // c calls b by address; after removing a, the operand must still
        // denote b under its new id.
        let blk = m.func_mut(c).add_block();
        m.func_mut(c).append_inst(
            blk,
            Inst::Call {
                callee: Value::Const(fb),
                args: vec![],
            },
            v,
        );
        m.func_mut(c).append_inst(blk, Inst::Ret(None), v);
        let removed = m.retain_functions(|f| f != a);
        assert_eq!(removed, 1);
        assert_eq!(m.num_funcs(), 2);
        let nb = m.func_by_name("b").unwrap();
        let nc = m.func_by_name("c").unwrap();
        let call = m.func(nc).inst(crate::inst::InstId(0)).clone();
        match call {
            Inst::Call {
                callee: Value::Const(cc),
                ..
            } => match m.consts.get(cc) {
                Const::FuncAddr(f) => assert_eq!(*f, nb),
                other => panic!("expected FuncAddr, got {other:?}"),
            },
            other => panic!("expected call, got {other:?}"),
        }
    }
}
