//! The module verifier.
//!
//! Checks the structural and typing invariants of the representation: every
//! block ends in exactly one terminator, all operations obey the strict type
//! rules (paper §2.2 — "type mismatches are useful for detecting optimizer
//! bugs"), φ-nodes agree with the CFG, and SSA dominance holds (every use of
//! a register is dominated by its definition).

use crate::constant::FuncId;
use crate::function::Function;
use crate::inst::{BlockId, Inst, InstId, Value};
use crate::module::Module;
use crate::types::Type;

/// A verifier diagnostic, with the function and instruction it refers to
/// when applicable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function containing the fault, if any.
    pub func: Option<String>,
    /// Offending instruction, if any.
    pub inst: Option<InstId>,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.func, &self.inst) {
            (Some(fun), Some(i)) => write!(f, "in @{fun} at %t{}: {}", i.index(), self.message),
            (Some(fun), None) => write!(f, "in @{fun}: {}", self.message),
            _ => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Immediate-dominator tree for the blocks of one function, computed with
/// the Cooper–Harvey–Kennedy iterative algorithm.
///
/// Exposed from `core` because the verifier needs it; richer dominance
/// utilities (frontiers, tree children) live in `lpat-analysis`.
#[derive(Clone, Debug)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of block `b`; the entry is its
    /// own idom. `None` for unreachable blocks.
    pub idom: Vec<Option<BlockId>>,
    /// Reverse postorder of reachable blocks.
    pub rpo: Vec<BlockId>,
    /// Position of each block in `rpo` (`usize::MAX` if unreachable).
    pub rpo_pos: Vec<usize>,
}

impl Dominators {
    /// Compute dominators for `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is a declaration.
    pub fn compute(f: &Function) -> Dominators {
        let n = f.num_blocks();
        assert!(n > 0, "cannot compute dominators of a declaration");
        // Postorder DFS from entry.
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unvisited, 1 open, 2 done
        let mut stack: Vec<(BlockId, Vec<BlockId>, usize)> = Vec::new();
        stack.push((f.entry(), f.successors(f.entry()), 0));
        state[f.entry().index()] = 1;
        while let Some((b, succs, idx)) = stack.last_mut() {
            if *idx < succs.len() {
                let s = succs[*idx];
                *idx += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    let ss = f.successors(s);
                    stack.push((s, ss, 0));
                }
            } else {
                state[b.index()] = 2;
                post.push(*b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.iter().rev().copied().collect();
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_pos[b.index()] = i;
        }
        let preds = f.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[f.entry().index()] = Some(f.entry());
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_pos, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom, rpo, rpo_pos }
    }

    /// Whether block `a` dominates block `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_pos[b.index()] == usize::MAX {
            // Everything vacuously dominates unreachable code.
            return true;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(i) if i != cur => cur = i,
                _ => return false,
            }
        }
    }

    /// Whether block `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_pos[b.index()] != usize::MAX
    }
}

fn intersect(
    idom: &[Option<BlockId>],
    rpo_pos: &[usize],
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while rpo_pos[a.index()] > rpo_pos[b.index()] {
            a = idom[a.index()].expect("processed block has idom");
        }
        while rpo_pos[b.index()] > rpo_pos[a.index()] {
            b = idom[b.index()].expect("processed block has idom");
        }
    }
    a
}

impl Module {
    /// Verify the whole module.
    ///
    /// # Errors
    ///
    /// Returns every diagnostic found (it does not stop at the first).
    pub fn verify(&self) -> Result<(), Vec<VerifyError>> {
        let mut errs = Vec::new();
        for (fid, f) in self.funcs() {
            if f.is_declaration() {
                continue;
            }
            self.verify_func(fid, &mut errs);
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    fn err(errs: &mut Vec<VerifyError>, f: &Function, inst: Option<InstId>, msg: String) {
        errs.push(VerifyError {
            func: Some(f.name.clone()),
            inst,
            message: msg,
        });
    }

    fn verify_func(&self, fid: FuncId, errs: &mut Vec<VerifyError>) {
        let f = self.func(fid);
        // 1. Block structure: non-empty, exactly one trailing terminator.
        for b in f.block_ids() {
            let insts = f.block_insts(b);
            if insts.is_empty() {
                Self::err(errs, f, None, format!("block bb{} is empty", b.index()));
                continue;
            }
            for (pos, &i) in insts.iter().enumerate() {
                let is_last = pos + 1 == insts.len();
                if f.inst(i).is_terminator() != is_last {
                    Self::err(
                        errs,
                        f,
                        Some(i),
                        if is_last {
                            format!("block bb{} does not end in a terminator", b.index())
                        } else {
                            format!("terminator in the middle of bb{}", b.index())
                        },
                    );
                }
            }
        }
        if !errs.is_empty() {
            // Without well-formed blocks the CFG checks below would panic.
            return;
        }

        let doms = Dominators::compute(f);
        let preds = f.predecessors();
        let inst_blocks = f.inst_blocks();

        // Map from linked InstId -> position within its block, for
        // same-block dominance.
        let mut pos_in_block = vec![usize::MAX; f.num_inst_slots()];
        for b in f.block_ids() {
            for (p, &i) in f.block_insts(b).iter().enumerate() {
                pos_in_block[i.index()] = p;
            }
        }

        for b in f.block_ids() {
            for (my_pos, &iid) in f.block_insts(b).to_vec().iter().enumerate() {
                let inst = f.inst(iid);
                // Range-check operands first; type checking would index out
                // of bounds on dangling references.
                let mut in_range = true;
                inst.for_each_operand(|v| match v {
                    Value::Inst(d) if d.index() >= f.num_inst_slots() => in_range = false,
                    Value::Arg(n) if n as usize >= f.num_params() => in_range = false,
                    _ => {}
                });
                if !in_range {
                    Self::err(errs, f, Some(iid), "operand out of range".into());
                    continue;
                }
                self.verify_inst_types(f, b, iid, inst, errs);
                // Successor sanity.
                for s in inst.successors() {
                    if s.index() >= f.num_blocks() {
                        Self::err(
                            errs,
                            f,
                            Some(iid),
                            format!("branch to missing bb{}", s.index()),
                        );
                    }
                }
                // SSA dominance for operands.
                let mut check_use = |v: Value, use_block: BlockId, use_pos: usize| {
                    if let Value::Inst(d) = v {
                        if d.index() >= f.num_inst_slots() {
                            Self::err(
                                errs,
                                f,
                                Some(iid),
                                format!("use of missing %t{}", d.index()),
                            );
                            return;
                        }
                        let db = match inst_blocks[d.index()] {
                            Some(db) => db,
                            None => {
                                Self::err(
                                    errs,
                                    f,
                                    Some(iid),
                                    format!("use of unlinked instruction %t{}", d.index()),
                                );
                                return;
                            }
                        };
                        // A use at `usize::MAX` means "at the end of the
                        // block" (φ-operands are used on the incoming edge).
                        let ok = if db == use_block {
                            pos_in_block[d.index()] < use_pos
                        } else {
                            doms.dominates(db, use_block)
                        };
                        if !ok && doms.is_reachable(use_block) {
                            Self::err(
                                errs,
                                f,
                                Some(iid),
                                format!("definition %t{} does not dominate this use", d.index()),
                            );
                        }
                    }
                };
                if let Inst::Phi { incoming } = inst {
                    // φ operands are "used" at the end of the incoming edge.
                    for (v, pb) in incoming {
                        check_use(*v, *pb, usize::MAX);
                    }
                    // Incoming blocks must be exactly the CFG predecessors.
                    let mut have: Vec<BlockId> = incoming.iter().map(|(_, b)| *b).collect();
                    let mut want = preds[b.index()].clone();
                    have.sort();
                    want.sort();
                    if have != want && doms.is_reachable(b) {
                        Self::err(
                            errs,
                            f,
                            Some(iid),
                            format!(
                                "phi incoming blocks {have:?} do not match predecessors {want:?}"
                            ),
                        );
                    }
                } else {
                    inst.for_each_operand(|v| check_use(v, b, my_pos));
                }
            }
        }
    }

    fn verify_inst_types(
        &self,
        f: &Function,
        _b: BlockId,
        iid: InstId,
        inst: &Inst,
        errs: &mut Vec<VerifyError>,
    ) {
        let vt = |v: Value| self.value_type(f, v);
        let mut fail = |msg: String| Self::err(errs, f, Some(iid), msg);
        match inst {
            Inst::Ret(v) => {
                let want = f.ret_type();
                match v {
                    None => {
                        if self.types.ty(want) != &Type::Void {
                            fail("ret void in non-void function".into());
                        }
                    }
                    Some(v) => {
                        if vt(*v) != want {
                            fail(format!(
                                "ret type {} != function return type {}",
                                self.types.display(vt(*v)),
                                self.types.display(want)
                            ));
                        }
                    }
                }
            }
            Inst::Br(_) | Inst::Unwind | Inst::Unreachable => {}
            Inst::CondBr { cond, .. } => {
                if vt(*cond) != self.types.bool_() {
                    fail("conditional branch on non-bool".into());
                }
            }
            Inst::Switch { val, cases, .. } => {
                let t = vt(*val);
                if !self.types.is_int(t) {
                    fail("switch on non-integer".into());
                }
                for (c, _) in cases {
                    match self.consts.as_int(*c) {
                        Some((k, _)) if Some(k) == self.types.int_kind(t) => {}
                        _ => fail("switch case type mismatch".into()),
                    }
                }
            }
            Inst::Bin { op, lhs, rhs } => {
                let lt = vt(*lhs);
                let rt = vt(*rhs);
                if lt != rt {
                    fail(format!(
                        "{} operand types differ: {} vs {}",
                        op.name(),
                        self.types.display(lt),
                        self.types.display(rt)
                    ));
                } else if self.types.is_float(lt) {
                    if !op.allows_float() {
                        fail(format!("{} on floating point", op.name()));
                    }
                } else if self.types.ty(lt) == &Type::Bool {
                    if !op.allows_bool() {
                        fail(format!("{} on bool", op.name()));
                    }
                } else if !self.types.is_int(lt) {
                    fail(format!("{} on non-arithmetic type", op.name()));
                }
                if f.inst_ty(iid) != lt {
                    fail("cached binary result type mismatch".into());
                }
            }
            Inst::Cmp { lhs, rhs, .. } => {
                let lt = vt(*lhs);
                let rt = vt(*rhs);
                if lt != rt {
                    fail("comparison operand types differ".into());
                }
                if !self.types.is_first_class(lt) {
                    fail("comparison of non-first-class values".into());
                }
                if f.inst_ty(iid) != self.types.bool_() {
                    fail("comparison result is not bool".into());
                }
            }
            Inst::Malloc { count, .. } | Inst::Alloca { count, .. } => {
                if let Some(c) = count {
                    if !self.types.is_int(vt(*c)) {
                        fail("allocation count is not an integer".into());
                    }
                }
            }
            Inst::Free(p) => {
                if !self.types.is_ptr(vt(*p)) {
                    fail("free of non-pointer".into());
                }
            }
            Inst::Load { ptr } => match self.types.pointee(vt(*ptr)) {
                Some(p) => {
                    if !self.types.is_first_class(p) {
                        fail("load of non-first-class type".into());
                    }
                    if f.inst_ty(iid) != p {
                        fail("load result type != pointee".into());
                    }
                }
                None => fail("load through non-pointer".into()),
            },
            Inst::Store { val, ptr } => match self.types.pointee(vt(*ptr)) {
                Some(p) => {
                    if vt(*val) != p {
                        fail(format!(
                            "store of {} through {}*",
                            self.types.display(vt(*val)),
                            self.types.display(p)
                        ));
                    }
                    if !self.types.is_first_class(p) {
                        fail("store of non-first-class type".into());
                    }
                }
                None => fail("store through non-pointer".into()),
            },
            Inst::Gep { ptr, indices } => match self.gep_pointee(f, vt(*ptr), indices) {
                Ok(elem) => match self.types.pointee(f.inst_ty(iid)) {
                    Some(p) if p == elem => {}
                    _ => fail("getelementptr result type mismatch".into()),
                },
                Err(e) => fail(format!("getelementptr: {e}")),
            },
            Inst::Phi { incoming } => {
                let ty = f.inst_ty(iid);
                if !self.types.is_first_class(ty) {
                    fail("phi of non-first-class type".into());
                }
                for (v, _) in incoming {
                    if vt(*v) != ty {
                        fail(format!(
                            "phi incoming type {} != declared {}",
                            self.types.display(vt(*v)),
                            self.types.display(ty)
                        ));
                    }
                }
            }
            Inst::Call { callee, args } | Inst::Invoke { callee, args, .. } => {
                let ct = vt(*callee);
                let fnty = match self.types.pointee(ct) {
                    Some(t) if self.types.is_func(t) => t,
                    _ => {
                        fail("call through non-function-pointer".into());
                        return;
                    }
                };
                let params = self.types.func_params(fnty).unwrap().to_vec();
                let varargs = self.types.func_varargs(fnty).unwrap();
                if args.len() < params.len() || (!varargs && args.len() != params.len()) {
                    fail(format!(
                        "call arity {} does not match signature {}",
                        args.len(),
                        self.types.display(fnty)
                    ));
                    return;
                }
                for (i, (&a, &p)) in args.iter().zip(params.iter()).enumerate() {
                    if vt(a) != p {
                        fail(format!(
                            "argument {i} has type {} but parameter is {}",
                            self.types.display(vt(a)),
                            self.types.display(p)
                        ));
                    }
                }
                if f.inst_ty(iid) != self.types.func_ret(fnty).unwrap() {
                    fail("call result type != callee return type".into());
                }
            }
            Inst::Cast { val, to } => {
                let from = vt(*val);
                if !self.types.is_first_class(from) || !self.types.is_first_class(*to) {
                    fail("cast between non-first-class types".into());
                }
                if f.inst_ty(iid) != *to {
                    fail("cached cast type mismatch".into());
                }
            }
            Inst::VaArg { ty } => {
                if !f.is_varargs() {
                    fail("vaarg in non-variadic function".into());
                }
                if f.inst_ty(iid) != *ty {
                    fail("cached vaarg type mismatch".into());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Linkage;
    use crate::inst::{BinOp, CmpPred};

    #[test]
    fn accepts_valid_function() {
        let mut m = Module::new("ok");
        let i32t = m.types.i32();
        let f = m.add_function("f", &[i32t], i32t, false, Linkage::External);
        let mut b = m.builder(f);
        b.block();
        let one = b.iconst32(1);
        let s = b.add(Value::Arg(0), one);
        b.ret(Some(s));
        assert!(m.verify().is_ok());
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut m = Module::new("bad");
        let i32t = m.types.i32();
        let f = m.add_function("f", &[i32t], i32t, false, Linkage::External);
        let mut b = m.builder(f);
        b.block();
        let one = b.iconst32(1);
        b.add(Value::Arg(0), one);
        let errs = m.verify().unwrap_err();
        assert!(errs[0].message.contains("terminator"), "{errs:?}");
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut m = Module::new("bad2");
        let i32t = m.types.i32();
        let f = m.add_function("f", &[i32t], i32t, false, Linkage::External);
        let fb = m.func_mut(f);
        let b = fb.add_block();
        // Manually construct add of int and long.
        let c = m.consts.i64(1);
        let void = m.types.void();
        let fb = m.func_mut(f);
        let add = fb.append_inst(
            b,
            Inst::Bin {
                op: BinOp::Add,
                lhs: Value::Arg(0),
                rhs: Value::Const(c),
            },
            i32t,
        );
        fb.append_inst(b, Inst::Ret(Some(Value::Inst(add))), void);
        let errs = m.verify().unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.message.contains("operand types differ")),
            "{errs:?}"
        );
    }

    #[test]
    fn rejects_use_before_def() {
        let mut m = Module::new("bad3");
        let i32t = m.types.i32();
        let f = m.add_function("f", &[i32t], i32t, false, Linkage::External);
        let void = m.types.void();
        let fb = m.func_mut(f);
        let b = fb.add_block();
        // %t1 used before defined: build ret first referencing later inst.
        let add_id = InstId::from_index(1);
        fb.append_inst(b, Inst::Ret(Some(Value::Inst(add_id))), void);
        let errs = m.verify().unwrap_err();
        assert!(!errs.is_empty());
    }

    #[test]
    fn rejects_bad_phi_preds() {
        let mut m = Module::new("bad4");
        let i32t = m.types.i32();
        let f = m.add_function("f", &[i32t], i32t, false, Linkage::External);
        let mut b = m.builder(f);
        let b0 = b.block();
        let b1 = b.new_block();
        b.br(b1);
        b.switch_to(b1);
        // phi claims an incoming edge from b1 (not a predecessor).
        let p = b.phi(i32t, vec![(Value::Arg(0), b1)]);
        b.ret(Some(p));
        let _ = b0;
        let errs = m.verify().unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.message.contains("do not match predecessors")),
            "{errs:?}"
        );
    }

    #[test]
    fn dominators_of_diamond() {
        let mut m = Module::new("dom");
        let i32t = m.types.i32();
        let f = m.add_function("f", &[m.types.bool_()], i32t, false, Linkage::External);
        let mut b = m.builder(f);
        let b0 = b.block();
        let b1 = b.new_block();
        let b2 = b.new_block();
        let b3 = b.new_block();
        b.cond_br(Value::Arg(0), b1, b2);
        b.switch_to(b1);
        b.br(b3);
        b.switch_to(b2);
        b.br(b3);
        b.switch_to(b3);
        let one = b.iconst32(1);
        let two = b.iconst32(2);
        let p = b.phi(i32t, vec![(one, b1), (two, b2)]);
        b.ret(Some(p));
        assert!(m.verify().is_ok());
        let d = Dominators::compute(m.func(f));
        assert_eq!(d.idom[b3.index()], Some(b0));
        assert_eq!(d.idom[b1.index()], Some(b0));
        assert!(d.dominates(b0, b3));
        assert!(!d.dominates(b1, b3));
        assert!(d.dominates(b3, b3));
    }

    #[test]
    fn phi_cycle_is_legal_ssa() {
        // Loop-carried phi whose operand is defined later in its own block.
        let mut m = Module::new("cyc");
        let i32t = m.types.i32();
        let f = m.add_function("f", &[i32t], i32t, false, Linkage::External);
        let mut b = m.builder(f);
        let b0 = b.block();
        let b1 = b.new_block();
        let b2 = b.new_block();
        let zero = b.iconst32(0);
        b.br(b1);
        b.switch_to(b1);
        let i = b.phi(i32t, vec![(zero, b0)]);
        let one = b.iconst32(1);
        let i2 = b.add(i, one);
        let c = b.cmp(CmpPred::Lt, i2, Value::Arg(0));
        b.cond_br(c, b1, b2);
        b.switch_to(b2);
        b.ret(Some(i));
        // Patch the back edge.
        let iid = match i {
            Value::Inst(x) => x,
            _ => unreachable!(),
        };
        if let Inst::Phi { incoming } = m.func_mut(f).inst_mut(iid) {
            incoming.push((i2, b1));
        }
        assert!(m.verify().is_ok(), "{:?}", m.verify());
    }
}
