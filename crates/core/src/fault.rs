//! Deterministic fault injection.
//!
//! The framework's lifelong-optimization story (paper §3.6) requires the
//! optimizer to be safe to run against a live program: a crashing or
//! runaway pass must degrade gracefully instead of taking the process
//! down. The pass managers implement that isolation with snapshots and
//! rollback; this module provides the *test driver* for it — a
//! [`FaultPlan`] that makes named fault sites misbehave on demand, fully
//! deterministically, so tests can assert the exact recovery behavior at
//! any parallelism level.
//!
//! # Plan grammar
//!
//! A plan is a comma-separated list of specs:
//!
//! ```text
//! site:action[@N]
//! ```
//!
//! * `site` — a fault-site name. Every pass name is a site (`gvn`,
//!   `inline`, ...); additional named sites exist in the bytecode reader
//!   (`bytecode.read`), the profile-guided reoptimizer (`pgo-inline`),
//!   the lifelong store (`store.read`, `store.write`, `store.lock`), the
//!   tier engine (`jit.translate` — fail a function's translation;
//!   `native.translate` — fail the single-pass machine-code backend,
//!   permanently demoting the function to the JIT tier; `tier.deopt` —
//!   panic during deopt frame reconstruction, demoting
//!   the function), speculation (`spec.guard` — force a guard check
//!   to fail; `delay` sleeps and then honors the real condition), the
//!   `lpatd` daemon (`serve.accept`, `serve.decode`, `serve.worker`,
//!   `serve.deadline` — one per layer of the request path; each must be
//!   absorbed as a structured per-request error, never a daemon crash),
//!   and the store's write-ahead journal (`store.journal` — hit once per
//!   step of a journaled write, in order: 1 intent append, 2 temp write,
//!   3 temp fsync, 4 rename, 5 commit append; `@N` therefore selects the
//!   exact crash point, and `delay=...@N` plus an external SIGKILL is how
//!   the chaos tests park a worker *between* two durability steps).
//! * `action` — `panic` (the site panics), `abort` (the site calls
//!   `std::process::abort()`, modeling a stack smash or allocator abort
//!   that no `catch_unwind` can absorb — only process-level supervision
//!   survives it), `delay=50ms` (the site sleeps, blowing any per-pass
//!   wall-clock budget), `corrupt` (the pass manager breaks the module
//!   *after* the pass runs, simulating a miscompiling pass for
//!   `--verify-each` to catch; store writes flip a payload byte before it
//!   reaches disk), or `io` (store sites fail with a synthetic I/O
//!   error).
//! * `@N` — fire only on the N-th hit of the site (1-based). Without it
//!   the spec fires on every hit.
//!
//! Example: `LPAT_FAULTS=gvn:panic@2,inline:delay=50ms`.
//!
//! # Determinism
//!
//! Hits are counted per site. Serial sites (module passes, the bytecode
//! reader) simply increment the counter. The parallel function-pass
//! executor instead *reserves* a contiguous ordinal range per sub-pass
//! before spawning workers and assigns `base + function_index` to each
//! per-function unit — so which unit faults depends only on function
//! order, never on thread scheduling, and output is byte-identical at any
//! `--jobs` value.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// What an armed fault site does when it fires.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// The site panics (exercises `catch_unwind` isolation).
    Panic,
    /// The site sleeps for the given duration (exercises pass budgets).
    Delay(Duration),
    /// The surrounding manager corrupts the unit after the pass runs
    /// (exercises verifier-driven rollback); at store sites, the payload
    /// is corrupted *before* it reaches disk (exercises checksum-driven
    /// quarantine on the next read).
    Corrupt,
    /// The site fails with a synthetic I/O error (store sites only:
    /// exercises write-failure recovery; a no-op at compute sites).
    Io,
    /// The site calls [`std::process::abort`] — an unrecoverable,
    /// un-unwindable death that only process-level supervision (the
    /// `lpatd --isolate process` worker pool) can absorb. Fired directly
    /// inside [`FaultPlan::next`] so every existing site is abort-capable
    /// without per-site handling; the parallel [`FaultPlan::fires_at`]
    /// path intentionally does *not* abort (callers there treat it as
    /// [`FaultAction::Panic`]).
    Abort,
}

/// One `site:action[@N]` entry of a plan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Fault-site name the spec arms.
    pub site: String,
    /// What happens when it fires.
    pub action: FaultAction,
    /// Fire only on this 1-based hit ordinal (`None` = every hit).
    pub at: Option<u64>,
}

/// A parsed fault plan plus its per-site hit counters.
#[derive(Debug, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
    hits: Mutex<HashMap<String, u64>>,
}

impl FaultPlan {
    /// Parse the `site:action[@N],...` grammar.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed specs.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut specs = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (site, rest) = part
                .split_once(':')
                .ok_or_else(|| format!("fault spec '{part}': expected site:action[@N]"))?;
            let (action_str, at) = match rest.rsplit_once('@') {
                Some((a, n)) => {
                    let n: u64 = n
                        .parse()
                        .map_err(|_| format!("fault spec '{part}': bad ordinal '@{n}'"))?;
                    if n == 0 {
                        return Err(format!("fault spec '{part}': ordinals are 1-based"));
                    }
                    (a, Some(n))
                }
                None => (rest, None),
            };
            let action = match action_str {
                "panic" => FaultAction::Panic,
                "corrupt" => FaultAction::Corrupt,
                "io" => FaultAction::Io,
                "abort" => FaultAction::Abort,
                other => match other.strip_prefix("delay=") {
                    Some(d) => FaultAction::Delay(parse_duration(d).ok_or_else(|| {
                        format!("fault spec '{part}': bad delay '{d}' (try 50ms or 1s)")
                    })?),
                    None => {
                        return Err(format!(
                            "fault spec '{part}': unknown action '{other}' \
                             (panic, abort, delay=<ms>, corrupt, io)"
                        ))
                    }
                },
            };
            if site.is_empty() {
                return Err(format!("fault spec '{part}': empty site name"));
            }
            specs.push(FaultSpec {
                site: site.to_string(),
                action,
                at,
            });
        }
        Ok(FaultPlan {
            specs,
            hits: Mutex::new(HashMap::new()),
        })
    }

    /// Whether the plan arms any spec for `site`.
    pub fn arms(&self, site: &str) -> bool {
        self.specs.iter().any(|s| s.site == site)
    }

    /// Register one hit of a *serial* site and return the action to take,
    /// if any spec fires at this ordinal.
    pub fn next(&self, site: &str) -> Option<FaultAction> {
        if !self.arms(site) {
            return None; // keep un-armed sites lock-free-ish and countless
        }
        let ordinal = {
            let mut hits = self.hits.lock().unwrap_or_else(|e| e.into_inner());
            let c = hits.entry(site.to_string()).or_insert(0);
            *c += 1;
            *c
        };
        let action = self.fires_at(site, ordinal);
        if action == Some(FaultAction::Abort) {
            // Abort is executed here, not returned: that makes every site
            // abort-capable without any caller knowing the variant exists,
            // and guarantees no `catch_unwind` between the site and the
            // death can dampen it.
            std::process::abort();
        }
        action
    }

    /// Reserve `n` consecutive ordinals of `site` for a parallel stage and
    /// return the first (1-based). Workers then evaluate
    /// [`FaultPlan::fires_at`] with `base + unit_index`, which keeps the
    /// fault placement independent of thread scheduling.
    pub fn reserve(&self, site: &str, n: u64) -> u64 {
        let mut hits = self.hits.lock().unwrap_or_else(|e| e.into_inner());
        let c = hits.entry(site.to_string()).or_insert(0);
        let base = *c + 1;
        *c += n;
        base
    }

    /// Pure check: does any spec for `site` fire at `ordinal`?
    pub fn fires_at(&self, site: &str, ordinal: u64) -> Option<FaultAction> {
        self.specs
            .iter()
            .find(|s| s.site == site && s.at.map(|n| n == ordinal).unwrap_or(true))
            .map(|s| s.action)
    }

    /// The parsed specs.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }
}

fn parse_duration(s: &str) -> Option<Duration> {
    if let Some(ms) = s.strip_suffix("ms") {
        return ms.parse::<u64>().ok().map(Duration::from_millis);
    }
    if let Some(sec) = s.strip_suffix('s') {
        return sec.parse::<u64>().ok().map(Duration::from_secs);
    }
    s.parse::<u64>().ok().map(Duration::from_millis)
}

static GLOBAL: OnceLock<Option<Arc<FaultPlan>>> = OnceLock::new();

/// Install a process-wide fault plan (the `--inject-faults` flag). Only
/// the first installation wins; returns `false` if a plan (or the absence
/// of one) was already fixed by an earlier [`install`] or [`global`] call.
pub fn install(plan: FaultPlan) -> bool {
    GLOBAL.set(Some(Arc::new(plan))).is_ok()
}

/// The process-wide fault plan: whatever [`install`] fixed, else the
/// `LPAT_FAULTS` environment variable parsed on first access (a malformed
/// value is reported to stderr once and ignored).
pub fn global() -> Option<Arc<FaultPlan>> {
    GLOBAL
        .get_or_init(|| match std::env::var("LPAT_FAULTS") {
            Ok(s) if !s.trim().is_empty() => match FaultPlan::parse(&s) {
                Ok(p) => Some(Arc::new(p)),
                Err(e) => {
                    eprintln!("warning: ignoring malformed LPAT_FAULTS: {e}");
                    None
                }
            },
            _ => None,
        })
        .clone()
}

/// Evaluate a named fault site against the process-wide plan (or an
/// explicit `Option<&FaultPlan>` first argument). Expands to an
/// `Option<FaultAction>` — the caller decides how the action manifests
/// (panic, sleep, or a structured error on no-panic paths such as the
/// bytecode reader).
#[macro_export]
macro_rules! faultpoint {
    ($site:expr) => {
        $crate::fault::global().and_then(|p| p.next($site))
    };
    ($plan:expr, $site:expr) => {
        ($plan).and_then(|p: &$crate::fault::FaultPlan| p.next($site))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_grammar() {
        let p = FaultPlan::parse("gvn:panic@2, inline:delay=50ms,dge:corrupt").unwrap();
        assert_eq!(
            p.specs(),
            &[
                FaultSpec {
                    site: "gvn".into(),
                    action: FaultAction::Panic,
                    at: Some(2),
                },
                FaultSpec {
                    site: "inline".into(),
                    action: FaultAction::Delay(Duration::from_millis(50)),
                    at: None,
                },
                FaultSpec {
                    site: "dge".into(),
                    action: FaultAction::Corrupt,
                    at: None,
                },
            ]
        );
        assert_eq!(
            FaultPlan::parse("serve.worker:abort@3").unwrap().specs(),
            &[FaultSpec {
                site: "serve.worker".into(),
                action: FaultAction::Abort,
                at: Some(3),
            }]
        );
        assert!(FaultPlan::parse("gvn").is_err());
        assert!(FaultPlan::parse("gvn:explode").is_err());
        assert!(FaultPlan::parse("gvn:panic@0").is_err());
        assert!(FaultPlan::parse("gvn:delay=fast").is_err());
        assert!(FaultPlan::parse("").unwrap().specs().is_empty());
    }

    #[test]
    fn ordinal_counting_is_per_site() {
        let p = FaultPlan::parse("a:panic@2,b:panic@1").unwrap();
        assert_eq!(p.next("a"), None);
        assert_eq!(p.next("b"), Some(FaultAction::Panic));
        assert_eq!(p.next("a"), Some(FaultAction::Panic));
        assert_eq!(p.next("a"), None);
        assert_eq!(p.next("unarmed"), None);
    }

    #[test]
    fn unconditional_spec_fires_every_hit() {
        let p = FaultPlan::parse("a:panic").unwrap();
        for _ in 0..3 {
            assert_eq!(p.next("a"), Some(FaultAction::Panic));
        }
    }

    #[test]
    fn reserve_assigns_contiguous_ordinals() {
        let p = FaultPlan::parse("a:panic@5").unwrap();
        let base = p.reserve("a", 3); // ordinals 1..=3
        assert_eq!(base, 1);
        assert_eq!(p.fires_at("a", base + 2), None);
        let base = p.reserve("a", 3); // ordinals 4..=6
        assert_eq!(base, 4);
        assert_eq!(p.fires_at("a", base + 1), Some(FaultAction::Panic));
        assert_eq!(p.next("a"), None); // ordinal 7
    }
}
