//! The language-independent type system (paper §2.2).
//!
//! The representation has source-language-independent primitive types with
//! predefined sizes (`void`, `bool`, signed/unsigned integers from 8 to 64
//! bits, and single- and double-precision floating point) and exactly four
//! derived types: **pointers**, **arrays**, **structures**, and **functions**.
//! Higher-level language types (C++ classes, closures, tagged unions, ...)
//! are expressed as combinations of these four in terms of their operational
//! behaviour.
//!
//! Types are interned in a [`TypeCtx`]: structurally equal types receive the
//! same [`TypeId`], so type equality is integer equality. Named structure
//! types are *nominal* (two distinct names are distinct types even with equal
//! bodies), which is what permits recursive types such as
//! `%list = type { int, %list* }`.

use std::collections::HashMap;
use std::fmt;

/// A compact handle to an interned [`Type`] inside a [`TypeCtx`].
///
/// `TypeId`s are only meaningful relative to the context that created them.
/// Equality of ids implies structural equality of the types (and for named
/// structs, identity).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub(crate) u32);

impl TypeId {
    /// Raw index of this type inside its context, useful for dense side
    /// tables keyed by type.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Rebuild from a raw index (for deserializers and pool merging).
    #[inline]
    pub fn from_index(i: usize) -> TypeId {
        TypeId(i as u32)
    }
}

impl fmt::Debug for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ty{}", self.0)
    }
}

/// The eight integer kinds of the representation.
///
/// Following the paper's instruction set, integers carry both a width and a
/// signedness; the textual names mirror the original assembly syntax
/// (`sbyte`, `ubyte`, `short`, `ushort`, `int`, `uint`, `long`, `ulong`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum IntKind {
    /// `sbyte`: signed 8-bit.
    S8,
    /// `ubyte`: unsigned 8-bit.
    U8,
    /// `short`: signed 16-bit.
    S16,
    /// `ushort`: unsigned 16-bit.
    U16,
    /// `int`: signed 32-bit.
    S32,
    /// `uint`: unsigned 32-bit.
    U32,
    /// `long`: signed 64-bit.
    S64,
    /// `ulong`: unsigned 64-bit.
    U64,
}

impl IntKind {
    /// All integer kinds, in width-then-signedness order.
    pub const ALL: [IntKind; 8] = [
        IntKind::S8,
        IntKind::U8,
        IntKind::S16,
        IntKind::U16,
        IntKind::S32,
        IntKind::U32,
        IntKind::S64,
        IntKind::U64,
    ];

    /// Bit width of this integer kind (8, 16, 32 or 64).
    #[inline]
    pub fn bits(self) -> u32 {
        match self {
            IntKind::S8 | IntKind::U8 => 8,
            IntKind::S16 | IntKind::U16 => 16,
            IntKind::S32 | IntKind::U32 => 32,
            IntKind::S64 | IntKind::U64 => 64,
        }
    }

    /// Byte width of this integer kind.
    #[inline]
    pub fn bytes(self) -> u64 {
        (self.bits() / 8) as u64
    }

    /// Whether the kind is signed.
    #[inline]
    pub fn is_signed(self) -> bool {
        matches!(
            self,
            IntKind::S8 | IntKind::S16 | IntKind::S32 | IntKind::S64
        )
    }

    /// The assembly name of this kind (`sbyte`, `uint`, ...).
    pub fn name(self) -> &'static str {
        match self {
            IntKind::S8 => "sbyte",
            IntKind::U8 => "ubyte",
            IntKind::S16 => "short",
            IntKind::U16 => "ushort",
            IntKind::S32 => "int",
            IntKind::U32 => "uint",
            IntKind::S64 => "long",
            IntKind::U64 => "ulong",
        }
    }

    /// Parse an assembly name back into a kind.
    pub fn from_name(name: &str) -> Option<IntKind> {
        Some(match name {
            "sbyte" => IntKind::S8,
            "ubyte" => IntKind::U8,
            "short" => IntKind::S16,
            "ushort" => IntKind::U16,
            "int" => IntKind::S32,
            "uint" => IntKind::U32,
            "long" => IntKind::S64,
            "ulong" => IntKind::U64,
            _ => return None,
        })
    }

    /// Truncate/sign-extend `raw` (a 64-bit two's-complement payload) to the
    /// canonical in-range representation for this kind.
    ///
    /// Signed kinds sign-extend from their width; unsigned kinds zero-extend.
    /// All integer constants and VM registers store their payload in this
    /// canonical form so that equality and hashing behave.
    #[inline]
    pub fn canonicalize(self, raw: i64) -> i64 {
        let bits = self.bits();
        if bits == 64 {
            return raw;
        }
        let shift = 64 - bits;
        if self.is_signed() {
            (raw << shift) >> shift
        } else {
            (((raw as u64) << shift) >> shift) as i64
        }
    }
}

/// A type of the representation.
///
/// Obtain instances via [`TypeCtx`] constructors and inspect them through
/// [`TypeCtx::ty`]; user code rarely builds `Type` values directly.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// The `void` type: no value. Functions returning nothing and
    /// non-value-producing instructions have this type.
    Void,
    /// The `bool` type produced by comparisons and consumed by conditional
    /// branches.
    Bool,
    /// An integer type of one of the eight [`IntKind`]s.
    Int(IntKind),
    /// Single-precision IEEE-754 floating point (`float`).
    F32,
    /// Double-precision IEEE-754 floating point (`double`).
    F64,
    /// A typed pointer `T*`.
    Ptr(TypeId),
    /// A fixed-size array `[len x T]`.
    Array {
        /// Element type.
        elem: TypeId,
        /// Number of elements.
        len: u64,
    },
    /// A structure type.
    ///
    /// Anonymous (`name == None`) structs are structural and interned;
    /// named structs are nominal and may be recursive.
    Struct {
        /// Optional nominal name (`%list = type { ... }`).
        name: Option<String>,
        /// Field types, in declaration order.
        fields: Vec<TypeId>,
    },
    /// A function type `ret (params...)`, optionally variadic.
    Func {
        /// Return type (may be `Void`).
        ret: TypeId,
        /// Parameter types.
        params: Vec<TypeId>,
        /// Whether the function accepts additional variadic arguments.
        varargs: bool,
    },
    /// A named struct that has been declared but whose body is not yet set
    /// (used while constructing recursive types, and for genuinely opaque
    /// types).
    Opaque(String),
}

/// The interning context that owns every [`Type`] of a module.
///
/// A fresh context pre-interns all primitive types so that handles like
/// [`TypeCtx::i32`] are constant-time and allocation-free.
///
/// # Examples
///
/// ```
/// use lpat_core::types::TypeCtx;
///
/// let mut tc = TypeCtx::new();
/// let p1 = tc.ptr(tc.i32());
/// let p2 = tc.ptr(tc.i32());
/// assert_eq!(p1, p2); // structural interning
/// ```
#[derive(Clone, Debug)]
pub struct TypeCtx {
    types: Vec<Type>,
    intern: HashMap<Type, TypeId>,
    named: HashMap<String, TypeId>,
}

impl Default for TypeCtx {
    fn default() -> Self {
        Self::new()
    }
}

/// Ids of the pre-interned primitives, in creation order.
const VOID: TypeId = TypeId(0);
const BOOL: TypeId = TypeId(1);
const INT0: u32 = 2; // S8..U64 occupy 2..=9
const F32T: TypeId = TypeId(10);
const F64T: TypeId = TypeId(11);

impl TypeCtx {
    /// Create a context with all primitive types pre-interned.
    pub fn new() -> TypeCtx {
        let mut tc = TypeCtx {
            types: Vec::with_capacity(16),
            intern: HashMap::new(),
            named: HashMap::new(),
        };
        tc.intern_new(Type::Void);
        tc.intern_new(Type::Bool);
        for k in IntKind::ALL {
            tc.intern_new(Type::Int(k));
        }
        tc.intern_new(Type::F32);
        tc.intern_new(Type::F64);
        tc
    }

    fn intern_new(&mut self, t: Type) -> TypeId {
        let id = TypeId(self.types.len() as u32);
        self.intern.insert(t.clone(), id);
        self.types.push(t);
        id
    }

    fn intern(&mut self, t: Type) -> TypeId {
        if let Some(&id) = self.intern.get(&t) {
            return id;
        }
        self.intern_new(t)
    }

    /// Number of distinct types interned so far.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Intern an arbitrary structural type built elsewhere (pool merging).
    ///
    /// # Panics
    ///
    /// Panics on named/opaque struct types: those are nominal, not
    /// structural — create them with [`TypeCtx::named_struct`] and
    /// [`TypeCtx::set_struct_body`] instead.
    pub fn intern_type(&mut self, t: Type) -> TypeId {
        assert!(
            !matches!(t, Type::Opaque(_) | Type::Struct { name: Some(_), .. }),
            "intern_type is for structural types; use named_struct for nominal ones"
        );
        self.intern(t)
    }

    /// Drop every type with index `>= len`, restoring the context to an
    /// earlier snapshot. Used by the parallel function-pass executor to
    /// reset a worker's pool overlay between functions.
    ///
    /// # Panics
    ///
    /// Panics if `len` would remove the pre-interned primitives.
    pub fn truncate(&mut self, len: usize) {
        assert!(len > (F64T.0 as usize), "cannot drop primitive types");
        if len >= self.types.len() {
            return;
        }
        self.intern.retain(|_, id| (id.0 as usize) < len);
        self.named.retain(|_, id| (id.0 as usize) < len);
        self.types.truncate(len);
    }

    /// Whether the context is empty (never true: primitives are pre-interned).
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Look up the structure of a type.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this context.
    #[inline]
    pub fn ty(&self, id: TypeId) -> &Type {
        &self.types[id.0 as usize]
    }

    /// Iterate over `(TypeId, &Type)` pairs in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, &Type)> {
        self.types
            .iter()
            .enumerate()
            .map(|(i, t)| (TypeId(i as u32), t))
    }

    /// The `void` type.
    #[inline]
    pub fn void(&self) -> TypeId {
        VOID
    }
    /// The `bool` type.
    #[inline]
    pub fn bool_(&self) -> TypeId {
        BOOL
    }
    /// The integer type for `kind`.
    #[inline]
    pub fn int(&self, kind: IntKind) -> TypeId {
        TypeId(INT0 + kind as u32)
    }
    /// Signed 8-bit (`sbyte`).
    #[inline]
    pub fn i8(&self) -> TypeId {
        self.int(IntKind::S8)
    }
    /// Unsigned 8-bit (`ubyte`).
    #[inline]
    pub fn u8(&self) -> TypeId {
        self.int(IntKind::U8)
    }
    /// Signed 16-bit (`short`).
    #[inline]
    pub fn i16(&self) -> TypeId {
        self.int(IntKind::S16)
    }
    /// Unsigned 16-bit (`ushort`).
    #[inline]
    pub fn u16(&self) -> TypeId {
        self.int(IntKind::U16)
    }
    /// Signed 32-bit (`int`).
    #[inline]
    pub fn i32(&self) -> TypeId {
        self.int(IntKind::S32)
    }
    /// Unsigned 32-bit (`uint`).
    #[inline]
    pub fn u32(&self) -> TypeId {
        self.int(IntKind::U32)
    }
    /// Signed 64-bit (`long`).
    #[inline]
    pub fn i64(&self) -> TypeId {
        self.int(IntKind::S64)
    }
    /// Unsigned 64-bit (`ulong`).
    #[inline]
    pub fn u64(&self) -> TypeId {
        self.int(IntKind::U64)
    }
    /// Single-precision float.
    #[inline]
    pub fn f32(&self) -> TypeId {
        F32T
    }
    /// Double-precision float.
    #[inline]
    pub fn f64(&self) -> TypeId {
        F64T
    }

    /// Intern the pointer type `pointee*`.
    pub fn ptr(&mut self, pointee: TypeId) -> TypeId {
        self.intern(Type::Ptr(pointee))
    }

    /// Intern the array type `[len x elem]`.
    pub fn array(&mut self, elem: TypeId, len: u64) -> TypeId {
        self.intern(Type::Array { elem, len })
    }

    /// Intern an anonymous (structural) struct type `{ fields... }`.
    pub fn struct_lit(&mut self, fields: Vec<TypeId>) -> TypeId {
        self.intern(Type::Struct { name: None, fields })
    }

    /// Declare a named struct type with no body yet.
    ///
    /// Returns the existing id when the name has already been declared,
    /// allowing forward references while parsing recursive types.
    pub fn named_struct(&mut self, name: &str) -> TypeId {
        if let Some(&id) = self.named.get(name) {
            return id;
        }
        let id = TypeId(self.types.len() as u32);
        self.types.push(Type::Opaque(name.to_string()));
        self.named.insert(name.to_string(), id);
        id
    }

    /// Set the body of a named struct declared with [`TypeCtx::named_struct`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an opaque named struct (e.g. the body was
    /// already set).
    pub fn set_struct_body(&mut self, id: TypeId, fields: Vec<TypeId>) {
        let name = match &self.types[id.0 as usize] {
            Type::Opaque(n) => n.clone(),
            other => panic!("set_struct_body on non-opaque type {other:?}"),
        };
        self.types[id.0 as usize] = Type::Struct {
            name: Some(name),
            fields,
        };
    }

    /// Look up a named struct by name.
    pub fn lookup_named(&self, name: &str) -> Option<TypeId> {
        self.named.get(name).copied()
    }

    /// Intern the function type `ret (params...)`.
    pub fn func(&mut self, ret: TypeId, params: Vec<TypeId>, varargs: bool) -> TypeId {
        self.intern(Type::Func {
            ret,
            params,
            varargs,
        })
    }

    // ---- queries -------------------------------------------------------

    /// Whether `id` is an integer type.
    pub fn is_int(&self, id: TypeId) -> bool {
        matches!(self.ty(id), Type::Int(_))
    }

    /// The [`IntKind`] of `id`, if it is an integer type.
    pub fn int_kind(&self, id: TypeId) -> Option<IntKind> {
        match self.ty(id) {
            Type::Int(k) => Some(*k),
            _ => None,
        }
    }

    /// Whether `id` is `float` or `double`.
    pub fn is_float(&self, id: TypeId) -> bool {
        matches!(self.ty(id), Type::F32 | Type::F64)
    }

    /// Whether `id` is a pointer type.
    pub fn is_ptr(&self, id: TypeId) -> bool {
        matches!(self.ty(id), Type::Ptr(_))
    }

    /// The pointee of a pointer type.
    pub fn pointee(&self, id: TypeId) -> Option<TypeId> {
        match self.ty(id) {
            Type::Ptr(p) => Some(*p),
            _ => None,
        }
    }

    /// Whether `id` is a first-class type: one that an SSA register can hold
    /// (bool, int, float, or pointer).
    pub fn is_first_class(&self, id: TypeId) -> bool {
        matches!(
            self.ty(id),
            Type::Bool | Type::Int(_) | Type::F32 | Type::F64 | Type::Ptr(_)
        )
    }

    /// Whether `id` is an aggregate (array or struct).
    pub fn is_aggregate(&self, id: TypeId) -> bool {
        matches!(self.ty(id), Type::Array { .. } | Type::Struct { .. })
    }

    /// Whether `id` is a function type.
    pub fn is_func(&self, id: TypeId) -> bool {
        matches!(self.ty(id), Type::Func { .. })
    }

    /// Return type of a function type.
    pub fn func_ret(&self, id: TypeId) -> Option<TypeId> {
        match self.ty(id) {
            Type::Func { ret, .. } => Some(*ret),
            _ => None,
        }
    }

    /// Parameter types of a function type.
    pub fn func_params(&self, id: TypeId) -> Option<&[TypeId]> {
        match self.ty(id) {
            Type::Func { params, .. } => Some(params),
            _ => None,
        }
    }

    /// Whether a function type is variadic.
    pub fn func_varargs(&self, id: TypeId) -> Option<bool> {
        match self.ty(id) {
            Type::Func { varargs, .. } => Some(*varargs),
            _ => None,
        }
    }

    // ---- layout --------------------------------------------------------

    /// Size in bytes of a value of type `id` under the reference data layout
    /// (ILP32: pointers are 4 bytes, natural alignment everywhere).
    ///
    /// # Panics
    ///
    /// Panics on `void`, function, and opaque types, which have no size.
    pub fn size_of(&self, id: TypeId) -> u64 {
        match self.ty(id) {
            Type::Void => panic!("void has no size"),
            Type::Bool => 1,
            Type::Int(k) => k.bytes(),
            Type::F32 => 4,
            Type::F64 => 8,
            Type::Ptr(_) => 4,
            Type::Array { elem, len } => self.size_of(*elem) * len,
            Type::Struct { fields, .. } => {
                let mut layout = StructLayout::compute(self, fields);
                layout.size = align_to(layout.size, layout.align);
                layout.size
            }
            Type::Func { .. } => panic!("function types have no size"),
            Type::Opaque(n) => panic!("opaque type {n} has no size"),
        }
    }

    /// Size in bytes of `id`, or `None` when the type has no size: void,
    /// function, and opaque types, plus pathologies only a hostile
    /// bytecode image can encode (self-referential by-value aggregates,
    /// arrays whose total size overflows `u64`). The sized results agree
    /// with [`TypeCtx::size_of`] exactly; execution engines use this at
    /// ingestion boundaries so bad modules trap instead of panicking.
    pub fn try_size_of(&self, id: TypeId) -> Option<u64> {
        self.try_layout(id, 0).map(|(size, _)| size)
    }

    /// `(size, align)` with the same guarantees as [`TypeCtx::try_size_of`].
    fn try_layout(&self, id: TypeId, depth: u32) -> Option<(u64, u64)> {
        if depth > 64 {
            return None;
        }
        Some(match self.ty(id) {
            Type::Void | Type::Func { .. } | Type::Opaque(_) => return None,
            Type::Bool => (1, 1),
            Type::Int(k) => (k.bytes(), k.bytes()),
            Type::F32 => (4, 4),
            Type::F64 => (8, 8),
            Type::Ptr(_) => (4, 4),
            Type::Array { elem, len } => {
                let (s, a) = self.try_layout(*elem, depth + 1)?;
                (s.checked_mul(*len)?, a)
            }
            Type::Struct { fields, .. } => {
                // Mirrors `StructLayout::compute`, with checked arithmetic.
                let mut size = 0u64;
                let mut align = 1u64;
                for &f in fields {
                    let (fs, fa) = self.try_layout(f, depth + 1)?;
                    align = align.max(fa);
                    size = size.div_ceil(fa).checked_mul(fa)?.checked_add(fs)?;
                }
                (size.div_ceil(align).checked_mul(align)?, align)
            }
        })
    }

    /// Alignment in bytes of type `id` under the reference data layout.
    pub fn align_of(&self, id: TypeId) -> u64 {
        match self.ty(id) {
            Type::Void => 1,
            Type::Bool => 1,
            Type::Int(k) => k.bytes(),
            Type::F32 => 4,
            Type::F64 => 8,
            Type::Ptr(_) => 4,
            Type::Array { elem, .. } => self.align_of(*elem),
            Type::Struct { fields, .. } => StructLayout::compute(self, fields).align,
            Type::Func { .. } => 1,
            Type::Opaque(_) => 1,
        }
    }

    /// Byte offset of field `idx` within struct type `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a struct or `idx` is out of range.
    pub fn field_offset(&self, id: TypeId, idx: usize) -> u64 {
        match self.ty(id) {
            Type::Struct { fields, .. } => {
                assert!(idx < fields.len(), "field index out of range");
                let mut off = 0u64;
                for (i, &f) in fields.iter().enumerate() {
                    off = align_to(off, self.align_of(f));
                    if i == idx {
                        return off;
                    }
                    off += self.size_of(f);
                }
                unreachable!()
            }
            other => panic!("field_offset on non-struct {other:?}"),
        }
    }

    /// Render a type to its assembly syntax (`int`, `%list*`, `[4 x float]`,
    /// `{ int, %list* }`, `int (int, sbyte**)`).
    pub fn display(&self, id: TypeId) -> String {
        let mut s = String::new();
        self.write_ty(&mut s, id);
        s
    }

    fn write_ty(&self, out: &mut String, id: TypeId) {
        use std::fmt::Write;
        match self.ty(id) {
            Type::Void => out.push_str("void"),
            Type::Bool => out.push_str("bool"),
            Type::Int(k) => out.push_str(k.name()),
            Type::F32 => out.push_str("float"),
            Type::F64 => out.push_str("double"),
            Type::Ptr(p) => {
                self.write_ty(out, *p);
                out.push('*');
            }
            Type::Array { elem, len } => {
                write!(out, "[{len} x ").unwrap();
                self.write_ty(out, *elem);
                out.push(']');
            }
            Type::Struct { name: Some(n), .. } => {
                write!(out, "%{n}").unwrap();
            }
            Type::Struct { name: None, fields } => {
                out.push_str("{ ");
                for (i, f) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    self.write_ty(out, *f);
                }
                out.push_str(" }");
            }
            Type::Func {
                ret,
                params,
                varargs,
            } => {
                self.write_ty(out, *ret);
                out.push_str(" (");
                for (i, p) in params.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    self.write_ty(out, *p);
                }
                if *varargs {
                    if !params.is_empty() {
                        out.push_str(", ");
                    }
                    out.push_str("...");
                }
                out.push(')');
            }
            Type::Opaque(n) => {
                write!(out, "%{n}").unwrap();
            }
        }
    }
}

/// Struct layout scratch result.
struct StructLayout {
    size: u64,
    align: u64,
}

impl StructLayout {
    fn compute(tc: &TypeCtx, fields: &[TypeId]) -> StructLayout {
        let mut size = 0u64;
        let mut align = 1u64;
        for &f in fields {
            let fa = tc.align_of(f);
            align = align.max(fa);
            size = align_to(size, fa) + tc.size_of(f);
        }
        StructLayout { size, align }
    }
}

/// Round `x` up to the next multiple of `align` (a power of two or any
/// positive integer).
#[inline]
pub fn align_to(x: u64, align: u64) -> u64 {
    debug_assert!(align > 0);
    x.div_ceil(align) * align
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_are_preinterned() {
        let tc = TypeCtx::new();
        assert_eq!(tc.ty(tc.void()), &Type::Void);
        assert_eq!(tc.ty(tc.bool_()), &Type::Bool);
        assert_eq!(tc.ty(tc.i32()), &Type::Int(IntKind::S32));
        assert_eq!(tc.ty(tc.u64()), &Type::Int(IntKind::U64));
        assert_eq!(tc.ty(tc.f32()), &Type::F32);
        assert_eq!(tc.ty(tc.f64()), &Type::F64);
    }

    #[test]
    fn interning_dedups() {
        let mut tc = TypeCtx::new();
        let a = tc.ptr(tc.i32());
        let b = tc.ptr(tc.i32());
        assert_eq!(a, b);
        let c = tc.array(a, 10);
        let d = tc.array(b, 10);
        assert_eq!(c, d);
        let e = tc.struct_lit(vec![a, c]);
        let f = tc.struct_lit(vec![b, d]);
        assert_eq!(e, f);
        let g = tc.struct_lit(vec![c, a]);
        assert_ne!(e, g);
    }

    #[test]
    fn named_structs_are_nominal_and_recursive() {
        let mut tc = TypeCtx::new();
        let list = tc.named_struct("list");
        let list_ptr = tc.ptr(list);
        tc.set_struct_body(list, vec![tc.i32(), list_ptr]);
        let other = tc.named_struct("other");
        let other_ptr = tc.ptr(other);
        tc.set_struct_body(other, vec![tc.i32(), other_ptr]);
        assert_ne!(list, other);
        assert_eq!(tc.lookup_named("list"), Some(list));
        assert_eq!(tc.display(list), "%list");
        match tc.ty(list) {
            Type::Struct { name, fields } => {
                assert_eq!(name.as_deref(), Some("list"));
                assert_eq!(fields.len(), 2);
            }
            _ => panic!("expected struct"),
        }
    }

    #[test]
    fn layout_ilp32() {
        let mut tc = TypeCtx::new();
        assert_eq!(tc.size_of(tc.i8()), 1);
        assert_eq!(tc.size_of(tc.i64()), 8);
        let p = tc.ptr(tc.i32());
        assert_eq!(tc.size_of(p), 4);
        // { sbyte, int, sbyte } -> 0, 4, 8 -> size 12 align 4
        let s = tc.struct_lit(vec![tc.i8(), tc.i32(), tc.i8()]);
        assert_eq!(tc.field_offset(s, 0), 0);
        assert_eq!(tc.field_offset(s, 1), 4);
        assert_eq!(tc.field_offset(s, 2), 8);
        assert_eq!(tc.size_of(s), 12);
        assert_eq!(tc.align_of(s), 4);
        // arrays multiply
        let a = tc.array(s, 3);
        assert_eq!(tc.size_of(a), 36);
    }

    #[test]
    fn display_round_syntax() {
        let mut tc = TypeCtx::new();
        let pp = tc.ptr(tc.i8());
        let ppp = tc.ptr(pp);
        assert_eq!(tc.display(ppp), "sbyte**");
        let a = tc.array(tc.f32(), 4);
        assert_eq!(tc.display(a), "[4 x float]");
        let s = tc.struct_lit(vec![tc.i32(), ppp]);
        assert_eq!(tc.display(s), "{ int, sbyte** }");
        let f = tc.func(tc.i32(), vec![tc.i32(), pp], true);
        assert_eq!(tc.display(f), "int (int, sbyte*, ...)");
        let v = tc.func(tc.void(), vec![], false);
        assert_eq!(tc.display(v), "void ()");
    }

    #[test]
    fn canonicalize_int_values() {
        assert_eq!(IntKind::U8.canonicalize(-1), 255);
        assert_eq!(IntKind::S8.canonicalize(255), -1);
        assert_eq!(IntKind::S8.canonicalize(127), 127);
        assert_eq!(IntKind::U32.canonicalize(-1), 0xFFFF_FFFF);
        assert_eq!(IntKind::S64.canonicalize(-5), -5);
        assert_eq!(IntKind::U16.canonicalize(0x1_0005), 5);
    }

    #[test]
    fn first_class_and_aggregate_queries() {
        let mut tc = TypeCtx::new();
        let p = tc.ptr(tc.i32());
        assert!(tc.is_first_class(tc.bool_()));
        assert!(tc.is_first_class(p));
        assert!(!tc.is_first_class(tc.void()));
        let s = tc.struct_lit(vec![tc.i32()]);
        assert!(tc.is_aggregate(s));
        assert!(!tc.is_first_class(s));
        let a = tc.array(tc.i8(), 2);
        assert!(tc.is_aggregate(a));
    }
}
