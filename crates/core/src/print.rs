//! The textual form of the representation (paper §2.5).
//!
//! The representation is a first-class language with equivalent textual,
//! binary, and in-memory forms; this module renders the in-memory form to
//! text. The syntax follows the original assembly closely:
//!
//! ```text
//! %list = type { int, %list* }
//! @G = global int 42
//! declare int @puts(sbyte*)
//! define int @main() {
//! bb0:
//!   %t0 = load int* @G
//!   %t1 = add int %t0, 1
//!   ret int %t1
//! }
//! ```
//!
//! The parser for this syntax lives in the `lpat-asm` crate; round-tripping
//! is lossless modulo value numbering (parsing renumbers densely, so the
//! print of a parsed module is canonical).

use std::fmt::Write;

use crate::constant::{Const, ConstId, FuncId};
use crate::function::{Function, Linkage};
use crate::inst::{BlockId, Inst, InstId, Value};
use crate::module::Module;
use crate::types::Type;

impl Module {
    /// Render the whole module to its textual form.
    pub fn display(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "; module = {}", self.name);
        // Named struct types, in creation order.
        for (id, ty) in self.types.iter() {
            match ty {
                Type::Struct {
                    name: Some(n),
                    fields,
                } => {
                    let mut body = String::new();
                    body.push_str("{ ");
                    for (i, f) in fields.iter().enumerate() {
                        if i > 0 {
                            body.push_str(", ");
                        }
                        body.push_str(&self.types.display(*f));
                    }
                    body.push_str(" }");
                    let _ = writeln!(out, "%{n} = type {body}");
                    let _ = id;
                }
                Type::Opaque(n) => {
                    let _ = writeln!(out, "%{n} = type opaque");
                }
                _ => {}
            }
        }
        for (_, g) in self.globals() {
            let kw = if g.is_const { "constant" } else { "global" };
            let link = match g.linkage {
                Linkage::Internal => "internal ",
                Linkage::External => "",
            };
            match g.init {
                Some(init) => {
                    let _ = writeln!(
                        out,
                        "@{} = {}{} {} {}",
                        g.name,
                        link,
                        kw,
                        self.types.display(g.value_ty),
                        self.const_text(init)
                    );
                }
                None => {
                    let _ = writeln!(
                        out,
                        "@{} = external {} {}",
                        g.name,
                        kw,
                        self.types.display(g.value_ty)
                    );
                }
            }
        }
        for (fid, f) in self.funcs() {
            if f.is_declaration() {
                let _ = writeln!(out, "{}", self.func_header(fid, "declare"));
            } else {
                out.push_str(&self.display_func(fid));
            }
        }
        out
    }

    fn func_header(&self, fid: FuncId, kw: &str) -> String {
        let f = self.func(fid);
        let link = match (kw, f.linkage) {
            ("define", Linkage::Internal) => "internal ",
            _ => "",
        };
        let mut s = format!(
            "{kw} {link}{} @{}(",
            self.types.display(f.ret_type()),
            f.name
        );
        for (i, p) in f.params().iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{} %a{i}", self.types.display(*p));
        }
        if f.is_varargs() {
            if !f.params().is_empty() {
                s.push_str(", ");
            }
            s.push_str("...");
        }
        s.push(')');
        s
    }

    /// Render one function definition.
    pub fn display_func(&self, fid: FuncId) -> String {
        let f = self.func(fid);
        let mut out = String::new();
        let _ = writeln!(out, "{} {{", self.func_header(fid, "define"));
        for b in f.block_ids() {
            let _ = writeln!(out, "bb{}:", b.index());
            for &i in f.block_insts(b) {
                let _ = writeln!(out, "  {}", self.inst_text(f, i));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Render a value operand (without its type).
    pub fn value_text(&self, v: Value) -> String {
        match v {
            Value::Inst(i) => format!("%t{}", i.index()),
            Value::Arg(n) => format!("%a{n}"),
            Value::Const(c) => self.const_text(c),
        }
    }

    /// Render a constant literal.
    pub fn const_text(&self, c: ConstId) -> String {
        match self.consts.get(c) {
            Const::Bool(b) => b.to_string(),
            Const::Int { kind, value } => {
                if kind.is_signed() {
                    value.to_string()
                } else {
                    (*value as u64).to_string()
                }
            }
            Const::F32(bits) => format!("0x{bits:08X}"),
            Const::F64(bits) => format!("0x{bits:016X}"),
            Const::Null(_) => "null".to_string(),
            Const::Undef(_) => "undef".to_string(),
            Const::Zero(_) => "zeroinitializer".to_string(),
            Const::Array { elems, ty } => {
                let elem_ty = match self.types.ty(*ty) {
                    Type::Array { elem, .. } => *elem,
                    _ => unreachable!("array constant with non-array type"),
                };
                let mut s = String::from("[ ");
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "{} {}", self.types.display(elem_ty), self.const_text(*e));
                }
                s.push_str(" ]");
                s
            }
            Const::Struct { fields, ty } => {
                let ftys = match self.types.ty(*ty) {
                    Type::Struct { fields, .. } => fields.clone(),
                    _ => unreachable!("struct constant with non-struct type"),
                };
                let mut s = String::from("{ ");
                for (i, e) in fields.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "{} {}", self.types.display(ftys[i]), self.const_text(*e));
                }
                s.push_str(" }");
                s
            }
            Const::GlobalAddr(g) => format!("@{}", self.global(*g).name),
            Const::FuncAddr(f) => format!("@{}", self.func(*f).name),
        }
    }

    /// Render a typed operand (`int %t0`).
    fn typed_value(&self, f: &Function, v: Value) -> String {
        format!(
            "{} {}",
            self.types.display(self.value_type(f, v)),
            self.value_text(v)
        )
    }

    /// Render one instruction.
    pub fn inst_text(&self, f: &Function, id: InstId) -> String {
        let inst = f.inst(id);
        let lhs = |s: String| -> String {
            let ty = f.inst_ty(id);
            if self.types.ty(ty) == &Type::Void {
                s
            } else {
                format!("%t{} = {s}", id.index())
            }
        };
        let label = |b: BlockId| format!("label %bb{}", b.index());
        match inst {
            Inst::Ret(None) => "ret void".to_string(),
            Inst::Ret(Some(v)) => format!("ret {}", self.typed_value(f, *v)),
            Inst::Br(b) => format!("br {}", label(*b)),
            Inst::CondBr {
                cond,
                then_bb,
                else_bb,
            } => format!(
                "br bool {}, {}, {}",
                self.value_text(*cond),
                label(*then_bb),
                label(*else_bb)
            ),
            Inst::Switch {
                val,
                default,
                cases,
            } => {
                let mut s = format!(
                    "switch {}, {} [",
                    self.typed_value(f, *val),
                    label(*default)
                );
                let vt = self.value_type(f, *val);
                for (c, b) in cases {
                    let _ = write!(
                        s,
                        " {} {}, {}",
                        self.types.display(vt),
                        self.const_text(*c),
                        label(*b)
                    );
                }
                s.push_str(" ]");
                s
            }
            Inst::Invoke {
                callee,
                args,
                normal,
                unwind,
            } => {
                let mut s = format!(
                    "invoke {} {}(",
                    self.types.display(f.inst_ty(id)),
                    self.value_text(*callee)
                );
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&self.typed_value(f, *a));
                }
                let _ = write!(s, ") to {} unwind {}", label(*normal), label(*unwind));
                lhs(s)
            }
            Inst::Unwind => "unwind".to_string(),
            Inst::Unreachable => "unreachable".to_string(),
            Inst::Bin { op, lhs: l, rhs } => lhs(format!(
                "{} {} {}, {}",
                op.name(),
                self.types.display(self.value_type(f, *l)),
                self.value_text(*l),
                self.value_text(*rhs)
            )),
            Inst::Cmp { pred, lhs: l, rhs } => lhs(format!(
                "{} {} {}, {}",
                pred.name(),
                self.types.display(self.value_type(f, *l)),
                self.value_text(*l),
                self.value_text(*rhs)
            )),
            Inst::Malloc { elem_ty, count } => lhs(match count {
                Some(c) => format!(
                    "malloc {}, uint {}",
                    self.types.display(*elem_ty),
                    self.value_text(*c)
                ),
                None => format!("malloc {}", self.types.display(*elem_ty)),
            }),
            Inst::Alloca { elem_ty, count } => lhs(match count {
                Some(c) => format!(
                    "alloca {}, uint {}",
                    self.types.display(*elem_ty),
                    self.value_text(*c)
                ),
                None => format!("alloca {}", self.types.display(*elem_ty)),
            }),
            Inst::Free(p) => format!("free {}", self.typed_value(f, *p)),
            Inst::Load { ptr } => lhs(format!("load {}", self.typed_value(f, *ptr))),
            Inst::Store { val, ptr } => format!(
                "store {}, {}",
                self.typed_value(f, *val),
                self.typed_value(f, *ptr)
            ),
            Inst::Gep { ptr, indices } => {
                let mut s = format!("getelementptr {}", self.typed_value(f, *ptr));
                for i in indices {
                    let _ = write!(s, ", {}", self.typed_value(f, *i));
                }
                lhs(s)
            }
            Inst::Phi { incoming } => {
                let mut s = format!("phi {} ", self.types.display(f.inst_ty(id)));
                for (i, (v, b)) in incoming.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    let _ = write!(s, "[ {}, %bb{} ]", self.value_text(*v), b.index());
                }
                lhs(s)
            }
            Inst::Call { callee, args } => {
                let mut s = format!(
                    "call {} {}(",
                    self.types.display(f.inst_ty(id)),
                    self.value_text(*callee)
                );
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&self.typed_value(f, *a));
                }
                s.push(')');
                lhs(s)
            }
            Inst::Cast { val, to } => lhs(format!(
                "cast {} to {}",
                self.typed_value(f, *val),
                self.types.display(*to)
            )),
            Inst::VaArg { ty } => lhs(format!("vaarg {}", self.types.display(*ty))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::CmpPred;

    #[test]
    fn prints_a_module() {
        let mut m = Module::new("demo");
        let i32t = m.types.i32();
        let init = m.consts.i32(42);
        let g = m.add_global("G", i32t, Some(init), false, Linkage::External);
        let f = m.add_function("main", &[], i32t, false, Linkage::External);
        let mut b = m.builder(f);
        b.block();
        let ga = b.global_addr(g);
        let x = b.load(ga);
        let one = b.iconst32(1);
        let y = b.add(x, one);
        let c = b.cmp(CmpPred::Gt, y, one);
        let t = b.new_block();
        let e = b.new_block();
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.ret(Some(y));
        b.switch_to(e);
        b.ret(Some(one));
        let text = m.display();
        assert!(text.contains("@G = global int 42"), "{text}");
        assert!(text.contains("define int @main()"), "{text}");
        assert!(text.contains("%t0 = load int* @G"), "{text}");
        assert!(text.contains("%t1 = add int %t0, 1"), "{text}");
        assert!(
            text.contains("br bool %t2, label %bb1, label %bb2"),
            "{text}"
        );
        assert!(text.contains("ret int %t1"), "{text}");
    }

    #[test]
    fn prints_aggregates_and_floats() {
        let mut m = Module::new("agg");
        let f32t = m.types.f32();
        let at = m.types.array(f32t, 2);
        let one = m.consts.f32(1.0);
        let two = m.consts.f32(2.0);
        let arr = m.consts.array(at, vec![one, two]);
        m.add_global("A", at, Some(arr), true, Linkage::Internal);
        let text = m.display();
        assert!(
            text.contains(
                "@A = internal constant [2 x float] [ float 0x3F800000, float 0x40000000 ]"
            ),
            "{text}"
        );
    }
}
