//! A convenience builder for constructing functions instruction by
//! instruction.
//!
//! The builder owns a mutable borrow of the [`Module`] and a current
//! insertion block; every `emit` computes and caches the instruction's
//! result type via [`Module::infer_inst_type`], so malformed IR is caught at
//! construction time rather than at verification.

use crate::constant::{ConstId, FuncId, GlobalId};
use crate::inst::{BinOp, BlockId, CmpPred, Inst, InstId, Value};
use crate::module::Module;
use crate::types::{IntKind, TypeId};

/// Builder positioned inside one function of a module.
///
/// Create with [`Module::builder`]. Blocks are created with
/// [`FuncBuilder::block`]; the builder auto-positions at the most recently
/// created block, and [`FuncBuilder::switch_to`] repositions it.
///
/// # Examples
///
/// ```
/// use lpat_core::{Module, Linkage, inst::Value};
///
/// let mut m = Module::new("demo");
/// let i32t = m.types.i32();
/// let f = m.add_function("inc", &[i32t], i32t, false, Linkage::External);
/// let mut b = m.builder(f);
/// b.block();
/// let one = b.iconst32(1);
/// let sum = b.add(Value::Arg(0), one);
/// b.ret(Some(sum));
/// ```
pub struct FuncBuilder<'m> {
    module: &'m mut Module,
    func: FuncId,
    cur: Option<BlockId>,
    /// Incrementally maintained type view, so each `emit` is O(1) in the
    /// function size.
    view: FuncSigView,
}

impl Module {
    /// Start building into function `func`.
    pub fn builder(&mut self, func: FuncId) -> FuncBuilder<'_> {
        let cur = if self.func(func).is_declaration() {
            None
        } else {
            Some(BlockId::from_index(self.func(func).num_blocks() - 1))
        };
        let view = self.func(func).clone_signature_view();
        FuncBuilder {
            module: self,
            func,
            cur,
            view,
        }
    }
}

impl<'m> FuncBuilder<'m> {
    /// The function being built.
    pub fn func_id(&self) -> FuncId {
        self.func
    }

    /// The underlying module.
    pub fn module(&mut self) -> &mut Module {
        self.module
    }

    /// Create a new block and position the builder at its end.
    pub fn block(&mut self) -> BlockId {
        let b = self.module.func_mut(self.func).add_block();
        self.cur = Some(b);
        b
    }

    /// Create a new block *without* repositioning.
    pub fn new_block(&mut self) -> BlockId {
        self.module.func_mut(self.func).add_block()
    }

    /// Reposition at the end of `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = Some(b);
    }

    /// The current insertion block.
    ///
    /// # Panics
    ///
    /// Panics if no block has been created yet.
    pub fn current(&self) -> BlockId {
        self.cur.expect("builder has no current block")
    }

    /// Emit `inst` at the end of the current block, inferring its type.
    ///
    /// # Panics
    ///
    /// Panics when type inference fails — the instruction is malformed for
    /// its operands (this is the construction-time analogue of a verifier
    /// error).
    pub fn emit(&mut self, inst: Inst) -> InstId {
        let ty = self
            .module
            .infer_inst_type_view(&self.view, &inst)
            .unwrap_or_else(|e| panic!("cannot emit {}: {e}", inst.opcode_name()));
        self.emit_typed(inst, ty)
    }

    /// Emit an instruction with an explicitly declared type (required for
    /// `phi`, allowed everywhere).
    pub fn emit_typed(&mut self, inst: Inst, ty: TypeId) -> InstId {
        let b = self.current();
        let id = self.module.func_mut(self.func).append_inst(b, inst, ty);
        debug_assert_eq!(id.index(), self.view.inst_tys.len());
        self.view.inst_tys.push(ty);
        id
    }

    // ---- constants ------------------------------------------------------

    /// Intern a typed integer constant as a [`Value`].
    pub fn iconst(&mut self, kind: IntKind, v: i64) -> Value {
        Value::Const(self.module.consts.int(kind, v))
    }

    /// Intern an `int` (signed 32-bit) constant.
    pub fn iconst32(&mut self, v: i32) -> Value {
        self.iconst(IntKind::S32, v as i64)
    }

    /// Intern a `long` (signed 64-bit) constant.
    pub fn iconst64(&mut self, v: i64) -> Value {
        self.iconst(IntKind::S64, v)
    }

    /// Intern a `uint` constant.
    pub fn uconst32(&mut self, v: u32) -> Value {
        self.iconst(IntKind::U32, v as i64)
    }

    /// Intern a `ubyte` constant (struct field index type).
    pub fn uconst8(&mut self, v: u8) -> Value {
        self.iconst(IntKind::U8, v as i64)
    }

    /// Intern a `bool` constant.
    pub fn bconst(&mut self, v: bool) -> Value {
        Value::Const(self.module.consts.bool_(v))
    }

    /// Intern a `float` constant.
    pub fn fconst32(&mut self, v: f32) -> Value {
        Value::Const(self.module.consts.f32(v))
    }

    /// Intern a `double` constant.
    pub fn fconst64(&mut self, v: f64) -> Value {
        Value::Const(self.module.consts.f64(v))
    }

    /// The null pointer of `pointee*`.
    pub fn null_ptr(&mut self, pointee: TypeId) -> Value {
        let pt = self.module.types.ptr(pointee);
        Value::Const(self.module.consts.null(pt))
    }

    /// The address of global `g`.
    pub fn global_addr(&mut self, g: GlobalId) -> Value {
        Value::Const(self.module.consts.global_addr(g))
    }

    /// The address of function `f`.
    pub fn func_addr(&mut self, f: FuncId) -> Value {
        Value::Const(self.module.consts.func_addr(f))
    }

    /// An arbitrary pool constant as a value.
    pub fn const_value(&self, c: ConstId) -> Value {
        Value::Const(c)
    }

    // ---- arithmetic -----------------------------------------------------

    /// Emit a binary operation.
    pub fn bin(&mut self, op: BinOp, lhs: Value, rhs: Value) -> Value {
        Value::Inst(self.emit(Inst::Bin { op, lhs, rhs }))
    }

    /// Emit `add`.
    pub fn add(&mut self, l: Value, r: Value) -> Value {
        self.bin(BinOp::Add, l, r)
    }
    /// Emit `sub`.
    pub fn sub(&mut self, l: Value, r: Value) -> Value {
        self.bin(BinOp::Sub, l, r)
    }
    /// Emit `mul`.
    pub fn mul(&mut self, l: Value, r: Value) -> Value {
        self.bin(BinOp::Mul, l, r)
    }
    /// Emit `div`.
    pub fn div(&mut self, l: Value, r: Value) -> Value {
        self.bin(BinOp::Div, l, r)
    }
    /// Emit `rem`.
    pub fn rem(&mut self, l: Value, r: Value) -> Value {
        self.bin(BinOp::Rem, l, r)
    }
    /// Emit `and`.
    pub fn and(&mut self, l: Value, r: Value) -> Value {
        self.bin(BinOp::And, l, r)
    }
    /// Emit `or`.
    pub fn or(&mut self, l: Value, r: Value) -> Value {
        self.bin(BinOp::Or, l, r)
    }
    /// Emit `xor`.
    pub fn xor(&mut self, l: Value, r: Value) -> Value {
        self.bin(BinOp::Xor, l, r)
    }
    /// Emit `shl`.
    pub fn shl(&mut self, l: Value, r: Value) -> Value {
        self.bin(BinOp::Shl, l, r)
    }
    /// Emit `shr`.
    pub fn shr(&mut self, l: Value, r: Value) -> Value {
        self.bin(BinOp::Shr, l, r)
    }

    /// Emit a comparison producing `bool`.
    pub fn cmp(&mut self, pred: CmpPred, lhs: Value, rhs: Value) -> Value {
        Value::Inst(self.emit(Inst::Cmp { pred, lhs, rhs }))
    }

    /// Emit a `cast` to `to`.
    pub fn cast(&mut self, val: Value, to: TypeId) -> Value {
        Value::Inst(self.emit(Inst::Cast { val, to }))
    }

    // ---- memory ---------------------------------------------------------

    /// Emit `alloca` of one `elem_ty`.
    pub fn alloca(&mut self, elem_ty: TypeId) -> Value {
        Value::Inst(self.emit(Inst::Alloca {
            elem_ty,
            count: None,
        }))
    }

    /// Emit `alloca` of `count` elements.
    pub fn alloca_n(&mut self, elem_ty: TypeId, count: Value) -> Value {
        Value::Inst(self.emit(Inst::Alloca {
            elem_ty,
            count: Some(count),
        }))
    }

    /// Emit `malloc` of one `elem_ty`.
    pub fn malloc(&mut self, elem_ty: TypeId) -> Value {
        Value::Inst(self.emit(Inst::Malloc {
            elem_ty,
            count: None,
        }))
    }

    /// Emit `malloc` of `count` elements.
    pub fn malloc_n(&mut self, elem_ty: TypeId, count: Value) -> Value {
        Value::Inst(self.emit(Inst::Malloc {
            elem_ty,
            count: Some(count),
        }))
    }

    /// Emit `free`.
    pub fn free(&mut self, ptr: Value) {
        self.emit(Inst::Free(ptr));
    }

    /// Emit `load` through `ptr`.
    pub fn load(&mut self, ptr: Value) -> Value {
        Value::Inst(self.emit(Inst::Load { ptr }))
    }

    /// Emit `store` of `val` through `ptr`.
    pub fn store(&mut self, val: Value, ptr: Value) {
        self.emit(Inst::Store { val, ptr });
    }

    /// Emit `getelementptr`.
    pub fn gep(&mut self, ptr: Value, indices: Vec<Value>) -> Value {
        Value::Inst(self.emit(Inst::Gep { ptr, indices }))
    }

    /// Emit the common two-index struct-field GEP `&ptr[0].field`.
    pub fn gep_field(&mut self, ptr: Value, field: u8) -> Value {
        let zero = self.iconst64(0);
        let idx = self.uconst8(field);
        self.gep(ptr, vec![zero, idx])
    }

    /// Emit the common array-element GEP `&ptr[index]` (pointer as array).
    pub fn gep_index(&mut self, ptr: Value, index: Value) -> Value {
        self.gep(ptr, vec![index])
    }

    // ---- calls & control flow --------------------------------------------

    /// Emit a direct `call` to function `callee`.
    pub fn call(&mut self, callee: FuncId, args: Vec<Value>) -> Value {
        let c = self.func_addr(callee);
        self.call_ptr(c, args)
    }

    /// Emit an indirect `call` through a function-pointer value.
    pub fn call_ptr(&mut self, callee: Value, args: Vec<Value>) -> Value {
        Value::Inst(self.emit(Inst::Call { callee, args }))
    }

    /// Emit a direct `invoke` with normal and unwind successors.
    pub fn invoke(
        &mut self,
        callee: FuncId,
        args: Vec<Value>,
        normal: BlockId,
        unwind: BlockId,
    ) -> Value {
        let c = self.func_addr(callee);
        Value::Inst(self.emit(Inst::Invoke {
            callee: c,
            args,
            normal,
            unwind,
        }))
    }

    /// Emit `ret`.
    pub fn ret(&mut self, v: Option<Value>) {
        self.emit(Inst::Ret(v));
    }

    /// Emit an unconditional branch.
    pub fn br(&mut self, b: BlockId) {
        self.emit(Inst::Br(b));
    }

    /// Emit a conditional branch.
    pub fn cond_br(&mut self, cond: Value, then_bb: BlockId, else_bb: BlockId) {
        self.emit(Inst::CondBr {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Emit a `switch`.
    pub fn switch(&mut self, val: Value, default: BlockId, cases: Vec<(ConstId, BlockId)>) {
        self.emit(Inst::Switch {
            val,
            default,
            cases,
        });
    }

    /// Emit `unwind` (throw).
    pub fn unwind(&mut self) {
        self.emit(Inst::Unwind);
    }

    /// Emit `unreachable`.
    pub fn unreachable(&mut self) {
        self.emit(Inst::Unreachable);
    }

    /// Emit a `phi` with declared type `ty`.
    pub fn phi(&mut self, ty: TypeId, incoming: Vec<(Value, BlockId)>) -> Value {
        Value::Inst(self.emit_typed(Inst::Phi { incoming }, ty))
    }

    /// Emit `vaarg` fetching the next variadic argument at type `ty`.
    pub fn vaarg(&mut self, ty: TypeId) -> Value {
        Value::Inst(self.emit_typed(Inst::VaArg { ty }, ty))
    }
}

// The builder needs to infer types while holding &mut Module; a full clone of
// the function per emit would be quadratic. Instead we expose a lightweight
// read-only "signature view" capturing just what inference needs.

/// A cheap view of the data [`Module::infer_inst_type`] needs about the
/// enclosing function: parameter types and the instruction-type table.
#[derive(Clone)]
pub struct FuncSigView {
    params: Vec<TypeId>,
    inst_tys: Vec<TypeId>,
}

impl crate::function::Function {
    /// Capture a [`FuncSigView`] of this function.
    pub fn clone_signature_view(&self) -> FuncSigView {
        FuncSigView {
            params: self.params().to_vec(),
            inst_tys: (0..self.num_inst_slots())
                .map(|i| self.inst_ty(InstId::from_index(i)))
                .collect(),
        }
    }
}

impl Module {
    /// `value_type` against a [`FuncSigView`] instead of a `&Function`.
    pub fn value_type_view(&self, f: &FuncSigView, v: Value) -> TypeId {
        match v {
            Value::Inst(i) => f.inst_tys[i.index()],
            Value::Arg(n) => f.params[n as usize],
            Value::Const(c) => self.const_type(c),
        }
    }

    /// `infer_inst_type` against a [`FuncSigView`].
    pub fn infer_inst_type_view(&mut self, f: &FuncSigView, inst: &Inst) -> Result<TypeId, String> {
        use crate::types::Type;
        Ok(match inst {
            Inst::Ret(_)
            | Inst::Br(_)
            | Inst::CondBr { .. }
            | Inst::Switch { .. }
            | Inst::Unwind
            | Inst::Unreachable
            | Inst::Free(_)
            | Inst::Store { .. } => self.types.void(),
            Inst::Bin { lhs, .. } => self.value_type_view(f, *lhs),
            Inst::Cmp { .. } => self.types.bool_(),
            Inst::Malloc { elem_ty, .. } | Inst::Alloca { elem_ty, .. } => self.types.ptr(*elem_ty),
            Inst::Load { ptr } => {
                let pt = self.value_type_view(f, *ptr);
                self.types
                    .pointee(pt)
                    .ok_or_else(|| "load from non-pointer".to_string())?
            }
            Inst::Gep { ptr, indices } => {
                let base = self.value_type_view(f, *ptr);
                let mut cur = self
                    .types
                    .pointee(base)
                    .ok_or_else(|| "getelementptr base is not a pointer".to_string())?;
                let mut it = indices.iter();
                if it.next().is_some() {
                    for &idx in it {
                        match self.types.ty(cur).clone() {
                            Type::Struct { fields, .. } => {
                                let c = match idx {
                                    Value::Const(c) => c,
                                    _ => return Err("struct index must be a constant".into()),
                                };
                                let (_, v) = self.consts.as_int(c).ok_or_else(|| {
                                    "struct index must be an integer constant".to_string()
                                })?;
                                let fi = v as usize;
                                if fi >= fields.len() {
                                    return Err(format!("struct index {fi} out of range"));
                                }
                                cur = fields[fi];
                            }
                            Type::Array { elem, .. } => cur = elem,
                            _ => {
                                return Err(format!(
                                    "cannot index into non-aggregate type {}",
                                    self.types.display(cur)
                                ))
                            }
                        }
                    }
                }
                self.types.ptr(cur)
            }
            Inst::Call { callee, .. } | Inst::Invoke { callee, .. } => {
                let ct = self.value_type_view(f, *callee);
                let fnty = self
                    .types
                    .pointee(ct)
                    .ok_or_else(|| "call through non-pointer".to_string())?;
                self.types
                    .func_ret(fnty)
                    .ok_or_else(|| "call through pointer to non-function".to_string())?
            }
            Inst::Cast { to, .. } => *to,
            Inst::Phi { .. } => return Err("phi type must be declared".into()),
            Inst::VaArg { ty } => *ty,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Linkage;
    use crate::inst::CmpPred;

    #[test]
    fn builds_a_loop() {
        // int sum(int n) { s = 0; for (i = 0; i < n; i++) s += i; return s; }
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let f = m.add_function("sum", &[i32t], i32t, false, Linkage::External);
        let mut b = m.builder(f);
        let entry = b.block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.switch_to(entry);
        let zero = b.iconst32(0);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(i32t, vec![(zero, entry)]);
        let s = b.phi(i32t, vec![(zero, entry)]);
        let c = b.cmp(CmpPred::Lt, i, Value::Arg(0));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let s2 = b.add(s, i);
        let one = b.iconst32(1);
        let i2 = b.add(i, one);
        b.br(header);
        // patch the phis with the back edge
        let (iid, sid) = match (i, s) {
            (Value::Inst(a), Value::Inst(b)) => (a, b),
            _ => unreachable!(),
        };
        let fm = m.func_mut(f);
        if let Inst::Phi { incoming } = fm.inst_mut(iid) {
            incoming.push((i2, body));
        }
        if let Inst::Phi { incoming } = fm.inst_mut(sid) {
            incoming.push((s2, body));
        }
        let mut b = m.builder(f);
        b.switch_to(exit);
        b.ret(Some(s));
        assert_eq!(m.func(f).num_blocks(), 4);
        assert!(m.func(f).num_insts() >= 8);
    }

    #[test]
    #[should_panic(expected = "cannot emit load")]
    fn emit_rejects_ill_typed() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let f = m.add_function("f", &[i32t], i32t, false, Linkage::External);
        let mut b = m.builder(f);
        b.block();
        b.load(Value::Arg(0)); // loading through an int: type error
    }

    #[test]
    fn gep_helpers() {
        let mut m = Module::new("m");
        let s = m.types.struct_lit(vec![m.types.i32(), m.types.f64()]);
        let ps = m.types.ptr(s);
        let v = m.types.void();
        let f = m.add_function("f", &[ps], v, false, Linkage::External);
        let mut b = m.builder(f);
        b.block();
        let p = b.gep_field(Value::Arg(0), 1);
        b.ret(None);
        let fr = m.func(f);
        let pt = m.value_type(fr, p);
        assert_eq!(m.types.pointee(pt), Some(m.types.f64()));
    }
}
