//! The instruction set (paper §2.1).
//!
//! The representation captures the key operations of ordinary processors in a
//! small, RISC-like, three-address instruction set of 31 opcodes, avoiding
//! machine-specific constraints. Virtual registers are typed and in SSA form;
//! memory is accessed only through `load`/`store` with typed pointers.
//!
//! The opcode inventory maps onto the paper's 31 as follows: terminators
//! `ret`, `br` (covering conditional and unconditional), `switch`, `invoke`,
//! `unwind`; binary arithmetic `add sub mul div rem`; comparisons `seteq
//! setne setlt setgt setle setge` (six set-condition opcodes, here one
//! [`Inst::Cmp`] with a [`CmpPred`]); bitwise `and or xor shl shr`; memory
//! `malloc free alloca load store getelementptr`; and `phi cast call`
//! plus the variadic-access pair (`vaarg`/`vanext`), which we model with the
//! [`Inst::VaArg`] instruction. [`Inst::Unreachable`] is a convenience
//! terminator (added to LLVM itself shortly after the paper) used by
//! optimizers.

use crate::constant::ConstId;
use crate::types::TypeId;
use std::fmt;

/// Handle to a basic block within a [`crate::Function`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// Raw per-function index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Rebuild from a raw index (for deserializers and dense tables).
    #[inline]
    pub fn from_index(i: usize) -> BlockId {
        BlockId(i as u32)
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Handle to an instruction within a [`crate::Function`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub(crate) u32);

impl InstId {
    /// Raw per-function index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
    /// Rebuild from a raw index (for deserializers and dense tables).
    #[inline]
    pub fn from_index(i: usize) -> InstId {
        InstId(i as u32)
    }
}

impl fmt::Debug for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An SSA operand: the result of an instruction, a function argument, or a
/// constant.
///
/// `Value` is a small `Copy` enum — the idiomatic Rust stand-in for LLVM's
/// `Value*`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// The result of instruction `InstId` in the enclosing function.
    Inst(InstId),
    /// The `n`-th formal argument of the enclosing function.
    Arg(u32),
    /// An interned constant (including global/function addresses).
    Const(ConstId),
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Inst(i) => write!(f, "%{i:?}"),
            Value::Arg(n) => write!(f, "%a{n}"),
            Value::Const(c) => write!(f, "{c:?}"),
        }
    }
}

impl From<InstId> for Value {
    fn from(i: InstId) -> Value {
        Value::Inst(i)
    }
}

impl From<ConstId> for Value {
    fn from(c: ConstId) -> Value {
        Value::Const(c)
    }
}

/// Binary arithmetic and bitwise opcodes.
///
/// Opcodes are overloaded over operand type: `add` works on any integer or
/// floating-point type (this is part of why 31 opcodes suffice). There are no
/// unary operators: `not` and `neg` are expressed via `xor` and `sub`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum BinOp {
    /// Addition (int or float).
    Add,
    /// Subtraction (int or float).
    Sub,
    /// Multiplication (int or float).
    Mul,
    /// Division; signedness comes from the operand type (int or float).
    Div,
    /// Remainder; signedness comes from the operand type (int or float).
    Rem,
    /// Bitwise and (int or bool).
    And,
    /// Bitwise or (int or bool).
    Or,
    /// Bitwise xor (int or bool).
    Xor,
    /// Shift left (int).
    Shl,
    /// Shift right; arithmetic for signed types, logical for unsigned (int).
    Shr,
}

impl BinOp {
    /// All binary opcodes.
    pub const ALL: [BinOp; 10] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
    ];

    /// Assembly mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }

    /// Parse a mnemonic.
    pub fn from_name(s: &str) -> Option<BinOp> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "div" => BinOp::Div,
            "rem" => BinOp::Rem,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "shr" => BinOp::Shr,
            _ => return None,
        })
    }

    /// Whether the operation is valid on floating-point operands.
    pub fn allows_float(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem
        )
    }

    /// Whether the operation is valid on `bool` operands.
    pub fn allows_bool(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or | BinOp::Xor)
    }

    /// Whether the operation is commutative (used by reassociation and GVN).
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }
}

/// Comparison predicates: the six set-condition opcodes (`seteq`, `setne`,
/// `setlt`, `setgt`, `setle`, `setge`). All produce `bool`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum CmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than (signedness from operand type).
    Lt,
    /// Greater than.
    Gt,
    /// Less than or equal.
    Le,
    /// Greater than or equal.
    Ge,
}

impl CmpPred {
    /// All predicates.
    pub const ALL: [CmpPred; 6] = [
        CmpPred::Eq,
        CmpPred::Ne,
        CmpPred::Lt,
        CmpPred::Gt,
        CmpPred::Le,
        CmpPred::Ge,
    ];

    /// Assembly mnemonic (`seteq`, ...).
    pub fn name(self) -> &'static str {
        match self {
            CmpPred::Eq => "seteq",
            CmpPred::Ne => "setne",
            CmpPred::Lt => "setlt",
            CmpPred::Gt => "setgt",
            CmpPred::Le => "setle",
            CmpPred::Ge => "setge",
        }
    }

    /// Parse a mnemonic.
    pub fn from_name(s: &str) -> Option<CmpPred> {
        Some(match s {
            "seteq" => CmpPred::Eq,
            "setne" => CmpPred::Ne,
            "setlt" => CmpPred::Lt,
            "setgt" => CmpPred::Gt,
            "setle" => CmpPred::Le,
            "setge" => CmpPred::Ge,
            _ => return None,
        })
    }

    /// The predicate with operands swapped (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> CmpPred {
        match self {
            CmpPred::Eq => CmpPred::Eq,
            CmpPred::Ne => CmpPred::Ne,
            CmpPred::Lt => CmpPred::Gt,
            CmpPred::Gt => CmpPred::Lt,
            CmpPred::Le => CmpPred::Ge,
            CmpPred::Ge => CmpPred::Le,
        }
    }

    /// The logical negation of the predicate.
    pub fn negated(self) -> CmpPred {
        match self {
            CmpPred::Eq => CmpPred::Ne,
            CmpPred::Ne => CmpPred::Eq,
            CmpPred::Lt => CmpPred::Ge,
            CmpPred::Gt => CmpPred::Le,
            CmpPred::Le => CmpPred::Gt,
            CmpPred::Ge => CmpPred::Lt,
        }
    }
}

/// An instruction.
///
/// Most instructions are in three-address form: one or two operands, one
/// result. Terminators end a basic block and explicitly name their successor
/// blocks, making the CFG explicit in the representation.
#[derive(Clone, PartialEq, Debug)]
pub enum Inst {
    // ---- terminators ---------------------------------------------------
    /// Return, optionally with a value.
    Ret(Option<Value>),
    /// Unconditional branch.
    Br(BlockId),
    /// Conditional branch on a `bool`.
    CondBr {
        /// Condition (type `bool`).
        cond: Value,
        /// Successor when true.
        then_bb: BlockId,
        /// Successor when false.
        else_bb: BlockId,
    },
    /// Multi-way branch on an integer.
    Switch {
        /// Scrutinee (integer type).
        val: Value,
        /// Default successor.
        default: BlockId,
        /// `(case constant, successor)` pairs; case constants have the
        /// scrutinee's type.
        cases: Vec<(ConstId, BlockId)>,
    },
    /// Call that exposes exceptional control flow: control transfers to
    /// `normal` on ordinary return and to `unwind` when the callee (or
    /// anything it calls) executes [`Inst::Unwind`] (paper §2.4).
    Invoke {
        /// Callee: a function address or any value of function-pointer type.
        callee: Value,
        /// Actual arguments.
        args: Vec<Value>,
        /// Successor on normal return.
        normal: BlockId,
        /// Successor when an unwind reaches this activation record.
        unwind: BlockId,
    },
    /// Throw: logically unwinds the stack until an activation record created
    /// by an `invoke` is removed, then transfers control to that invoke's
    /// unwind successor.
    Unwind,
    /// Marks a point that cannot be reached; used after calls that never
    /// return and by optimizers.
    Unreachable,

    // ---- three-address operations --------------------------------------
    /// Binary arithmetic/bitwise operation; operands share one type, which
    /// is also the result type.
    Bin {
        /// Opcode.
        op: BinOp,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Set-condition: compare two operands of one scalar type, produce
    /// `bool`.
    Cmp {
        /// Predicate.
        pred: CmpPred,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },

    // ---- memory ---------------------------------------------------------
    /// Allocate `count` (default 1) elements of `elem_ty` on the heap;
    /// result type is `elem_ty*`.
    Malloc {
        /// Element type.
        elem_ty: TypeId,
        /// Optional element count (type `uint`).
        count: Option<Value>,
    },
    /// Release memory allocated by `malloc`.
    Free(Value),
    /// Allocate `count` (default 1) elements of `elem_ty` in the current
    /// stack frame; automatically freed on return. All stack-resident data
    /// (including source-level automatic variables) is allocated explicitly
    /// with `alloca`.
    Alloca {
        /// Element type.
        elem_ty: TypeId,
        /// Optional element count (type `uint`).
        count: Option<Value>,
    },
    /// Load the pointee of a typed pointer.
    Load {
        /// Address (pointer type).
        ptr: Value,
    },
    /// Store `val` through a typed pointer. No indexing: addresses are
    /// computed separately by `getelementptr`.
    Store {
        /// Value to store.
        val: Value,
        /// Address (pointer to `val`'s type).
        ptr: Value,
    },
    /// Typed address arithmetic (paper §2.2): given a typed pointer to an
    /// aggregate, compute the address of a sub-element in a type-preserving,
    /// machine-independent way — effectively a combined `.` and `[]`.
    ///
    /// The first index steps over the pointer as if it pointed to an array;
    /// each later index selects a struct field (constant `ubyte`/`uint`) or
    /// an array element (any integer).
    Gep {
        /// Base pointer.
        ptr: Value,
        /// Index list.
        indices: Vec<Value>,
    },

    // ---- other -----------------------------------------------------------
    /// SSA φ-function: selects a value according to the predecessor through
    /// which control entered the block.
    Phi {
        /// `(value, predecessor)` pairs; one per CFG predecessor.
        incoming: Vec<(Value, BlockId)>,
    },
    /// Ordinary function call through a typed function pointer; abstracts
    /// away calling conventions.
    Call {
        /// Callee: function address or function-pointer value.
        callee: Value,
        /// Actual arguments.
        args: Vec<Value>,
    },
    /// Convert a value to another type; the **only** way to perform type
    /// conversions, making all of them explicit (paper §2.2).
    Cast {
        /// Source value.
        val: Value,
        /// Destination type.
        to: TypeId,
    },
    /// Access the next variadic argument of the enclosing varargs function,
    /// interpreting it at type `ty` (models the paper's `vaarg`/`vanext`
    /// pair).
    VaArg {
        /// Type at which to fetch the next variadic argument.
        ty: TypeId,
    },
}

impl Inst {
    /// Whether this instruction terminates a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Inst::Ret(_)
                | Inst::Br(_)
                | Inst::CondBr { .. }
                | Inst::Switch { .. }
                | Inst::Invoke { .. }
                | Inst::Unwind
                | Inst::Unreachable
        )
    }

    /// Whether the instruction may read or write memory or have other side
    /// effects (used by dead-code elimination).
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            Inst::Store { .. }
                | Inst::Call { .. }
                | Inst::Invoke { .. }
                | Inst::Free(_)
                | Inst::Malloc { .. } // conservatively: allocation observable
                | Inst::Alloca { .. }
                | Inst::Load { .. } // loads from volatile-unknown memory
                | Inst::VaArg { .. }
        ) || self.is_terminator()
    }

    /// The successor blocks of a terminator (empty for non-terminators).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Inst::Br(b) => vec![*b],
            Inst::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Inst::Switch { default, cases, .. } => {
                let mut v = vec![*default];
                v.extend(cases.iter().map(|(_, b)| *b));
                v
            }
            Inst::Invoke { normal, unwind, .. } => vec![*normal, *unwind],
            _ => Vec::new(),
        }
    }

    /// Visit every operand [`Value`] of this instruction.
    pub fn for_each_operand(&self, mut f: impl FnMut(Value)) {
        match self {
            Inst::Ret(Some(v)) | Inst::Free(v) => f(*v),
            Inst::Ret(None)
            | Inst::Br(_)
            | Inst::Unwind
            | Inst::Unreachable
            | Inst::VaArg { .. } => {}
            Inst::CondBr { cond, .. } => f(*cond),
            Inst::Switch { val, .. } => f(*val),
            Inst::Invoke { callee, args, .. } => {
                f(*callee);
                args.iter().copied().for_each(f);
            }
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Inst::Malloc { count, .. } | Inst::Alloca { count, .. } => {
                if let Some(c) = count {
                    f(*c)
                }
            }
            Inst::Load { ptr } => f(*ptr),
            Inst::Store { val, ptr } => {
                f(*val);
                f(*ptr);
            }
            Inst::Gep { ptr, indices } => {
                f(*ptr);
                indices.iter().copied().for_each(f);
            }
            Inst::Phi { incoming } => incoming.iter().for_each(|(v, _)| f(*v)),
            Inst::Call { callee, args } => {
                f(*callee);
                args.iter().copied().for_each(f);
            }
            Inst::Cast { val, .. } => f(*val),
        }
    }

    /// Rewrite every operand of this instruction with `f`.
    pub fn map_operands(&mut self, mut f: impl FnMut(Value) -> Value) {
        match self {
            Inst::Ret(Some(v)) | Inst::Free(v) => *v = f(*v),
            Inst::Ret(None)
            | Inst::Br(_)
            | Inst::Unwind
            | Inst::Unreachable
            | Inst::VaArg { .. } => {}
            Inst::CondBr { cond, .. } => *cond = f(*cond),
            Inst::Switch { val, .. } => *val = f(*val),
            Inst::Invoke { callee, args, .. } => {
                *callee = f(*callee);
                for a in args {
                    *a = f(*a);
                }
            }
            Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Inst::Malloc { count, .. } | Inst::Alloca { count, .. } => {
                if let Some(c) = count {
                    *c = f(*c)
                }
            }
            Inst::Load { ptr } => *ptr = f(*ptr),
            Inst::Store { val, ptr } => {
                *val = f(*val);
                *ptr = f(*ptr);
            }
            Inst::Gep { ptr, indices } => {
                *ptr = f(*ptr);
                for i in indices {
                    *i = f(*i);
                }
            }
            Inst::Phi { incoming } => {
                for (v, _) in incoming {
                    *v = f(*v);
                }
            }
            Inst::Call { callee, args } => {
                *callee = f(*callee);
                for a in args {
                    *a = f(*a);
                }
            }
            Inst::Cast { val, .. } => *val = f(*val),
        }
    }

    /// Rewrite every successor block reference with `f` (used by CFG
    /// transforms such as block merging and jump threading).
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Inst::Br(b) => *b = f(*b),
            Inst::CondBr {
                then_bb, else_bb, ..
            } => {
                *then_bb = f(*then_bb);
                *else_bb = f(*else_bb);
            }
            Inst::Switch { default, cases, .. } => {
                *default = f(*default);
                for (_, b) in cases {
                    *b = f(*b);
                }
            }
            Inst::Invoke { normal, unwind, .. } => {
                *normal = f(*normal);
                *unwind = f(*unwind);
            }
            Inst::Phi { incoming } => {
                for (_, b) in incoming {
                    *b = f(*b);
                }
            }
            _ => {}
        }
    }

    /// Number of distinct opcode mnemonics, for dense per-opcode statistics
    /// tables indexed by [`Inst::opcode_index`].
    pub const NUM_OPCODES: usize = 32;

    /// Dense index of this instruction's mnemonic in `0..NUM_OPCODES`.
    ///
    /// `br` and conditional `br` share one slot (they share a mnemonic);
    /// every [`BinOp`] and [`CmpPred`] gets its own slot. The interpreter
    /// and JIT use this to count executed instructions per opcode with a
    /// plain array instead of a hash map.
    pub fn opcode_index(&self) -> usize {
        match self {
            Inst::Ret(_) => 0,
            Inst::Br(_) | Inst::CondBr { .. } => 1,
            Inst::Switch { .. } => 2,
            Inst::Invoke { .. } => 3,
            Inst::Unwind => 4,
            Inst::Unreachable => 5,
            Inst::Malloc { .. } => 6,
            Inst::Free(_) => 7,
            Inst::Alloca { .. } => 8,
            Inst::Load { .. } => 9,
            Inst::Store { .. } => 10,
            Inst::Gep { .. } => 11,
            Inst::Phi { .. } => 12,
            Inst::Call { .. } => 13,
            Inst::Cast { .. } => 14,
            Inst::VaArg { .. } => 15,
            Inst::Bin { op, .. } => 16 + *op as usize,
            Inst::Cmp { pred, .. } => 26 + *pred as usize,
        }
    }

    /// The mnemonic for a dense opcode index produced by
    /// [`Inst::opcode_index`].
    pub fn opcode_mnemonic(index: usize) -> &'static str {
        const FIXED: [&str; 16] = [
            "ret",
            "br",
            "switch",
            "invoke",
            "unwind",
            "unreachable",
            "malloc",
            "free",
            "alloca",
            "load",
            "store",
            "getelementptr",
            "phi",
            "call",
            "cast",
            "vaarg",
        ];
        if index < 16 {
            FIXED[index]
        } else if index < 26 {
            BinOp::ALL[index - 16].name()
        } else {
            CmpPred::ALL[index - 26].name()
        }
    }

    /// The opcode mnemonic, for diagnostics and statistics.
    pub fn opcode_name(&self) -> &'static str {
        match self {
            Inst::Ret(_) => "ret",
            Inst::Br(_) | Inst::CondBr { .. } => "br",
            Inst::Switch { .. } => "switch",
            Inst::Invoke { .. } => "invoke",
            Inst::Unwind => "unwind",
            Inst::Unreachable => "unreachable",
            Inst::Bin { op, .. } => op.name(),
            Inst::Cmp { pred, .. } => pred.name(),
            Inst::Malloc { .. } => "malloc",
            Inst::Free(_) => "free",
            Inst::Alloca { .. } => "alloca",
            Inst::Load { .. } => "load",
            Inst::Store { .. } => "store",
            Inst::Gep { .. } => "getelementptr",
            Inst::Phi { .. } => "phi",
            Inst::Call { .. } => "call",
            Inst::Cast { .. } => "cast",
            Inst::VaArg { .. } => "vaarg",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminator_classification() {
        assert!(Inst::Ret(None).is_terminator());
        assert!(Inst::Unwind.is_terminator());
        assert!(Inst::Br(BlockId(0)).is_terminator());
        assert!(!Inst::Load { ptr: Value::Arg(0) }.is_terminator());
    }

    #[test]
    fn successors_of_switch() {
        let s = Inst::Switch {
            val: Value::Arg(0),
            default: BlockId(1),
            cases: vec![(ConstId(0), BlockId(2)), (ConstId(1), BlockId(3))],
        };
        assert_eq!(s.successors(), vec![BlockId(1), BlockId(2), BlockId(3)]);
    }

    #[test]
    fn operand_iteration_and_mapping() {
        let mut i = Inst::Store {
            val: Value::Arg(0),
            ptr: Value::Arg(1),
        };
        let mut seen = Vec::new();
        i.for_each_operand(|v| seen.push(v));
        assert_eq!(seen, vec![Value::Arg(0), Value::Arg(1)]);
        i.map_operands(|v| match v {
            Value::Arg(0) => Value::Arg(7),
            other => other,
        });
        match i {
            Inst::Store { val, ptr } => {
                assert_eq!(val, Value::Arg(7));
                assert_eq!(ptr, Value::Arg(1));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn pred_algebra() {
        for p in CmpPred::ALL {
            assert_eq!(p.swapped().swapped(), p);
            assert_eq!(p.negated().negated(), p);
        }
        assert_eq!(CmpPred::Lt.swapped(), CmpPred::Gt);
        assert_eq!(CmpPred::Le.negated(), CmpPred::Gt);
    }

    #[test]
    fn opcode_index_roundtrips_to_name() {
        let samples: Vec<Inst> = vec![
            Inst::Ret(None),
            Inst::Br(BlockId(0)),
            Inst::CondBr {
                cond: Value::Arg(0),
                then_bb: BlockId(0),
                else_bb: BlockId(1),
            },
            Inst::Unwind,
            Inst::Load { ptr: Value::Arg(0) },
            Inst::Bin {
                op: BinOp::Shr,
                lhs: Value::Arg(0),
                rhs: Value::Arg(1),
            },
            Inst::Cmp {
                pred: CmpPred::Ge,
                lhs: Value::Arg(0),
                rhs: Value::Arg(1),
            },
            Inst::VaArg {
                ty: crate::types::TypeId(0),
            },
        ];
        for i in &samples {
            let idx = i.opcode_index();
            assert!(idx < Inst::NUM_OPCODES);
            assert_eq!(Inst::opcode_mnemonic(idx), i.opcode_name());
        }
        // Every dense slot has a distinct mnemonic.
        let names: std::collections::HashSet<&str> =
            (0..Inst::NUM_OPCODES).map(Inst::opcode_mnemonic).collect();
        assert_eq!(names.len(), Inst::NUM_OPCODES);
    }

    #[test]
    fn map_successors_rewrites_phis_too() {
        let mut phi = Inst::Phi {
            incoming: vec![(Value::Arg(0), BlockId(0)), (Value::Arg(1), BlockId(1))],
        };
        phi.map_successors(|b| if b == BlockId(0) { BlockId(5) } else { b });
        match phi {
            Inst::Phi { incoming } => {
                assert_eq!(incoming[0].1, BlockId(5));
                assert_eq!(incoming[1].1, BlockId(1));
            }
            _ => unreachable!(),
        }
    }
}
