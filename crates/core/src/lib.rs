//! # lpat-core — the code representation
//!
//! The in-memory form of the `lpat` representation: a low-level, typed,
//! SSA-based instruction set modeled on the one described in
//! *LLVM: A Compilation Framework for Lifelong Program Analysis &
//! Transformation* (Lattner & Adve, CGO 2004).
//!
//! The representation describes a program using an abstract RISC-like
//! instruction set (31 opcodes) augmented with the key higher-level
//! information needed for effective analysis:
//!
//! * a **language-independent type system** (primitives plus pointer,
//!   array, struct, and function types) — [`types`];
//! * **typed address arithmetic** via `getelementptr` and explicit type
//!   conversions via `cast` — [`inst`];
//! * an **explicit CFG** and an explicit SSA dataflow representation with
//!   an infinite, typed virtual register set — [`function`];
//! * a **unified memory model**: all addressable objects are explicitly
//!   allocated (`malloc`/`alloca`), globals and functions are symbols
//!   providing *addresses* — [`module`];
//! * two low-level **exception-handling** primitives, `invoke` and
//!   `unwind`, that expose exceptional control flow in the CFG — [`inst`].
//!
//! Three equivalent forms exist: this in-memory form, the textual form
//! (printed here, parsed by `lpat-asm`), and the compact binary form
//! (`lpat-bytecode`).
//!
//! # Examples
//!
//! ```
//! use lpat_core::{Module, Linkage, inst::{Value, CmpPred}};
//!
//! // int abs(int x) { return x < 0 ? -x : x; }
//! let mut m = Module::new("example");
//! let i32t = m.types.i32();
//! let f = m.add_function("abs", &[i32t], i32t, false, Linkage::External);
//! let mut b = m.builder(f);
//! let entry = b.block();
//! let neg_bb = b.new_block();
//! let pos_bb = b.new_block();
//! let zero = b.iconst32(0);
//! let is_neg = b.cmp(CmpPred::Lt, Value::Arg(0), zero);
//! b.cond_br(is_neg, neg_bb, pos_bb);
//! b.switch_to(neg_bb);
//! let negated = b.sub(zero, Value::Arg(0));
//! b.ret(Some(negated));
//! b.switch_to(pos_bb);
//! b.ret(Some(Value::Arg(0)));
//! m.verify().expect("well-formed IR");
//! println!("{}", m.display());
//! # let _ = entry;
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod constant;
pub mod fault;
pub mod fold;
pub mod function;
pub mod hash;
pub mod inst;
pub mod module;
pub mod print;
pub mod trace;
pub mod types;
pub mod verify;

pub use builder::FuncBuilder;
pub use constant::{Const, ConstId, ConstPool, FuncId, GlobalId};
pub use fault::{FaultAction, FaultPlan, FaultSpec};
pub use function::{Function, InstData, Linkage};
pub use inst::{BinOp, BlockId, CmpPred, Inst, InstId, Value};
pub use module::{AddrTypeTable, Global, Module};
pub use types::{IntKind, Type, TypeCtx, TypeId};
pub use verify::{Dominators, VerifyError};
