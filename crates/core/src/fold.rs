//! Constant folding over the instruction set.
//!
//! Folding is exact with respect to the VM semantics: integer arithmetic
//! wraps in the operand's kind, division by zero is never folded (it traps
//! at run time), and casts follow the `cast` instruction's conversion rules.

use crate::constant::{Const, ConstPool};
use crate::inst::{BinOp, CmpPred};
use crate::types::{IntKind, Type, TypeCtx, TypeId};

/// Fold a binary operation over two constants.
///
/// Returns `None` when the operation cannot be folded (mismatched kinds,
/// division by zero, non-scalar operands).
pub fn fold_bin(pool: &mut ConstPool, op: BinOp, lhs: &Const, rhs: &Const) -> Option<Const> {
    match (lhs, rhs) {
        (Const::Int { kind: ka, value: a }, Const::Int { kind: kb, value: b }) if ka == kb => {
            fold_int_bin(op, *ka, *a, *b)
        }
        (Const::F32(a), Const::F32(b)) => {
            let (a, b) = (f32::from_bits(*a), f32::from_bits(*b));
            let r = fold_float_bin(op, a as f64, b as f64)?;
            Some(Const::F32((r as f32).to_bits()))
        }
        (Const::F64(a), Const::F64(b)) => {
            let (a, b) = (f64::from_bits(*a), f64::from_bits(*b));
            let r = fold_float_bin(op, a, b)?;
            Some(Const::F64(r.to_bits()))
        }
        (Const::Bool(a), Const::Bool(b)) => Some(Const::Bool(match op {
            BinOp::And => *a && *b,
            BinOp::Or => *a || *b,
            BinOp::Xor => *a != *b,
            _ => return None,
        })),
        _ => {
            let _ = pool;
            None
        }
    }
}

fn fold_int_bin(op: BinOp, kind: IntKind, a: i64, b: i64) -> Option<Const> {
    let signed = kind.is_signed();
    let value = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            if signed {
                a.wrapping_div(b)
            } else {
                ((a as u64).wrapping_div(b as u64)) as i64
            }
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            if signed {
                a.wrapping_rem(b)
            } else {
                ((a as u64).wrapping_rem(b as u64)) as i64
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            let sh = (b as u64 % kind.bits() as u64) as u32;
            a.wrapping_shl(sh)
        }
        BinOp::Shr => {
            let sh = (b as u64 % kind.bits() as u64) as u32;
            if signed {
                a.wrapping_shr(sh)
            } else {
                (((a as u64) & mask(kind)).wrapping_shr(sh)) as i64
            }
        }
    };
    Some(Const::Int {
        kind,
        value: kind.canonicalize(value),
    })
}

fn mask(kind: IntKind) -> u64 {
    match kind.bits() {
        64 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

fn fold_float_bin(op: BinOp, a: f64, b: f64) -> Option<f64> {
    Some(match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        BinOp::Rem => a % b,
        _ => return None,
    })
}

/// Fold a comparison over two constants, producing a boolean.
pub fn fold_cmp(pred: CmpPred, lhs: &Const, rhs: &Const) -> Option<bool> {
    use std::cmp::Ordering;
    let ord = match (lhs, rhs) {
        (Const::Int { kind: ka, value: a }, Const::Int { kind: kb, value: b }) if ka == kb => {
            if ka.is_signed() {
                a.cmp(b)
            } else {
                (*a as u64).cmp(&(*b as u64))
            }
        }
        (Const::Bool(a), Const::Bool(b)) => a.cmp(b),
        (Const::F32(a), Const::F32(b)) => f32::from_bits(*a).partial_cmp(&f32::from_bits(*b))?,
        (Const::F64(a), Const::F64(b)) => f64::from_bits(*a).partial_cmp(&f64::from_bits(*b))?,
        (Const::Null(_), Const::Null(_)) => Ordering::Equal,
        // A global's address is never null.
        (Const::GlobalAddr(_) | Const::FuncAddr(_), Const::Null(_)) => Ordering::Greater,
        (Const::Null(_), Const::GlobalAddr(_) | Const::FuncAddr(_)) => Ordering::Less,
        (Const::GlobalAddr(a), Const::GlobalAddr(b)) if a == b => Ordering::Equal,
        (Const::FuncAddr(a), Const::FuncAddr(b)) if a == b => Ordering::Equal,
        _ => return None,
    };
    Some(match pred {
        CmpPred::Eq => ord == Ordering::Equal,
        CmpPred::Ne => ord != Ordering::Equal,
        CmpPred::Lt => ord == Ordering::Less,
        CmpPred::Gt => ord == Ordering::Greater,
        CmpPred::Le => ord != Ordering::Greater,
        CmpPred::Ge => ord != Ordering::Less,
    })
}

/// Fold a `cast` of a constant to type `to`.
///
/// Conversion semantics: int→int re-canonicalizes (truncate / extend with
/// the *source* signedness); int↔float converts numerically; anything→bool
/// compares against zero; bool→int is 0/1; null→int is 0.
pub fn fold_cast(tc: &TypeCtx, c: &Const, to: TypeId) -> Option<Const> {
    let to_ty = tc.ty(to).clone();
    match (c, &to_ty) {
        // Identity-ish pointer casts.
        (Const::Null(_), Type::Ptr(_)) => Some(Const::Null(to)),
        (Const::Undef(_), _) => Some(Const::Undef(to)),
        (Const::GlobalAddr(_) | Const::FuncAddr(_), Type::Ptr(_)) => Some(c.clone()),
        (Const::Null(_), Type::Int(k)) => Some(Const::Int { kind: *k, value: 0 }),
        (Const::Null(_), Type::Bool) => Some(Const::Bool(false)),
        (Const::Int { value, .. }, Type::Bool) => Some(Const::Bool(*value != 0)),
        (Const::Int { kind, value }, Type::Int(k2)) => {
            // Extension uses the *source* signedness: the canonical payload
            // already is the sign/zero-extended 64-bit image.
            let _ = kind;
            Some(Const::Int {
                kind: *k2,
                value: k2.canonicalize(*value),
            })
        }
        (Const::Int { kind, value }, Type::F32) => {
            let v = if kind.is_signed() {
                *value as f64
            } else {
                (*value as u64) as f64
            };
            Some(Const::F32((v as f32).to_bits()))
        }
        (Const::Int { kind, value }, Type::F64) => {
            let v = if kind.is_signed() {
                *value as f64
            } else {
                (*value as u64) as f64
            };
            Some(Const::F64(v.to_bits()))
        }
        (Const::Bool(b), Type::Int(k)) => Some(Const::Int {
            kind: *k,
            value: *b as i64,
        }),
        (Const::Bool(b), Type::Bool) => Some(Const::Bool(*b)),
        (Const::F32(bits), t) => fold_float_cast(f32::from_bits(*bits) as f64, t, to),
        (Const::F64(bits), t) => fold_float_cast(f64::from_bits(*bits), t, to),
        _ => None,
    }
}

fn fold_float_cast(v: f64, to_ty: &Type, to: TypeId) -> Option<Const> {
    match to_ty {
        Type::F32 => Some(Const::F32((v as f32).to_bits())),
        Type::F64 => Some(Const::F64(v.to_bits())),
        Type::Bool => Some(Const::Bool(v != 0.0)),
        Type::Int(k) => {
            let value = if k.is_signed() {
                let clamped = v.clamp(i64::MIN as f64, i64::MAX as f64);
                clamped as i64
            } else {
                let clamped = v.clamp(0.0, u64::MAX as f64);
                clamped as u64 as i64
            };
            Some(Const::Int {
                kind: *k,
                value: k.canonicalize(value),
            })
        }
        _ => {
            let _ = to;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ic(kind: IntKind, v: i64) -> Const {
        Const::Int {
            kind,
            value: kind.canonicalize(v),
        }
    }

    #[test]
    fn int_arith_wraps() {
        let mut p = ConstPool::new();
        let r = fold_bin(
            &mut p,
            BinOp::Add,
            &ic(IntKind::U8, 200),
            &ic(IntKind::U8, 100),
        );
        assert_eq!(r, Some(ic(IntKind::U8, 44)));
        let r = fold_bin(
            &mut p,
            BinOp::Mul,
            &ic(IntKind::S8, 64),
            &ic(IntKind::S8, 2),
        );
        assert_eq!(r, Some(ic(IntKind::S8, -128)));
    }

    #[test]
    fn signedness_of_div_and_shr() {
        let mut p = ConstPool::new();
        let r = fold_bin(
            &mut p,
            BinOp::Div,
            &ic(IntKind::S32, -7),
            &ic(IntKind::S32, 2),
        );
        assert_eq!(r, Some(ic(IntKind::S32, -3)));
        let r = fold_bin(
            &mut p,
            BinOp::Div,
            &ic(IntKind::U32, -7),
            &ic(IntKind::U32, 2),
        );
        assert_eq!(r, Some(ic(IntKind::U32, 0x7FFF_FFFC)));
        let r = fold_bin(
            &mut p,
            BinOp::Shr,
            &ic(IntKind::S32, -8),
            &ic(IntKind::S32, 1),
        );
        assert_eq!(r, Some(ic(IntKind::S32, -4)));
        let r = fold_bin(
            &mut p,
            BinOp::Shr,
            &ic(IntKind::U32, -8),
            &ic(IntKind::U32, 1),
        );
        assert_eq!(r, Some(ic(IntKind::U32, 0x7FFF_FFFC)));
    }

    #[test]
    fn div_by_zero_not_folded() {
        let mut p = ConstPool::new();
        assert_eq!(
            fold_bin(
                &mut p,
                BinOp::Div,
                &ic(IntKind::S32, 1),
                &ic(IntKind::S32, 0)
            ),
            None
        );
        assert_eq!(
            fold_bin(&mut p, BinOp::Rem, &ic(IntKind::U8, 1), &ic(IntKind::U8, 0)),
            None
        );
    }

    #[test]
    fn unsigned_compare() {
        assert_eq!(
            fold_cmp(CmpPred::Lt, &ic(IntKind::U8, 200), &ic(IntKind::U8, 100)),
            Some(false)
        );
        assert_eq!(
            fold_cmp(CmpPred::Lt, &ic(IntKind::S8, 200), &ic(IntKind::S8, 100)),
            Some(true) // 200 canonicalizes to -56
        );
    }

    #[test]
    fn float_and_nan() {
        let a = Const::F64(1.5f64.to_bits());
        let b = Const::F64(2.5f64.to_bits());
        assert_eq!(fold_cmp(CmpPred::Lt, &a, &b), Some(true));
        let nan = Const::F64(f64::NAN.to_bits());
        assert_eq!(fold_cmp(CmpPred::Lt, &a, &nan), None); // unordered: stay conservative
    }

    #[test]
    fn casts() {
        let tc = TypeCtx::new();
        let c = fold_cast(&tc, &ic(IntKind::S32, -1), tc.u8()).unwrap();
        assert_eq!(c, ic(IntKind::U8, 255));
        let c = fold_cast(&tc, &ic(IntKind::S32, -2), tc.f64()).unwrap();
        assert_eq!(c, Const::F64((-2.0f64).to_bits()));
        let c = fold_cast(&tc, &Const::F64(3.9f64.to_bits()), tc.i32()).unwrap();
        assert_eq!(c, ic(IntKind::S32, 3));
        let c = fold_cast(&tc, &ic(IntKind::S32, 5), tc.bool_()).unwrap();
        assert_eq!(c, Const::Bool(true));
        // unsigned extension uses source signedness via canonical payload
        let c = fold_cast(&tc, &ic(IntKind::U8, 200), tc.i32()).unwrap();
        assert_eq!(c, ic(IntKind::S32, 200));
        let c = fold_cast(&tc, &ic(IntKind::S8, -1), tc.u32()).unwrap();
        assert_eq!(c, ic(IntKind::U32, -1)); // 0xFFFFFFFF
    }
}
