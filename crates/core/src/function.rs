//! Functions: explicit CFGs of basic blocks holding SSA instructions.
//!
//! A function is a set of basic blocks; each basic block is a sequence of
//! instructions ending in exactly one terminator, and each terminator
//! explicitly names its successors (paper §2.1). Instructions live in a
//! per-function arena indexed by [`InstId`]; blocks hold ordered lists of
//! instruction ids. This id-based layout is the idiomatic Rust analogue of
//! LLVM's intrusive pointer-linked lists.

use crate::constant::ConstId;
use crate::inst::{BlockId, Inst, InstId, Value};
use crate::types::TypeId;

/// Symbol linkage of a function or global variable.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum Linkage {
    /// Visible to other modules; participates in link-time symbol
    /// resolution.
    #[default]
    External,
    /// Local to its module; renameable and eligible for aggressive
    /// interprocedural optimization (e.g. dead-global elimination after
    /// internalization).
    Internal,
}

/// A basic block: an ordered list of instructions, the last of which is a
/// terminator once the function is complete.
#[derive(Clone, Debug, Default)]
pub struct Block {
    insts: Vec<InstId>,
}

/// Per-instruction arena record: the instruction and its (cached) result
/// type. Instructions that produce no value have type `void`.
#[derive(Clone, Debug)]
pub struct InstData {
    /// The instruction.
    pub inst: Inst,
    /// Result type, fixed at creation.
    pub ty: TypeId,
}

/// A function definition or declaration.
///
/// A function with no basic blocks is a *declaration* (an external symbol to
/// be resolved at link time).
#[derive(Clone, Debug)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// The function type (a `Type::Func` id in the owning module's context).
    ty: TypeId,
    /// Pointer-to-function type, pre-interned so `value_type` needs no
    /// mutation.
    addr_ty: TypeId,
    /// Linkage.
    pub linkage: Linkage,
    /// Parameter types (copied out of `ty` for cheap access).
    params: Vec<TypeId>,
    /// Return type (copied out of `ty`).
    ret: TypeId,
    /// Whether the function is variadic.
    varargs: bool,
    blocks: Vec<Block>,
    insts: Vec<InstData>,
    /// Modification counter: bumped by every mutating method, so analysis
    /// caches can detect staleness with one integer compare (see
    /// `lpat-analysis`'s `AnalysisManager`).
    version: u64,
}

impl Function {
    pub(crate) fn new(
        name: String,
        ty: TypeId,
        addr_ty: TypeId,
        params: Vec<TypeId>,
        ret: TypeId,
        varargs: bool,
        linkage: Linkage,
    ) -> Function {
        Function {
            name,
            ty,
            addr_ty,
            linkage,
            params,
            ret,
            varargs,
            blocks: Vec::new(),
            insts: Vec::new(),
            version: 0,
        }
    }

    /// The current modification counter.
    ///
    /// Every method that can change the body (blocks, instructions, uses)
    /// increments this; a cached analysis stamped with an older value is
    /// stale. The counter never decreases and is not serialized.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    #[inline]
    fn bump(&mut self) {
        self.version += 1;
    }

    /// The function type id.
    #[inline]
    pub fn fn_type(&self) -> TypeId {
        self.ty
    }

    /// The pointer-to-function type id (the type of this function's
    /// address).
    #[inline]
    pub fn addr_type(&self) -> TypeId {
        self.addr_ty
    }

    /// Parameter types.
    #[inline]
    pub fn params(&self) -> &[TypeId] {
        &self.params
    }

    /// Number of formal parameters.
    #[inline]
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Return type.
    #[inline]
    pub fn ret_type(&self) -> TypeId {
        self.ret
    }

    /// Whether the function is variadic.
    #[inline]
    pub fn is_varargs(&self) -> bool {
        self.varargs
    }

    /// Whether this is a declaration (no body).
    #[inline]
    pub fn is_declaration(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The entry block.
    ///
    /// # Panics
    ///
    /// Panics on declarations.
    #[inline]
    pub fn entry(&self) -> BlockId {
        assert!(!self.blocks.is_empty(), "declaration has no entry block");
        BlockId(0)
    }

    /// Append a new, empty basic block. The first block created is the
    /// entry.
    pub fn add_block(&mut self) -> BlockId {
        self.bump();
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::default());
        id
    }

    /// Number of basic blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Iterate over all block ids in layout order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// The ordered instruction list of block `b`.
    #[inline]
    pub fn block_insts(&self, b: BlockId) -> &[InstId] {
        &self.blocks[b.0 as usize].insts
    }

    /// Replace the instruction list of block `b` (used by transforms that
    /// rebuild block contents).
    pub fn set_block_insts(&mut self, b: BlockId, insts: Vec<InstId>) {
        self.bump();
        self.blocks[b.0 as usize].insts = insts;
    }

    /// The arena record of instruction `i`.
    #[inline]
    pub fn inst(&self, i: InstId) -> &Inst {
        &self.insts[i.0 as usize].inst
    }

    /// Mutable access to instruction `i`.
    #[inline]
    pub fn inst_mut(&mut self, i: InstId) -> &mut Inst {
        self.bump();
        &mut self.insts[i.0 as usize].inst
    }

    /// The cached result type of instruction `i` (`void` when it produces no
    /// value).
    #[inline]
    pub fn inst_ty(&self, i: InstId) -> TypeId {
        self.insts[i.0 as usize].ty
    }

    /// Overwrite the cached result type (used when a transform retypes an
    /// instruction, e.g. replacing a call with a cast).
    pub fn set_inst_ty(&mut self, i: InstId, ty: TypeId) {
        self.bump();
        self.insts[i.0 as usize].ty = ty;
    }

    /// Total number of arena slots (including instructions no longer linked
    /// into any block).
    #[inline]
    pub fn num_inst_slots(&self) -> usize {
        self.insts.len()
    }

    /// Create a new instruction in the arena without linking it into a
    /// block. Most callers want [`Function::append_inst`].
    pub fn new_inst(&mut self, inst: Inst, ty: TypeId) -> InstId {
        self.bump();
        let id = InstId(self.insts.len() as u32);
        self.insts.push(InstData { inst, ty });
        id
    }

    /// Create an instruction and append it to block `b`.
    pub fn append_inst(&mut self, b: BlockId, inst: Inst, ty: TypeId) -> InstId {
        let id = self.new_inst(inst, ty);
        self.blocks[b.0 as usize].insts.push(id);
        id
    }

    /// Link an existing arena instruction at `pos` within block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >` the block's current length.
    pub fn insert_inst(&mut self, b: BlockId, pos: usize, id: InstId) {
        self.bump();
        self.blocks[b.0 as usize].insts.insert(pos, id);
    }

    /// Unlink instruction `id` from block `b` (the arena slot survives but
    /// becomes unreachable from the CFG).
    pub fn remove_inst(&mut self, b: BlockId, id: InstId) {
        self.bump();
        self.blocks[b.0 as usize].insts.retain(|&x| x != id);
    }

    /// The terminator of block `b`, if the block is non-empty and ends in
    /// one.
    pub fn terminator(&self, b: BlockId) -> Option<InstId> {
        let last = *self.blocks[b.0 as usize].insts.last()?;
        self.inst(last).is_terminator().then_some(last)
    }

    /// Successor blocks of `b` (empty when the block lacks a terminator).
    pub fn successors(&self, b: BlockId) -> Vec<BlockId> {
        match self.terminator(b) {
            Some(t) => self.inst(t).successors(),
            None => Vec::new(),
        }
    }

    /// Compute predecessor lists for every block.
    ///
    /// Duplicate edges (e.g. a conditional branch with both targets equal)
    /// are preserved, matching φ-node incoming-list semantics.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in self.block_ids() {
            for s in self.successors(b) {
                preds[s.0 as usize].push(b);
            }
        }
        preds
    }

    /// Iterate over every linked instruction id, in block layout order.
    pub fn inst_ids_in_order(&self) -> impl Iterator<Item = InstId> + '_ {
        self.blocks.iter().flat_map(|b| b.insts.iter().copied())
    }

    /// Number of linked instructions (excluding unlinked arena slots).
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Compute, for every linked instruction, the block containing it.
    pub fn inst_blocks(&self) -> Vec<Option<BlockId>> {
        let mut map = vec![None; self.insts.len()];
        for b in self.block_ids() {
            for &i in self.block_insts(b) {
                map[i.0 as usize] = Some(b);
            }
        }
        map
    }

    /// Replace every use of `from` with `to` across the whole function.
    pub fn replace_all_uses(&mut self, from: Value, to: Value) {
        self.bump();
        for data in &mut self.insts {
            data.inst.map_operands(|v| if v == from { to } else { v });
        }
    }

    /// Count uses of each instruction result among linked instructions.
    pub fn use_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.insts.len()];
        for i in self.inst_ids_in_order() {
            self.inst(i).for_each_operand(|v| {
                if let Value::Inst(d) = v {
                    counts[d.0 as usize] += 1;
                }
            });
        }
        counts
    }

    /// Drop all blocks and instructions, turning the function back into a
    /// declaration (used by dead-global elimination when only the address of
    /// a dead function is needed transiently).
    pub fn clear_body(&mut self) {
        self.bump();
        self.blocks.clear();
        self.insts.clear();
    }

    /// Reorder blocks into `order` (a permutation of all block ids whose
    /// first element is the entry), rewriting successor references and φ
    /// incoming lists. Used by profile-guided code layout.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation or does not start with the
    /// entry block.
    pub fn permute_blocks(&mut self, order: &[BlockId]) {
        self.bump();
        assert_eq!(order.len(), self.blocks.len());
        assert_eq!(order.first(), Some(&BlockId(0)), "entry must stay first");
        let mut remap = vec![None; order.len()];
        for (new_idx, &old) in order.iter().enumerate() {
            assert!(remap[old.0 as usize].is_none(), "duplicate block in order");
            remap[old.0 as usize] = Some(BlockId(new_idx as u32));
        }
        let old_blocks = std::mem::take(&mut self.blocks);
        let mut slots: Vec<Option<Block>> = old_blocks.into_iter().map(Some).collect();
        self.blocks = order
            .iter()
            .map(|&old| slots[old.0 as usize].take().expect("permutation"))
            .collect();
        for data in &mut self.insts {
            if let Inst::Phi { incoming } = &mut data.inst {
                for (_, b) in incoming {
                    if let Some(Some(nb)) = remap.get(b.0 as usize) {
                        *b = *nb;
                    }
                }
            } else {
                data.inst
                    .map_successors(|b| remap.get(b.0 as usize).copied().flatten().unwrap_or(b));
            }
        }
    }

    /// Remove blocks for which `keep[b] == false`, renumbering the rest and
    /// rewriting all successor references and φ incoming lists. Incoming
    /// φ edges from removed blocks are dropped.
    ///
    /// Returns the remap table (`None` = removed).
    ///
    /// # Panics
    ///
    /// Panics if the entry block is removed or `keep.len()` mismatches.
    pub fn retain_blocks(&mut self, keep: &[bool]) -> Vec<Option<BlockId>> {
        self.bump();
        assert_eq!(keep.len(), self.blocks.len());
        assert!(keep[0], "cannot remove the entry block");
        let mut remap: Vec<Option<BlockId>> = Vec::with_capacity(keep.len());
        let mut next = 0u32;
        for &k in keep {
            if k {
                remap.push(Some(BlockId(next)));
                next += 1;
            } else {
                remap.push(None);
            }
        }
        let mut new_blocks = Vec::with_capacity(next as usize);
        for (i, b) in std::mem::take(&mut self.blocks).into_iter().enumerate() {
            if keep[i] {
                new_blocks.push(b);
            }
        }
        self.blocks = new_blocks;
        // Note: unlinked arena slots may hold stale block references from
        // earlier transforms; tolerate out-of-range ids (those
        // instructions are unreachable from the CFG).
        for data in &mut self.insts {
            if let Inst::Phi { incoming } = &mut data.inst {
                incoming.retain(|(_, b)| remap.get(b.0 as usize).is_none_or(|r| r.is_some()));
            }
            data.inst
                .map_successors(|b| remap.get(b.0 as usize).copied().flatten().unwrap_or(b));
        }
        remap
    }

    /// Renumber every type and constant reference in the body whose id is
    /// `>=` the given base, through the corresponding map (`map[i]` is the
    /// new id of old id `base + i`). Ids below the base are untouched.
    ///
    /// This is the merge step of the parallel function-pass executor:
    /// workers intern new types/constants into a private overlay on top of
    /// a pool snapshot, and after the overlay entries are re-interned into
    /// the master pools the body is rewritten to the master ids. The
    /// rewrite is id-for-id (it cannot change the printed IR or the CFG),
    /// so it deliberately does **not** bump the modification counter —
    /// analyses cached against the pre-merge body stay valid.
    pub fn remap_pool_ids(
        &mut self,
        ty_base: usize,
        ty_map: &[TypeId],
        c_base: usize,
        c_map: &[ConstId],
    ) {
        let mt = |t: TypeId| {
            if t.index() >= ty_base {
                ty_map[t.index() - ty_base]
            } else {
                t
            }
        };
        let mc = |c: ConstId| {
            if c.index() >= c_base {
                c_map[c.index() - c_base]
            } else {
                c
            }
        };
        for data in &mut self.insts {
            data.ty = mt(data.ty);
            match &mut data.inst {
                Inst::Cast { to, .. } => *to = mt(*to),
                Inst::Alloca { elem_ty, .. } | Inst::Malloc { elem_ty, .. } => {
                    *elem_ty = mt(*elem_ty)
                }
                Inst::VaArg { ty } => *ty = mt(*ty),
                // `Switch` case labels are constants outside the operand
                // list, so `map_operands` below does not see them.
                Inst::Switch { cases, .. } => {
                    for (c, _) in cases {
                        *c = mc(*c);
                    }
                }
                _ => {}
            }
            data.inst.map_operands(|v| match v {
                Value::Const(c) => Value::Const(mc(c)),
                other => other,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Module;

    fn sample() -> (Module, crate::constant::FuncId) {
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let fid = m.add_function("f", &[i32t], i32t, false, Linkage::External);
        (m, fid)
    }

    #[test]
    fn declaration_then_body() {
        let (mut m, fid) = sample();
        assert!(m.func(fid).is_declaration());
        let one = m.consts.i32(1);
        let f = m.func_mut(fid);
        let b = f.add_block();
        assert!(!f.is_declaration());
        assert_eq!(f.entry(), b);
        let i32t = TypeId(4); // not used for checking here
        let add = f.append_inst(
            b,
            Inst::Bin {
                op: crate::inst::BinOp::Add,
                lhs: Value::Arg(0),
                rhs: Value::Const(one),
            },
            i32t,
        );
        f.append_inst(b, Inst::Ret(Some(Value::Inst(add))), TypeId(0));
        assert_eq!(f.num_insts(), 2);
        assert_eq!(f.terminator(b), Some(InstId(1)));
        assert!(f.successors(b).is_empty());
    }

    #[test]
    fn predecessors_and_rau() {
        let (mut m, fid) = sample();
        let f = m.func_mut(fid);
        let b0 = f.add_block();
        let b1 = f.add_block();
        let b2 = f.add_block();
        f.append_inst(
            b0,
            Inst::CondBr {
                cond: Value::Arg(0),
                then_bb: b1,
                else_bb: b2,
            },
            TypeId(0),
        );
        f.append_inst(b1, Inst::Br(b2), TypeId(0));
        f.append_inst(b2, Inst::Ret(Some(Value::Arg(0))), TypeId(0));
        let preds = f.predecessors();
        assert_eq!(preds[b2.index()], vec![b0, b1]);
        f.replace_all_uses(Value::Arg(0), Value::Arg(1));
        match f.inst(InstId(2)) {
            Inst::Ret(Some(Value::Arg(1))) => {}
            other => panic!("RAUW failed: {other:?}"),
        }
    }
}

#[cfg(test)]
mod block_surgery_tests {
    use crate::inst::{BinOp, Inst, Value};
    use crate::module::Module;

    fn diamond() -> (Module, crate::constant::FuncId) {
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let bt = m.types.bool_();
        let f = m.add_function(
            "f",
            &[bt, i32t],
            i32t,
            false,
            crate::function::Linkage::External,
        );
        let mut b = m.builder(f);
        let e = b.block();
        let l = b.new_block();
        let r = b.new_block();
        let j = b.new_block();
        b.cond_br(Value::Arg(0), l, r);
        b.switch_to(l);
        let one = b.iconst32(1);
        let x = b.add(Value::Arg(1), one);
        b.br(j);
        b.switch_to(r);
        let two = b.iconst32(2);
        let y = b.mul(Value::Arg(1), two);
        b.br(j);
        b.switch_to(j);
        let p = b.phi(i32t, vec![(x, l), (y, r)]);
        b.ret(Some(p));
        let _ = e;
        (m, f)
    }

    #[test]
    fn permute_blocks_preserves_semantics_metadata() {
        let (mut m, f) = diamond();
        m.verify().unwrap();
        let before = m.display();
        // Reverse everything but the entry.
        let order: Vec<crate::inst::BlockId> = [0usize, 3, 2, 1]
            .iter()
            .map(|&i| crate::inst::BlockId::from_index(i))
            .collect();
        m.func_mut(f).permute_blocks(&order);
        m.verify()
            .unwrap_or_else(|e| panic!("{e:?}\n{}", m.display()));
        // Round-trip to the identity permutation restores the text.
        m.func_mut(f).permute_blocks(&order);
        m.verify().unwrap();
        assert_eq!(before, m.display());
    }

    #[test]
    #[should_panic(expected = "entry must stay first")]
    fn permute_blocks_rejects_moving_entry() {
        let (mut m, f) = diamond();
        let order: Vec<crate::inst::BlockId> = [1usize, 0, 2, 3]
            .iter()
            .map(|&i| crate::inst::BlockId::from_index(i))
            .collect();
        m.func_mut(f).permute_blocks(&order);
    }

    #[test]
    fn retain_blocks_drops_phi_edges() {
        let (mut m, f) = diamond();
        // Make the r-arm unreachable by rewriting the entry branch, then
        // drop it.
        let fm = m.func_mut(f);
        let entry_term = fm.terminator(crate::inst::BlockId::from_index(0)).unwrap();
        *fm.inst_mut(entry_term) = Inst::Br(crate::inst::BlockId::from_index(1));
        fm.retain_blocks(&[true, true, false, true]);
        m.verify()
            .unwrap_or_else(|e| panic!("{e:?}\n{}", m.display()));
        let text = m.display();
        assert!(!text.contains("mul"), "{text}");
        assert_eq!(text.matches("phi").count(), 1);
        assert_eq!(
            text.matches("[").count(),
            1,
            "one incoming edge left: {text}"
        );
    }

    #[test]
    fn use_counts_and_rau_interact() {
        let mut m = Module::new("t");
        let i32t = m.types.i32();
        let f = m.add_function(
            "f",
            &[i32t],
            i32t,
            false,
            crate::function::Linkage::External,
        );
        let mut b = m.builder(f);
        b.block();
        let one = b.iconst32(1);
        let a = b.add(Value::Arg(0), one);
        let c = b.bin(BinOp::Mul, a, a);
        b.ret(Some(c));
        let fm = m.func_mut(f);
        let counts = fm.use_counts();
        let aid = match a {
            Value::Inst(i) => i,
            _ => unreachable!(),
        };
        assert_eq!(counts[aid.index()], 2);
        fm.replace_all_uses(a, Value::Arg(0));
        let counts = fm.use_counts();
        assert_eq!(counts[aid.index()], 0);
    }
}
