//! Content hashing primitives for the lifelong store.
//!
//! The persistence layer (paper §3.3, §3.5: profile data and reoptimized
//! code stored *alongside* the bytecode across runs) needs two hashes:
//!
//! * [`crc32`] — per-section integrity checksums inside on-disk
//!   containers, so a torn write or bit rot is detected on read rather
//!   than silently consumed;
//! * [`fnv1a64`] — a stable 64-bit *content hash* keying cached artifacts
//!   (profiles, reoptimized modules) to the exact bytecode they were
//!   derived from, so stale data for a changed module is quarantined
//!   instead of applied.
//!
//! Both are implemented in-tree (no external deps) and are stable across
//! platforms and releases: they are part of the on-disk format.

/// CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), the checksum used by
/// zip/gzip/PNG. Table-driven; the table is built at compile time.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// FNV-1a, 64-bit: a fast, dependency-free content hash with good
/// dispersion for keying cache entries. **Not** cryptographic — the store
/// trusts its own directory; the hash only detects *accidental* mismatch
/// (a recompiled module, a profile from different bytes).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn fnv1a64_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn single_bit_flip_changes_both() {
        let a = b"some module bytes".to_vec();
        let mut b = a.clone();
        b[3] ^= 0x40;
        assert_ne!(crc32(&a), crc32(&b));
        assert_ne!(fnv1a64(&a), fnv1a64(&b));
    }
}
