//! Integration tests for `lpatd` — the fault-isolated multi-tenant
//! daemon (`lpat::serve`).
//!
//! Three layers of evidence:
//!
//! 1. **Protocol robustness**: a fuzzer throws truncated, oversized, and
//!    SplitMix64-mutated frames at a live server over a real socket; the
//!    server must never die and a well-formed request must still succeed
//!    afterwards.
//! 2. **Fault-site matrix** (subprocess): `lpatd` is started with an
//!    injected fault at each `serve.*` site in turn — a panic in the
//!    accept path, the decoder, the worker pipeline, and a forced
//!    deadline expiry — and must answer the faulted request with a
//!    structured error (or drop that one connection) while *subsequent*
//!    requests succeed. CI fans one leg per site via `LPAT_SERVE_MATRIX`.
//! 3. **Multi-tenant isolation**: two tenants hammer the same module
//!    hash concurrently through the sharded store — no quarantine
//!    storms, an order-independent saturating merge, and deterministic
//!    per-tenant quota rejection.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use lpat::serve::{
    encode_request, Addr, Client, ErrClass, Op, Request, Response, RetryPolicy, Server,
    ServerConfig,
};

const ADD_PROG: &str = "\
define int @main() {
entry:
  %a = add int 40, 2
  ret int %a
}
";

/// ~6M executed instructions: long enough to occupy a worker for an
/// observable window, short enough to finish promptly.
const SLOW_PROG: &str = "\
define int @main() {
entry:
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %i2, %loop ]
  %i2 = add int %i, 1
  %c = setlt int %i2, 1500000
  br bool %c, label %loop, label %done
done:
  ret int 0
}
";

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("serve");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn run_request(module: &str) -> Request {
    let mut req = Request::new(Op::Run);
    req.module = module.as_bytes().to_vec();
    req
}

fn connect(addr: &Addr) -> Client {
    Client::connect(addr, Duration::from_secs(10)).expect("connect")
}

fn expect_ok(resp: &Response) -> (i32, &[u8]) {
    match resp {
        Response::Ok { exit, output, .. } => (*exit, output.as_slice()),
        other => panic!("expected Ok, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// 1. Protocol robustness: socket-level fuzzing against a live server.
// ---------------------------------------------------------------------------

/// SplitMix64 — tiny deterministic PRNG, no dependencies.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn raw_tcp(addr: &Addr) -> TcpStream {
    let Addr::Tcp(hp) = addr else {
        panic!("fuzz test uses tcp")
    };
    let s = TcpStream::connect(hp.as_str()).expect("raw connect");
    s.set_read_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    s
}

#[test]
fn fuzzed_frames_never_kill_the_server() {
    let h = Server::bind(ServerConfig::default()).unwrap().start();
    let mut rng = SplitMix64(0x5EED_CAFE);
    let good = encode_request(&run_request(ADD_PROG));

    for round in 0..60 {
        let mut s = raw_tcp(h.addr());
        match round % 4 {
            // Truncated frame: a valid header promising more than we send.
            0 => {
                let cut = 1 + rng.below(good.len() as u64 - 1) as usize;
                let mut buf = (good.len() as u32).to_le_bytes().to_vec();
                buf.extend_from_slice(&good[..cut]);
                let _ = s.write_all(&buf);
                // Close mid-frame; the server must just drop us.
            }
            // Hostile length prefix: enormous, zero, or random.
            1 => {
                let len: u32 = match rng.below(3) {
                    0 => u32::MAX,
                    1 => 0,
                    _ => rng.next() as u32,
                };
                let mut buf = len.to_le_bytes().to_vec();
                buf.extend_from_slice(&good[..good.len().min(32)]);
                let _ = s.write_all(&buf);
                // A bad length answers a Decode error and closes, or just
                // closes; either way the next connection must work.
                let mut sink = Vec::new();
                let _ = s.read_to_end(&mut sink);
            }
            // Mutated payload: correct framing, N corrupted bytes inside.
            2 => {
                let mut payload = good.clone();
                for _ in 0..1 + rng.below(8) {
                    let i = rng.below(payload.len() as u64) as usize;
                    payload[i] ^= (rng.next() as u8) | 1;
                }
                let mut buf = (payload.len() as u32).to_le_bytes().to_vec();
                buf.extend_from_slice(&payload);
                let _ = s.write_all(&buf);
                let mut sink = Vec::new();
                let _ = s.read_to_end(&mut sink);
            }
            // Pure garbage, no framing discipline at all.
            _ => {
                let n = 1 + rng.below(256) as usize;
                let garbage: Vec<u8> = (0..n).map(|_| rng.next() as u8).collect();
                let _ = s.write_all(&garbage);
                let mut sink = Vec::new();
                let _ = s.read_to_end(&mut sink);
            }
        }
        drop(s);
        // The invariant under fuzz: after every hostile exchange, a
        // well-formed request on a fresh connection succeeds.
        if round % 10 == 9 {
            let mut c = connect(h.addr());
            let resp = c.request(&run_request(ADD_PROG)).expect("server died");
            assert_eq!(expect_ok(&resp).0, 42);
        }
    }
    let mut c = connect(h.addr());
    let resp = c.request(&Request::new(Op::Ping)).unwrap();
    assert_eq!(expect_ok(&resp).1, b"pong");
    h.stop();
}

#[test]
fn oversized_frame_is_rejected_before_allocation() {
    let cfg = ServerConfig {
        max_frame: 1024,
        ..Default::default()
    };
    let h = Server::bind(cfg).unwrap().start();
    let mut s = raw_tcp(h.addr());
    // Claim a 512 MiB frame; the server must answer/close without ever
    // allocating it (if it tried, CI memory limits would notice).
    s.write_all(&(512u32 << 20).to_le_bytes()).unwrap();
    let mut sink = Vec::new();
    let _ = s.read_to_end(&mut sink);
    drop(s);
    let mut c = connect(h.addr());
    assert!(matches!(
        c.request(&Request::new(Op::Ping)).unwrap(),
        Response::Ok { .. }
    ));
    h.stop();
}

// ---------------------------------------------------------------------------
// 2. Fault-site matrix: subprocess lpatd with injected serve.* faults.
// ---------------------------------------------------------------------------

struct Daemon {
    child: Child,
    addr: Addr,
}

impl Daemon {
    /// Spawn `lpatd`, wait for its `listening on <addr>` line, parse it.
    fn spawn(extra_args: &[&str], faults: Option<&str>) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_lpatd"));
        cmd.args(["--listen", "tcp:127.0.0.1:0", "--quiet"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(p) = faults {
            cmd.env("LPAT_FAULTS", p);
        }
        let mut child = cmd.spawn().expect("spawn lpatd");
        let mut line = String::new();
        {
            let stdout = child.stdout.as_mut().unwrap();
            let mut one = [0u8; 1];
            while stdout.read(&mut one).unwrap() == 1 {
                if one[0] == b'\n' {
                    break;
                }
                line.push(one[0] as char);
            }
        }
        let addr = line
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("bad startup line: {line:?}"))
            .trim()
            .to_string();
        Daemon {
            child,
            addr: Addr::parse(&addr).unwrap(),
        }
    }

    fn alive(&mut self) -> bool {
        self.child.try_wait().unwrap().is_none()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Fault-matrix legs: CI runs one per job via `LPAT_SERVE_MATRIX=<site>`;
/// locally all run.
fn matrix_sites() -> Vec<String> {
    match std::env::var("LPAT_SERVE_MATRIX") {
        Ok(v) if !v.trim().is_empty() => v.split(',').map(|s| s.trim().to_string()).collect(),
        _ => vec![
            "serve.accept".into(),
            "serve.decode".into(),
            "serve.worker".into(),
            "serve.deadline".into(),
        ],
    }
}

#[test]
fn daemon_survives_a_fault_at_every_serve_site() {
    for site in matrix_sites() {
        // panic for the catch_unwind sites; the deadline site uses
        // `corrupt` (forced expiry) — its panic leg is the worker's.
        let (action, expected) = match site.as_str() {
            "serve.accept" => ("panic", None), // connection dies, no response
            "serve.decode" => ("panic", Some(ErrClass::Panic)),
            "serve.worker" => ("panic", Some(ErrClass::Panic)),
            "serve.deadline" => ("corrupt", Some(ErrClass::Deadline)),
            other => panic!("unknown serve site {other}"),
        };
        let plan = format!("{site}:{action}@1");
        let mut d = Daemon::spawn(&[], Some(&plan));

        // Request 1 takes the injected fault.
        match Client::connect(&d.addr, Duration::from_secs(10)) {
            Ok(mut c) => match c.request(&run_request(ADD_PROG)) {
                Ok(resp) => match (expected, resp) {
                    (Some(class), Response::Err { class: got, .. }) => assert_eq!(
                        got, class,
                        "{site}: wrong error class for the faulted request"
                    ),
                    (None, other) => {
                        panic!("{site}: expected dropped connection, got {other:?}")
                    }
                    (Some(c), other) => panic!("{site}: expected Err({c:?}), got {other:?}"),
                },
                Err(_) => assert!(
                    expected.is_none(),
                    "{site}: connection died but a structured error was expected"
                ),
            },
            Err(_) => assert!(
                expected.is_none(),
                "{site}: could not even connect, expected a structured error"
            ),
        }

        // The daemon must still be alive and request 2 must succeed.
        assert!(d.alive(), "{site}: daemon process died");
        let mut c = connect(&d.addr);
        let resp = c
            .request(&run_request(ADD_PROG))
            .unwrap_or_else(|e| panic!("{site}: daemon stopped serving: {e}"));
        assert_eq!(expect_ok(&resp).0, 42, "{site}: wrong answer after fault");
        // And a third, through the whole pipeline again, for good measure.
        let resp = c.request(&Request::new(Op::Ping)).unwrap();
        assert_eq!(expect_ok(&resp).1, b"pong");
    }
}

#[test]
fn worker_delay_fault_trips_the_request_deadline() {
    // A worker stalled mid-request (delay fault) must burn only ITS
    // client's deadline; the daemon then serves the next request.
    let mut d = Daemon::spawn(&["--workers", "2"], Some("serve.worker:delay=600@1"));
    let mut c = connect(&d.addr);
    let mut req = run_request(ADD_PROG);
    req.deadline_ms = 150;
    match c.request(&req).unwrap() {
        Response::Err { class, .. } => assert_eq!(class, ErrClass::Deadline),
        other => panic!("expected deadline expiry, got {other:?}"),
    }
    assert!(d.alive());
    let resp = connect(&d.addr).request(&run_request(ADD_PROG)).unwrap();
    assert_eq!(expect_ok(&resp).0, 42);
}

// ---------------------------------------------------------------------------
// 3. Multi-tenant isolation and quotas.
// ---------------------------------------------------------------------------

#[test]
fn two_tenants_hammering_one_module_hash_is_clean() {
    let cache = tmp("mt-cache");
    let _ = std::fs::remove_dir_all(&cache);
    let cfg = ServerConfig {
        cache_dir: Some(cache.clone()),
        shards: 8,
        workers: 4,
        ..Default::default()
    };
    let h = Server::bind(cfg).unwrap().start();
    let addr = h.addr().clone();

    const THREADS: usize = 6;
    const PER_THREAD: usize = 5;
    let mut joins = Vec::new();
    for t in 0..THREADS {
        let addr = addr.clone();
        joins.push(std::thread::spawn(move || {
            let tenant = if t % 2 == 0 { "alice" } else { "bob" };
            let mut c = connect(&addr);
            let mut ok = 0u64;
            for _ in 0..PER_THREAD {
                let mut req = run_request(ADD_PROG);
                req.tenant = tenant.into();
                match c
                    .request_with_retry(&req, &RetryPolicy::default())
                    .expect("protocol error")
                {
                    Response::Ok { exit, .. } => {
                        assert_eq!(exit, 42);
                        ok += 1;
                    }
                    Response::Busy { .. } => {} // shed under load: acceptable, uncounted
                    Response::Err { class, message } => {
                        panic!("tenant {tenant}: unexpected error {class:?}: {message}")
                    }
                }
            }
            ok
        }));
    }
    let total_ok: u64 = joins.into_iter().map(|j| j.join().unwrap()).sum();
    assert!(total_ok > 0);
    h.stop();

    // No quarantine storm: concurrent same-hash flushes went through the
    // shard lock, so no store file was ever read half-written.
    let mut corrupt = Vec::new();
    for entry in walk(&cache) {
        if entry.to_string_lossy().contains(".corrupt-") {
            corrupt.push(entry);
        }
    }
    assert!(
        corrupt.is_empty(),
        "quarantined files after concurrent runs: {corrupt:?}"
    );

    // Order-independent merge: the stored lifetime profile counted every
    // successful run exactly once, regardless of interleaving.
    let m = lpat::asm::parse_module("module", ADD_PROG).unwrap();
    let hash = lpat::vm::module_hash(&m);
    let store = lpat::serve::ShardedStore::open(&cache, 8).unwrap();
    let loaded = store.shard(hash).load_profile(hash).unwrap();
    assert!(loaded.quarantined.is_empty());
    let sp = loaded.value.expect("profile must exist");
    assert_eq!(
        sp.runs, total_ok,
        "stored run count disagrees with successful responses"
    );
}

fn walk(dir: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    let Ok(rd) = std::fs::read_dir(dir) else {
        return out;
    };
    for e in rd.flatten() {
        let p = e.path();
        if p.is_dir() {
            out.extend(walk(&p));
        } else {
            out.push(p);
        }
    }
    out
}

#[test]
fn per_tenant_quota_rejection_is_deterministic_under_load() {
    let mut cfg = ServerConfig::default();
    cfg.quota.max_bytes = 64;
    let h = Server::bind(cfg).unwrap().start();
    let addr = h.addr().clone();
    // From several threads at once: an oversized payload is ALWAYS Quota
    // (deterministic), never Busy, never load-dependent.
    let mut joins = Vec::new();
    for _ in 0..4 {
        let addr = addr.clone();
        joins.push(std::thread::spawn(move || {
            let mut c = connect(&addr);
            for _ in 0..10 {
                let mut req = run_request(ADD_PROG);
                req.module = vec![b'x'; 4096];
                match c.request(&req).unwrap() {
                    Response::Err { class, .. } => assert_eq!(class, ErrClass::Quota),
                    other => panic!("expected deterministic Quota, got {other:?}"),
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    // Within-quota requests still work afterwards.
    let resp = connect(&addr).request(&run_request(ADD_PROG)).unwrap();
    assert_eq!(expect_ok(&resp).0, 42);
    h.stop();
}

#[test]
fn full_queue_sheds_busy_and_retry_eventually_succeeds() {
    let cfg = ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..Default::default()
    };
    let h = Server::bind(cfg).unwrap().start();
    let addr = h.addr().clone();

    // Saturate: several concurrent slow requests against 1 worker + 1
    // queue slot. Some must be shed with Busy (bounded memory), and a
    // retrying client must eventually get through.
    let mut joins = Vec::new();
    for _ in 0..6 {
        let addr = addr.clone();
        joins.push(std::thread::spawn(move || {
            let mut c = connect(&addr);
            match c.request(&run_request(SLOW_PROG)).unwrap() {
                Response::Ok { exit, .. } => {
                    assert_eq!(exit, 0);
                    (1u32, 0u32)
                }
                Response::Busy { .. } => (0, 1),
                Response::Err { class, message } => {
                    panic!("unexpected error {class:?}: {message}")
                }
            }
        }));
    }
    let (mut ok, mut busy) = (0, 0);
    for j in joins {
        let (o, b) = j.join().unwrap();
        ok += o;
        busy += b;
    }
    assert!(ok >= 1, "nobody got through a saturated server");
    assert!(busy >= 1, "expected at least one Busy shed (ok={ok})");

    // A patient client retries Busy with backoff and lands.
    let mut c = connect(&addr);
    let policy = RetryPolicy {
        max_attempts: 20,
        base: Duration::from_millis(25),
        cap: Duration::from_millis(200),
        seed: Some(0x5EED),
    };
    let resp = c
        .request_with_retry(&run_request(ADD_PROG), &policy)
        .unwrap();
    assert_eq!(expect_ok(&resp).0, 42);
    h.stop();
}

// ---------------------------------------------------------------------------
// 4. The lifelong loop over the wire, and the lpatc remote client.
// ---------------------------------------------------------------------------

#[test]
fn run_reopt_run_closes_the_lifelong_loop_over_the_wire() {
    let cache = tmp("loop-cache");
    let _ = std::fs::remove_dir_all(&cache);
    let mut d = Daemon::spawn(&["--cache-dir", cache.to_str().unwrap()], None);
    let mut c = connect(&d.addr);
    // Run once (records a profile), reopt (consumes it, caches the
    // module), run again (must be a cache hit).
    let resp = c.request(&run_request(ADD_PROG)).unwrap();
    assert_eq!(expect_ok(&resp).0, 42);
    let mut reopt = run_request(ADD_PROG);
    reopt.op = Op::Reopt;
    match c.request(&reopt).unwrap() {
        Response::Ok { module, output, .. } => {
            assert!(module.starts_with(b"LPAT"), "reopt returns bytecode");
            assert!(String::from_utf8_lossy(&output).contains("reopt:"));
        }
        other => panic!("reopt failed: {other:?}"),
    }
    match c.request(&run_request(ADD_PROG)).unwrap() {
        Response::Ok {
            exit, cache_hit, ..
        } => {
            assert_eq!(exit, 42);
            assert!(cache_hit, "second run must hit the reopt cache");
        }
        other => panic!("unexpected: {other:?}"),
    }
    assert!(d.alive());
}

#[test]
fn lpatc_remote_run_and_compile_roundtrip() {
    let mut d = Daemon::spawn(&[], None);
    let addr = d.addr.to_string();
    let src = tmp("remote-add.ll");
    std::fs::write(&src, ADD_PROG).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_lpatc"))
        .args(["remote", "run", src.to_str().unwrap(), "--connect", &addr])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(42),
        "remote run exit: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let bc = tmp("remote-add.bc");
    let out = Command::new(env!("CARGO_BIN_EXE_lpatc"))
        .args([
            "remote",
            "compile",
            src.to_str().unwrap(),
            "--connect",
            &addr,
            "-O",
            "-o",
            bc.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "remote compile: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&bc).unwrap();
    assert!(bytes.starts_with(b"LPAT"), "compile must return bytecode");
    assert!(d.alive());

    // A connect to a dead address must fail fast (bounded), not hang.
    let t0 = std::time::Instant::now();
    let out = Command::new(env!("CARGO_BIN_EXE_lpatc"))
        .args([
            "remote",
            "ping",
            "--connect",
            "tcp:127.0.0.1:1",
            "--connect-timeout-ms",
            "300",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "connect timeout not honored"
    );
}

// ---------------------------------------------------------------------------
// Process isolation smoke: the crash-only worker pool serves the same
// protocol (the full kill/abort/journal chaos lives in tests/chaos.rs).
// ---------------------------------------------------------------------------

#[test]
fn process_isolation_serves_the_same_protocol() {
    let mut d = Daemon::spawn(&["--isolate", "process", "--workers", "2"], None);
    let mut c = connect(&d.addr);
    let (_, out) = match c.request(&Request::new(Op::Ping)).unwrap() {
        r @ Response::Ok { .. } => {
            let Response::Ok { exit, output, .. } = r else {
                unreachable!()
            };
            (exit, output)
        }
        other => panic!("ping answered {other:?}"),
    };
    assert_eq!(out, b"pong");
    match c.request(&run_request(ADD_PROG)).unwrap() {
        Response::Ok { exit, insts, .. } => {
            assert_eq!(exit, 42);
            assert!(insts > 0, "the run executed in a worker subprocess");
        }
        other => panic!("run answered {other:?}"),
    }
    // Stats answers in-daemon and exposes the live worker pids.
    match c.request(&Request::new(Op::Stats)).unwrap() {
        Response::Ok { output, .. } => {
            let json = String::from_utf8(output).unwrap();
            assert!(json.contains("\"worker_pids\":["), "{json}");
            assert!(json.contains("\"worker_crashes\":0"), "{json}");
        }
        other => panic!("stats answered {other:?}"),
    }
    assert!(d.alive());
}

// ---------------------------------------------------------------------------
// Distributed tracing: one merged Chrome trace spanning the daemon and its
// worker subprocesses, byte-deterministic under the virtual clock.
// ---------------------------------------------------------------------------

/// Spawn a process-isolated tracing daemon, push a fixed serial request
/// sequence with client-chosen request ids, let `--max-requests` drain
/// it, and return the merged trace bytes it wrote on exit.
fn traced_run(trace_path: &std::path::Path, rids: &[u64]) -> Vec<u8> {
    let mut d = Daemon::spawn(
        &[
            "--isolate",
            "process",
            "--workers",
            "2",
            "--trace-clock",
            "virtual",
            "--trace-out",
            trace_path.to_str().unwrap(),
            "--max-requests",
            &rids.len().to_string(),
        ],
        None,
    );
    for &rid in rids {
        let mut c = connect(&d.addr);
        let mut req = run_request(ADD_PROG);
        req.request_id = rid;
        match c.request(&req).unwrap() {
            Response::Ok { exit, .. } => assert_eq!(exit, 42),
            other => panic!("traced run answered {other:?}"),
        }
    }
    // --max-requests makes the daemon drain, export the trace, and exit
    // on its own; wait for that rather than killing it.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = d.child.try_wait().unwrap() {
            assert!(status.success(), "daemon exit after drain: {status:?}");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "daemon did not exit after --max-requests"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    std::fs::read(trace_path).expect("trace file written on drain")
}

#[test]
fn distributed_trace_merges_worker_lanes_and_is_deterministic() {
    use lpat::core::trace::{parse_json, Json};

    let rids: &[u64] = &[0x1111, 0x2222, 0x3333];
    let a = traced_run(&tmp("dist-trace-a.json"), rids);
    let b = traced_run(&tmp("dist-trace-b.json"), rids);
    assert_eq!(
        a, b,
        "virtual-clock merged trace must be byte-identical across runs"
    );

    // Schema check: valid JSON, one traceEvents array, daemon + worker
    // pid lanes labeled by process_name metadata, and every client-chosen
    // request id present in BOTH lanes (end-to-end propagation).
    let doc = parse_json(std::str::from_utf8(&a).unwrap()).expect("trace is valid JSON");
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("missing traceEvents array");
    };
    assert!(!events.is_empty());
    let lane_label = |pid: f64| -> Option<&str> {
        events.iter().find_map(|e| {
            (e.str_field("ph") == Some("M")
                && e.str_field("name") == Some("process_name")
                && e.num("pid") == Some(pid))
            .then(|| e.get("args")?.str_field("name"))
            .flatten()
        })
    };
    assert_eq!(lane_label(1.0), Some("daemon"));
    assert_eq!(lane_label(2.0), Some("worker"));
    for &rid in rids {
        let rid_in_lane = |pid: f64| {
            events.iter().any(|e| {
                e.num("pid") == Some(pid)
                    && e.get("args").and_then(|a| a.str_field("rid"))
                        == Some(rid.to_string().as_str())
            })
        };
        assert!(rid_in_lane(1.0), "rid {rid:#x} missing from daemon lane");
        assert!(rid_in_lane(2.0), "rid {rid:#x} missing from worker lane");
    }
    // Virtual clock: timestamps are ordinals scaled by a constant, so
    // they carry no wall-clock residue (strictly bounded by event count).
    for e in events.iter().filter(|e| e.str_field("ph") != Some("M")) {
        let ts = e.num("ts").expect("event ts");
        assert!(
            ts >= 0.0 && ts <= 10.0 * events.len() as f64,
            "virtual ts {ts}"
        );
    }
}
