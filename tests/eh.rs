//! End-to-end exception-handling tests (paper §2.4): the invoke/unwind
//! model across the front-end, optimizers, and the execution engine —
//! including the setjmp/longjmp-style non-local exit the paper says the
//! same two primitives support.

use lpat::vm::{Vm, VmOptions};

fn run_src(src: &str) -> (i64, String) {
    let m = lpat::minic::compile("t", src).unwrap_or_else(|e| panic!("{e}"));
    m.verify().unwrap();
    let mut vm = Vm::new(&m, VmOptions::default()).unwrap();
    let r = vm
        .run_main()
        .unwrap_or_else(|e| panic!("{e}\n{}", m.display()));
    (r, vm.output.clone())
}

#[test]
fn unwind_runs_cleanups_at_every_level() {
    // Nested try frames: each level appends to the log before rethrowing,
    // exactly the paper's destructor-during-unwinding pattern.
    let (r, out) = run_src(
        "
extern void print_int(int v);
void inner() {
    try {
        throw;
    } catch {
        print_int(1);   // inner cleanup
        throw;          // rethrow: continues unwinding
    }
}
void middle() {
    try {
        inner();
    } catch {
        print_int(2);   // middle cleanup
        throw;
    }
}
int main() {
    try {
        middle();
    } catch {
        print_int(3);   // outermost handler
        return 42;
    }
    return 0;
}",
    );
    assert_eq!(r, 42);
    assert_eq!(out, "1\n2\n3\n", "cleanups run innermost-first");
}

#[test]
fn setjmp_longjmp_style_nonlocal_exit() {
    // The same primitives implement setjmp/longjmp: a deep recursion
    // escapes to the "setjmp point" (the try frame) in one unwind.
    let (r, out) = run_src(
        "
extern void print_int(int v);
int depth_reached = 0;
void search(int depth) {
    depth_reached = depth;
    if (depth == 5) throw;   // longjmp(env, 1)
    search(depth + 1);
}
int main() {
    try {                     // if (setjmp(env) == 0)
        search(0);
        return 0;
    } catch {                 // else: longjmp landed here
        print_int(depth_reached);
        return depth_reached * 2;
    }
}",
    );
    assert_eq!(r, 10);
    assert_eq!(out, "5\n");
}

#[test]
fn exceptional_control_flow_is_in_the_cfg() {
    // The paper's key design point: the unwind edge is an ordinary CFG
    // edge, so *every* analysis sees it. Dominators must treat the handler
    // as reachable only through the invoke block.
    let m = lpat::minic::compile(
        "t",
        "
void may_throw(int x) { if (x > 0) throw; }
int main() {
    int v = 1;
    try {
        may_throw(v);
        v = 2;
    } catch {
        v = 3;
    }
    return v;
}",
    )
    .unwrap();
    let main = m.func_by_name("main").unwrap();
    let f = m.func(main);
    let mut invoke_blocks = 0;
    for b in f.block_ids() {
        if let Some(t) = f.terminator(b) {
            if matches!(f.inst(t), lpat::core::Inst::Invoke { .. }) {
                invoke_blocks += 1;
                assert_eq!(f.inst(t).successors().len(), 2, "normal + unwind edges");
            }
        }
    }
    assert!(invoke_blocks >= 1, "{}", m.display());
    // And the verifier accepts dominance across those edges.
    m.verify().unwrap();
}

#[test]
fn optimizers_preserve_eh_semantics() {
    let src = "
extern void print_int(int v);
int cleanup_count = 0;
void risky(int x) {
    if (x % 3 == 0) throw;
}
int protected_call(int x) {
    try {
        risky(x);
        return 1;
    } catch {
        cleanup_count = cleanup_count + 1;
        return 0;
    }
}
int main() {
    int ok = 0;
    for (int i = 1; i <= 9; i = i + 1) ok = ok + protected_call(i);
    print_int(ok);
    print_int(cleanup_count);
    return ok * 10 + cleanup_count;
}";
    let before = run_src(src);
    assert_eq!(before.0, 63, "6 ok, 3 thrown");

    let mut m = lpat::minic::compile("t", src).unwrap();
    lpat::transform::function_pipeline().run(&mut m);
    let mut pm = lpat::transform::link_time_pipeline();
    pm.verify_each = true;
    pm.run(&mut m);
    let mut vm = Vm::new(&m, VmOptions::default()).unwrap();
    let r = vm.run_main().unwrap();
    assert_eq!((r, vm.output), before, "after full optimization");
}

#[test]
fn prune_eh_removes_handlers_interprocedurally() {
    // `safe` cannot throw; after analysis the invoke and its handler
    // disappear (paper §4.1.2: interprocedural elimination of unused
    // exception handlers).
    let m = lpat::asm::parse_module(
        "t",
        "
define internal int @safe(int %x) {
e:
  %r = mul int %x, 2
  ret int %r
}
define int @main() {
e:
  %v = invoke int @safe(int 21) to label %ok unwind label %handler
ok:
  ret int %v
handler:
  ret int -1
}",
    )
    .unwrap();
    let mut m = m;
    let converted = lpat::transform::prune_eh::run_prune_eh(&mut m);
    assert_eq!(converted, 1);
    m.verify().unwrap();
    let text = m.display();
    assert!(!text.contains("invoke"), "{text}");
    assert!(!text.contains("ret int -1"), "dead handler gone: {text}");
    let mut vm = Vm::new(&m, VmOptions::default()).unwrap();
    assert_eq!(vm.run_main().unwrap(), 42);
}

#[test]
fn uncaught_unwind_is_a_clean_trap() {
    let m = lpat::minic::compile("t", "int main() { throw; }").unwrap();
    let mut vm = Vm::new(&m, VmOptions::default()).unwrap();
    match vm.run_main() {
        Err(lpat::vm::ExecError::Trap { kind, .. }) => {
            assert_eq!(kind, lpat::vm::TrapKind::UncaughtUnwind)
        }
        other => panic!("{other:?}"),
    }
}
