//! Property-based tests (proptest) over randomly generated programs:
//!
//! * the three equivalent forms round-trip losslessly;
//! * the verifier accepts everything the generator builds;
//! * the scalar optimizers preserve the VM-observable result;
//! * constant folding agrees with the interpreter's arithmetic.

use proptest::prelude::*;

use lpat::core::{inst::Value, BinOp, CmpPred, IntKind, Linkage, Module};
use lpat::vm::{ExecError, Vm, VmOptions, VmValue};

/// A recipe for one instruction in a generated straight-line function.
#[derive(Clone, Debug)]
enum OpSpec {
    Bin(BinOp, usize, usize),
    Cmp(CmpPred, usize, usize),
    Const(i32),
}

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    prop_oneof![
        (
            prop::sample::select(&BinOp::ALL[..]),
            any::<usize>(),
            any::<usize>()
        )
            .prop_map(|(op, a, b)| OpSpec::Bin(op, a, b)),
        (
            prop::sample::select(&CmpPred::ALL[..]),
            any::<usize>(),
            any::<usize>()
        )
            .prop_map(|(p, a, b)| OpSpec::Cmp(p, a, b)),
        any::<i32>().prop_map(OpSpec::Const),
    ]
}

/// Build `int f(int, int)` from the recipe, plus a `main` that calls it
/// with the given constants. All values are `int`; comparisons are cast
/// back to `int` so every op feeds the same pool.
fn build(ops: &[OpSpec], a0: i32, a1: i32) -> Module {
    let mut m = Module::new("gen");
    let i32t = m.types.i32();
    let f = m.add_function("f", &[i32t, i32t], i32t, false, Linkage::Internal);
    let mut b = m.builder(f);
    b.block();
    let mut pool: Vec<Value> = vec![Value::Arg(0), Value::Arg(1)];
    for op in ops {
        let pick = |i: usize| pool[i % pool.len()];
        let v = match op {
            OpSpec::Bin(op, x, y) => {
                // Division by an arbitrary value may trap; both sides of
                // the comparison run the same program, so that is fine —
                // but shifts of full range are already exercised; keep all.
                b.bin(*op, pick(*x), pick(*y))
            }
            OpSpec::Cmp(p, x, y) => {
                let c = b.cmp(*p, pick(*x), pick(*y));
                b.cast(c, i32t)
            }
            OpSpec::Const(k) => b.iconst32(*k),
        };
        pool.push(v);
    }
    let last = *pool.last().unwrap();
    b.ret(Some(last));
    let main = m.add_function("main", &[], i32t, false, Linkage::External);
    let mut b = m.builder(main);
    b.block();
    let c0 = b.iconst32(a0);
    let c1 = b.iconst32(a1);
    let r = b.call(f, vec![c0, c1]);
    b.ret(Some(r));
    m
}

/// Run main; traps map to a distinguishable sentinel so optimized and
/// unoptimized programs can be compared even when they trap.
fn observe(m: &Module) -> Result<i64, &'static str> {
    let mut opts = VmOptions::default();
    opts.fuel = Some(1_000_000);
    let mut vm = Vm::new(m, opts).unwrap();
    match vm.run_main() {
        Ok(v) => Ok(v),
        Err(ExecError::Trap { kind, .. }) => Err(match kind {
            lpat::vm::TrapKind::DivByZero => "div0",
            _ => "trap",
        }),
        Err(_) => Err("exit"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_ir_verifies_and_round_trips(
        ops in prop::collection::vec(op_strategy(), 1..40),
        a0 in any::<i32>(),
        a1 in any::<i32>(),
    ) {
        let m = build(&ops, a0, a1);
        prop_assert!(m.verify().is_ok());
        // Text round trip.
        let text = m.display();
        let re = lpat::asm::parse_module("gen", &text).unwrap();
        prop_assert_eq!(&text, &re.display());
        // Binary round trip.
        let bytes = lpat::bytecode::write_module(&m);
        let rb = lpat::bytecode::read_module("gen", &bytes).unwrap();
        prop_assert_eq!(&text, &rb.display());
    }

    #[test]
    fn optimizers_preserve_observable_behavior(
        ops in prop::collection::vec(op_strategy(), 1..40),
        a0 in any::<i32>(),
        a1 in any::<i32>(),
    ) {
        let m = build(&ops, a0, a1);
        let before = observe(&m);
        let mut o = m.clone();
        lpat::transform::function_pipeline().run(&mut o);
        prop_assert!(o.verify().is_ok(), "{:?}", o.verify());
        // Division/remainder by zero is *undefined behavior* in the IR
        // (as in C and in LLVM itself); the VM traps as a sanitizer
        // courtesy. Optimizers may therefore delete an unused trapping
        // division — so when the baseline execution hits UB, any outcome
        // is acceptable for the optimized program.
        if before != Err("div0") {
            prop_assert_eq!(&before, &observe(&o), "function pipeline");
        }
        lpat::transform::link_time_pipeline().run(&mut o);
        prop_assert!(o.verify().is_ok());
        if before != Err("div0") {
            prop_assert_eq!(&before, &observe(&o), "link-time pipeline");
        }
    }

    #[test]
    fn constant_folding_matches_interpreter(
        op in prop::sample::select(&BinOp::ALL[..]),
        kind in prop::sample::select(&IntKind::ALL[..]),
        x in any::<i64>(),
        y in any::<i64>(),
    ) {
        use lpat::core::fold::fold_bin;
        use lpat::core::Const;
        let a = Const::Int { kind, value: kind.canonicalize(x) };
        let b = Const::Int { kind, value: kind.canonicalize(y) };
        let mut pool = lpat::core::ConstPool::new();
        let folded = fold_bin(&mut pool, op, &a, &b);
        // Interpreter result via a one-instruction program.
        let mut m = Module::new("t");
        let ty = m.types.int(kind);
        let f = m.add_function("f", &[ty, ty], ty, false, Linkage::External);
        let mut bl = m.builder(f);
        bl.block();
        let r = bl.bin(op, Value::Arg(0), Value::Arg(1));
        bl.ret(Some(r));
        let mut vm = Vm::new(&m, VmOptions::default()).unwrap();
        let exec = vm.run_function(
            f,
            vec![VmValue::int(kind, x), VmValue::int(kind, y)],
        );
        match (folded, exec) {
            (Some(Const::Int { value, .. }), Ok(Some(v))) => {
                prop_assert_eq!(Some(value), v.as_i64(), "{:?} {} {:?}", a, op.name(), b);
            }
            (None, Err(_)) => {} // div/rem by zero: not folded, traps
            (fold, run) => prop_assert!(false, "fold {fold:?} vs run {run:?}"),
        }
    }

    #[test]
    fn type_display_parses_back(
        depth in 0u8..4,
        widths in prop::collection::vec(0usize..4, 1..4),
        seed in any::<u32>(),
    ) {
        // Random nested types built from the four derived constructors.
        let mut m = Module::new("t");
        let mut ty = match seed % 5 {
            0 => m.types.i8(),
            1 => m.types.i32(),
            2 => m.types.u64(),
            3 => m.types.f64(),
            _ => m.types.bool_(),
        };
        for (i, w) in widths.iter().enumerate().take(depth as usize) {
            ty = match (seed as usize + i) % 3 {
                0 => m.types.ptr(ty),
                1 => m.types.array(ty, *w as u64 + 1),
                _ => {
                    let fields = vec![ty; w + 1];
                    m.types.struct_lit(fields)
                }
            };
        }
        let pty = m.types.ptr(ty);
        // Round-trip through a function signature.
        m.add_function("f", &[pty], m.types.void(), false, Linkage::External);
        let text = m.display();
        let re = lpat::asm::parse_module("t", &text).unwrap();
        prop_assert_eq!(text, re.display());
    }
}
