//! Randomized property tests over generated programs (no external
//! dependencies: a seeded SplitMix64 generator drives the cases, so runs
//! are deterministic and reproducible by seed):
//!
//! * the three equivalent forms round-trip losslessly;
//! * the verifier accepts everything the generator builds;
//! * the scalar optimizers preserve the VM-observable result;
//! * constant folding agrees with the interpreter's arithmetic.
//!
//! Build with `--features slow-tests` to multiply the case counts.

use lpat::core::{inst::Value, BinOp, CmpPred, IntKind, Linkage, Module};
use lpat::vm::{ExecError, Vm, VmOptions, VmValue};

/// Deterministic 64-bit generator (SplitMix64).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn usize(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
    fn i32(&mut self) -> i32 {
        self.next() as i32
    }
    fn i64(&mut self) -> i64 {
        self.next() as i64
    }
    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.usize(xs.len())]
    }
}

/// Number of random cases per property (`slow-tests` multiplies by 8).
fn cases() -> u64 {
    if cfg!(feature = "slow-tests") {
        512
    } else {
        64
    }
}

/// A recipe for one instruction in a generated straight-line function.
#[derive(Clone, Debug)]
enum OpSpec {
    Bin(BinOp, usize, usize),
    Cmp(CmpPred, usize, usize),
    Const(i32),
}

fn gen_ops(rng: &mut Rng) -> Vec<OpSpec> {
    let n = 1 + rng.usize(39);
    (0..n)
        .map(|_| match rng.usize(3) {
            0 => OpSpec::Bin(*rng.pick(&BinOp::ALL[..]), rng.usize(64), rng.usize(64)),
            1 => OpSpec::Cmp(*rng.pick(&CmpPred::ALL[..]), rng.usize(64), rng.usize(64)),
            _ => OpSpec::Const(rng.i32()),
        })
        .collect()
}

/// Build `int f(int, int)` from the recipe, plus a `main` that calls it
/// with the given constants. All values are `int`; comparisons are cast
/// back to `int` so every op feeds the same pool.
fn build(ops: &[OpSpec], a0: i32, a1: i32) -> Module {
    let mut m = Module::new("gen");
    let i32t = m.types.i32();
    let f = m.add_function("f", &[i32t, i32t], i32t, false, Linkage::Internal);
    let mut b = m.builder(f);
    b.block();
    let mut pool: Vec<Value> = vec![Value::Arg(0), Value::Arg(1)];
    for op in ops {
        let pick = |i: usize| pool[i % pool.len()];
        let v = match op {
            OpSpec::Bin(op, x, y) => b.bin(*op, pick(*x), pick(*y)),
            OpSpec::Cmp(p, x, y) => {
                let c = b.cmp(*p, pick(*x), pick(*y));
                b.cast(c, i32t)
            }
            OpSpec::Const(k) => b.iconst32(*k),
        };
        pool.push(v);
    }
    let last = *pool.last().unwrap();
    b.ret(Some(last));
    let main = m.add_function("main", &[], i32t, false, Linkage::External);
    let mut b = m.builder(main);
    b.block();
    let c0 = b.iconst32(a0);
    let c1 = b.iconst32(a1);
    let r = b.call(f, vec![c0, c1]);
    b.ret(Some(r));
    m
}

/// Run main; traps map to a distinguishable sentinel so optimized and
/// unoptimized programs can be compared even when they trap.
fn observe(m: &Module) -> Result<i64, &'static str> {
    let opts = VmOptions {
        fuel: Some(1_000_000),
        ..VmOptions::default()
    };
    let mut vm = Vm::new(m, opts).unwrap();
    match vm.run_main() {
        Ok(v) => Ok(v),
        Err(ExecError::Trap { kind, .. }) => Err(match kind {
            lpat::vm::TrapKind::DivByZero => "div0",
            _ => "trap",
        }),
        Err(_) => Err("exit"),
    }
}

#[test]
fn generated_ir_verifies_and_round_trips() {
    let mut rng = Rng::new(0xA11C_E500);
    for case in 0..cases() {
        let ops = gen_ops(&mut rng);
        let (a0, a1) = (rng.i32(), rng.i32());
        let m = build(&ops, a0, a1);
        assert!(m.verify().is_ok(), "case {case}: {:?}", m.verify());
        // Text round trip.
        let text = m.display();
        let re = lpat::asm::parse_module("gen", &text).unwrap();
        assert_eq!(&text, &re.display(), "case {case}");
        // Binary round trip.
        let bytes = lpat::bytecode::write_module(&m);
        let rb = lpat::bytecode::read_module("gen", &bytes).unwrap();
        assert_eq!(&text, &rb.display(), "case {case}");
    }
}

#[test]
fn optimizers_preserve_observable_behavior() {
    let mut rng = Rng::new(0xB0B0_CAFE);
    for case in 0..cases() {
        let ops = gen_ops(&mut rng);
        let (a0, a1) = (rng.i32(), rng.i32());
        let m = build(&ops, a0, a1);
        let before = observe(&m);
        let mut o = m.clone();
        lpat::transform::function_pipeline().run(&mut o);
        assert!(o.verify().is_ok(), "case {case}: {:?}", o.verify());
        // Division/remainder by zero is *undefined behavior* in the IR
        // (as in C and in LLVM itself); the VM traps as a sanitizer
        // courtesy. Optimizers may therefore delete an unused trapping
        // division — so when the baseline execution hits UB, any outcome
        // is acceptable for the optimized program.
        if before != Err("div0") {
            assert_eq!(before, observe(&o), "case {case}: function pipeline");
        }
        lpat::transform::link_time_pipeline().run(&mut o);
        assert!(o.verify().is_ok(), "case {case}");
        if before != Err("div0") {
            assert_eq!(before, observe(&o), "case {case}: link-time pipeline");
        }
    }
}

#[test]
fn constant_folding_matches_interpreter() {
    use lpat::core::fold::fold_bin;
    use lpat::core::Const;
    let mut rng = Rng::new(0xF01D_0101);
    for case in 0..cases() * 4 {
        let op = *rng.pick(&BinOp::ALL[..]);
        let kind = *rng.pick(&IntKind::ALL[..]);
        let (x, y) = (rng.i64(), rng.i64());
        let a = Const::Int {
            kind,
            value: kind.canonicalize(x),
        };
        let b = Const::Int {
            kind,
            value: kind.canonicalize(y),
        };
        let mut pool = lpat::core::ConstPool::new();
        let folded = fold_bin(&mut pool, op, &a, &b);
        // Interpreter result via a one-instruction program.
        let mut m = Module::new("t");
        let ty = m.types.int(kind);
        let f = m.add_function("f", &[ty, ty], ty, false, Linkage::External);
        let mut bl = m.builder(f);
        bl.block();
        let r = bl.bin(op, Value::Arg(0), Value::Arg(1));
        bl.ret(Some(r));
        let mut vm = Vm::new(&m, VmOptions::default()).unwrap();
        let exec = vm.run_function(f, vec![VmValue::int(kind, x), VmValue::int(kind, y)]);
        match (folded, exec) {
            (Some(Const::Int { value, .. }), Ok(Some(v))) => {
                assert_eq!(
                    Some(value),
                    v.as_i64(),
                    "case {case}: {:?} {} {:?}",
                    a,
                    op.name(),
                    b
                );
            }
            (None, Err(_)) => {} // div/rem by zero: not folded, traps
            (fold, run) => panic!("case {case}: fold {fold:?} vs run {run:?}"),
        }
    }
}

#[test]
fn type_display_parses_back() {
    let mut rng = Rng::new(0x7E57_7E57);
    for case in 0..cases() {
        // Random nested types built from the four derived constructors.
        let depth = rng.usize(4);
        let seed = rng.next() as u32;
        let mut m = Module::new("t");
        let mut ty = match seed % 5 {
            0 => m.types.i8(),
            1 => m.types.i32(),
            2 => m.types.u64(),
            3 => m.types.f64(),
            _ => m.types.bool_(),
        };
        for i in 0..depth {
            let w = rng.usize(4);
            ty = match (seed as usize + i) % 3 {
                0 => m.types.ptr(ty),
                1 => m.types.array(ty, w as u64 + 1),
                _ => {
                    let fields = vec![ty; w + 1];
                    m.types.struct_lit(fields)
                }
            };
        }
        let pty = m.types.ptr(ty);
        // Round-trip through a function signature.
        m.add_function("f", &[pty], m.types.void(), false, Linkage::External);
        let text = m.display();
        let re = lpat::asm::parse_module("t", &text).unwrap();
        assert_eq!(text, re.display(), "case {case}");
    }
}

/// Cross-run guard-counter merge: misspeculation and execution counts
/// saturate at `u64::MAX` (never wrap) and the accumulated profile is
/// independent of merge order. The seed folds in `LPAT_STORE_MATRIX`, so
/// every CI store-matrix leg shuffles the runs differently — and every
/// leg must converge on byte-identical accumulated bytes.
#[test]
fn guard_merge_saturates_and_is_order_independent() {
    use lpat::vm::ProfileData;
    let tag = std::env::var("LPAT_STORE_MATRIX").unwrap_or_default();
    let mut seed = 0xabad_cafe_d00d_u64;
    for b in tag.bytes() {
        seed = seed.wrapping_mul(0x0100_0000_01b3) ^ b as u64;
    }
    let mut rng = Rng::new(seed);
    // Guard ids as the planner packs them: devirt (bit 31 clear) and
    // const-arg specialization (bit 31 set).
    let ids = [0x0003_0000u32, 0x0001_0002, 0x8003_0001, 0x8000_0000];
    for case in 0..cases() {
        let k = 2 + rng.usize(6);
        let runs: Vec<ProfileData> = (0..k)
            .map(|_| {
                let mut p = ProfileData::default();
                for &id in &ids {
                    if rng.usize(3) == 0 {
                        continue; // guard not executed this run
                    }
                    // A third of the counts sit close enough to the
                    // ceiling that any multi-run sum overflows.
                    let near_max = rng.usize(3) == 0;
                    let exec = if near_max {
                        u64::MAX - rng.next() % 4
                    } else {
                        rng.next() % 1_000
                    };
                    p.guard_exec_counts.insert(id, exec);
                    p.guard_misspec_counts
                        .insert(id, exec.min(rng.next() % 1_000));
                }
                p
            })
            .collect();
        // Reference: forward merge.
        let mut fwd = ProfileData::default();
        for r in &runs {
            fwd.merge_saturating(r);
        }
        // Saturation: each id's merged count is the saturating sum.
        for &id in &ids {
            let want = runs
                .iter()
                .fold(0u64, |a, r| a.saturating_add(r.guard_exec(id)));
            assert_eq!(fwd.guard_exec(id), want, "case {case} id {id:#x}");
            let want_m = runs
                .iter()
                .fold(0u64, |a, r| a.saturating_add(r.guard_misspec(id)));
            assert_eq!(fwd.guard_misspec(id), want_m, "case {case} id {id:#x}");
        }
        // Order independence, down to the canonical container bytes the
        // store would persist.
        let mut perm: Vec<usize> = (0..k).collect();
        for i in (1..k).rev() {
            perm.swap(i, rng.usize(i + 1));
        }
        let mut shuffled = ProfileData::default();
        for &i in &perm {
            shuffled.merge_saturating(&runs[i]);
        }
        assert_eq!(
            fwd.to_bytes(),
            shuffled.to_bytes(),
            "case {case}: merge order {perm:?} changed the accumulated profile"
        );
    }
}
