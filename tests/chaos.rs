//! Chaos tests for the crash-only daemon (`lpatd --isolate process`).
//!
//! Where `tests/serve.rs` proves the `catch_unwind` isolation holds
//! against *panics*, this suite proves the process-isolation layer holds
//! against the failures `catch_unwind` cannot absorb: `abort(3)`,
//! `SIGKILL` mid-request, and `SIGKILL` parked between any two
//! durability steps of a journaled store write. Every test drives a real
//! `lpatd` subprocess over a real socket and kills real worker
//! processes; after each induced death the daemon must keep serving,
//! exactly one client may see a structured error, and the store must
//! hold zero quarantine debris.
//!
//! CI fans these out via the `chaos-matrix` job, one leg per crash
//! family (`LPAT_CHAOS_MATRIX=worker-abort|journal-kill|watchdog`);
//! locally everything runs.

use std::io::Read as _;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use lpat::serve::{Addr, Client, ErrClass, Op, Request, Response, ShardedStore};
use lpat::vm::module_hash;

const ADD_PROG: &str = "\
define int @main() {
entry:
  %a = add int 40, 2
  ret int %a
}
";

/// A second payload with a different hash, for per-payload breaker
/// isolation checks.
const MUL_PROG: &str = "\
define int @main() {
entry:
  %a = mul int 6, 7
  ret int %a
}
";

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("chaos");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn run_request(module: &str) -> Request {
    let mut req = Request::new(Op::Run);
    req.module = module.as_bytes().to_vec();
    req
}

fn connect(addr: &Addr) -> Client {
    Client::connect(addr, Duration::from_secs(10)).expect("connect")
}

/// An `lpatd` subprocess. Fault plans go through `--inject-faults` (not
/// the environment) so that under `--isolate process` the daemon
/// forwards them to workers instead of arming them in itself.
struct Daemon {
    child: Child,
    addr: Addr,
}

impl Daemon {
    fn spawn(extra_args: &[&str]) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_lpatd"));
        cmd.args(["--listen", "tcp:127.0.0.1:0", "--quiet"])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        let mut child = cmd.spawn().expect("spawn lpatd");
        let mut line = String::new();
        {
            let stdout = child.stdout.as_mut().unwrap();
            let mut one = [0u8; 1];
            while stdout.read(&mut one).unwrap() == 1 {
                if one[0] == b'\n' {
                    break;
                }
                line.push(one[0] as char);
            }
        }
        let addr = line
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("bad startup line: {line:?}"))
            .trim()
            .to_string();
        Daemon {
            child,
            addr: Addr::parse(&addr).unwrap(),
        }
    }

    fn alive(&mut self) -> bool {
        self.child.try_wait().unwrap().is_none()
    }

    /// Wait (bounded) for the daemon to exit on its own; the exit code.
    fn wait_exit(&mut self, patience: Duration) -> Option<i32> {
        let start = Instant::now();
        while start.elapsed() < patience {
            if let Some(status) = self.child.try_wait().unwrap() {
                return status.code();
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        None
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Fetch the daemon's stats JSON (answered in-daemon under process
/// isolation, so it works even while every worker is busy or dead).
fn stats_json(addr: &Addr) -> String {
    let mut c = connect(addr);
    match c.request(&Request::new(Op::Stats)).expect("stats") {
        Response::Ok { output, .. } => String::from_utf8(output).unwrap(),
        other => panic!("stats answered {other:?}"),
    }
}

/// Pull one numeric counter out of the stats JSON.
fn stat(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {json}"));
    json[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

/// The live worker pids the supervisor published (zeroes filtered).
fn worker_pids(json: &str) -> Vec<u32> {
    let at = json.find("\"worker_pids\":[").expect("worker_pids");
    let rest = &json[at + "\"worker_pids\":[".len()..];
    let end = rest.find(']').unwrap();
    rest[..end]
        .split(',')
        .filter_map(|s| s.trim().parse::<u32>().ok())
        .filter(|&p| p != 0)
        .collect()
}

/// Wait until the supervisor has published at least one live worker pid.
fn wait_for_worker_pid(addr: &Addr, patience: Duration) -> u32 {
    let start = Instant::now();
    loop {
        let pids = worker_pids(&stats_json(addr));
        if let Some(&p) = pids.first() {
            return p;
        }
        assert!(
            start.elapsed() < patience,
            "no worker pid appeared within {patience:?}"
        );
        std::thread::sleep(Duration::from_millis(30));
    }
}

fn sigkill(pid: u32) {
    let ok = Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .expect("spawn kill")
        .success();
    assert!(ok, "kill -9 {pid} failed");
}

fn sigterm(pid: u32) {
    let ok = Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .expect("spawn kill")
        .success();
    assert!(ok, "kill -TERM {pid} failed");
}

/// No `*.corrupt-N` quarantine debris anywhere under the cache dir —
/// the whole point of journaled writes is that crashes never surface as
/// corrupt-store quarantines.
fn assert_no_corrupt_files(root: &std::path::Path) {
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for ent in std::fs::read_dir(&dir).unwrap() {
            let ent = ent.unwrap();
            let path = ent.path();
            if path.is_dir() {
                stack.push(path);
                continue;
            }
            let name = ent.file_name();
            let name = name.to_string_lossy();
            assert!(
                !name.contains(".corrupt-"),
                "quarantine debris after crash: {}",
                path.display()
            );
        }
    }
}

/// Stored run count for `module` (0 when no profile was persisted).
fn stored_runs(cache: &std::path::Path, shards: u32, module: &str) -> u64 {
    let m = lpat::asm::parse_module("chaos", module).unwrap();
    let store = ShardedStore::open(cache, shards).unwrap();
    let hash = module_hash(&m);
    store
        .shard(hash)
        .load_profile(hash)
        .unwrap()
        .value
        .map(|sp| sp.runs)
        .unwrap_or(0)
}

/// Matrix legs: CI runs one family per job via `LPAT_CHAOS_MATRIX`;
/// locally all run.
fn in_matrix(family: &str) -> bool {
    match std::env::var("LPAT_CHAOS_MATRIX") {
        Ok(v) if !v.trim().is_empty() => v.split(',').any(|s| s.trim() == family),
        _ => true,
    }
}

// ---------------------------------------------------------------------------
// Worker aborts: one request, not the daemon.
// ---------------------------------------------------------------------------

#[test]
fn worker_abort_costs_one_request_not_the_daemon() {
    if !in_matrix("worker-abort") {
        return;
    }
    // The worker aborts on its SECOND request: request 1 proves the slot
    // works, request 2 takes the abort, request 3 proves the respawned
    // slot works. `catch_unwind` cannot absorb abort(3) — only the
    // process boundary can.
    let mut d = Daemon::spawn(&[
        "--isolate",
        "process",
        "--workers",
        "1",
        "--crash-k",
        "100",
        "--restart-backoff-ms",
        "10",
        "--inject-faults",
        "serve.worker:abort@2",
    ]);
    let mut c = connect(&d.addr);
    match c.request(&run_request(ADD_PROG)).unwrap() {
        Response::Ok { exit, .. } => assert_eq!(exit, 42),
        other => panic!("warmup answered {other:?}"),
    }
    match c.request(&run_request(ADD_PROG)).unwrap() {
        Response::Err { class, message } => {
            assert_eq!(class, ErrClass::Crashed, "{message}");
            assert!(message.contains("worker died"), "{message}");
        }
        other => panic!("aborting request answered {other:?}"),
    }
    // Same connection, next request: a fresh worker serves it.
    match c.request(&run_request(ADD_PROG)).unwrap() {
        Response::Ok { exit, .. } => assert_eq!(exit, 42),
        other => panic!("post-crash request answered {other:?}"),
    }
    let json = stats_json(&d.addr);
    assert_eq!(stat(&json, "worker_crashes"), 1, "{json}");
    assert_eq!(stat(&json, "worker_restarts"), 1, "{json}");
    assert!(d.alive(), "daemon died with its worker");
}

#[test]
fn sigkill_mid_request_answers_crashed_and_daemon_survives() {
    if !in_matrix("worker-abort") {
        return;
    }
    // Every request stalls 5s inside the worker; the test SIGKILLs the
    // worker mid-stall — the client must get `crashed` long before the
    // stall would have ended, and the daemon must not notice.
    let mut d = Daemon::spawn(&[
        "--isolate",
        "process",
        "--workers",
        "1",
        "--crash-k",
        "100",
        "--restart-backoff-ms",
        "10",
        "--inject-faults",
        "serve.worker:delay=5000",
    ]);
    let addr = d.addr.clone();
    let inflight = std::thread::spawn(move || {
        let mut c = connect(&addr);
        c.request(&run_request(ADD_PROG)).unwrap()
    });
    let pid = wait_for_worker_pid(&d.addr, Duration::from_secs(5));
    std::thread::sleep(Duration::from_millis(300)); // let it park in the stall
    let t0 = Instant::now();
    sigkill(pid);
    match inflight.join().unwrap() {
        Response::Err { class, message } => {
            assert_eq!(class, ErrClass::Crashed, "{message}");
        }
        other => panic!("killed request answered {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(3),
        "crash answer took {:?} — the supervisor waited out the stall",
        t0.elapsed()
    );
    let json = stats_json(&d.addr);
    assert_eq!(stat(&json, "worker_crashes"), 1, "{json}");
    assert!(d.alive(), "daemon died with its worker");
}

#[test]
fn sigkill_salvages_a_flight_record_into_the_crash_diagnostic() {
    if !in_matrix("worker-abort") {
        return;
    }
    // A worker dying to SIGKILL cannot flush anything at death; its
    // flight recorder must therefore have already spilled the recent
    // trace ring incrementally. The supervisor salvages the
    // checksum-valid prefix into a standalone dump and references it in
    // the `Crashed` diagnostic.
    let flight_dir = tmp("flight-salvage");
    let _ = std::fs::remove_dir_all(&flight_dir);
    let mut d = Daemon::spawn(&[
        "--isolate",
        "process",
        "--workers",
        "1",
        "--crash-k",
        "100",
        "--restart-backoff-ms",
        "10",
        "--flight-dir",
        flight_dir.to_str().unwrap(),
        "--inject-faults",
        "serve.worker:delay=5000",
    ]);
    let addr = d.addr.clone();
    let inflight = std::thread::spawn(move || {
        let mut c = connect(&addr);
        let mut req = run_request(ADD_PROG);
        req.request_id = 77; // client-chosen: pins the dump's file name
        c.request(&req).unwrap()
    });
    let pid = wait_for_worker_pid(&d.addr, Duration::from_secs(5));
    std::thread::sleep(Duration::from_millis(300)); // let it park in the stall
    sigkill(pid);
    let message = match inflight.join().unwrap() {
        Response::Err { class, message } => {
            assert_eq!(class, ErrClass::Crashed, "{message}");
            message
        }
        other => panic!("killed request answered {other:?}"),
    };
    assert!(
        message.contains("flight record:"),
        "crash diagnostic must reference the salvaged flight record: {message}"
    );
    let dump = flight_dir.join("slot0-rid77.flight");
    assert!(
        message.contains(&dump.display().to_string()),
        "diagnostic must name the dump path: {message}"
    );
    let bytes = std::fs::read(&dump).expect("flight dump exists");
    assert!(
        bytes.starts_with(&lpat::core::trace::FLIGHT_MAGIC),
        "flight dump must start with the LPFR magic"
    );
    let events = lpat::core::trace::read_flight(&dump).expect("flight dump parses");
    assert!(
        !events.is_empty(),
        "flight dump must carry the worker's last events"
    );
    // The ring captured the doomed request itself, not just old traffic.
    assert!(
        events
            .iter()
            .any(|e| e.cat == "serve.worker" && e.name == "request.begin"),
        "flight events: {events:?}"
    );
    let json = stats_json(&d.addr);
    assert_eq!(stat(&json, "flight_salvaged"), 1, "{json}");
    assert!(d.alive(), "daemon died with its worker");
}

// ---------------------------------------------------------------------------
// Journal crash points: SIGKILL parked between every pair of durability
// steps; the store must recover to a consistent state every time.
// ---------------------------------------------------------------------------

#[test]
fn sigkill_at_every_journal_step_leaves_a_consistent_store() {
    if !in_matrix("journal-kill") {
        return;
    }
    // Steps of a journaled write: 1 intent append, 2 temp write, 3 temp
    // fsync, 4 rename, 5 commit append. `store.journal:delay=...@N`
    // parks the worker immediately BEFORE step N's action, so a SIGKILL
    // during the stall means steps 1..N-1 happened and step N did not:
    //   - killed before the temp file is complete (steps 1-2): the
    //     run's profile delta is LOST — recovery rolls back;
    //   - killed once the temp file is fully written (steps 3-5): the
    //     delta is DURABLE — recovery replays the rename.
    // Either way: no torn file, no quarantine debris, and the run count
    // equals what the crash semantics promise.
    for step in 1..=5u32 {
        let cache = tmp(&format!("journal-step-{step}"));
        let _ = std::fs::remove_dir_all(&cache);
        let mut d = Daemon::spawn(&[
            "--isolate",
            "process",
            "--workers",
            "1",
            "--crash-k",
            "100",
            "--restart-backoff-ms",
            "10",
            "--shards",
            "2",
            "--cache-dir",
            cache.to_str().unwrap(),
            "--inject-faults",
            &format!("store.journal:delay=5000@{step}"),
        ]);
        let addr = d.addr.clone();
        let inflight = std::thread::spawn(move || {
            let mut c = connect(&addr);
            c.request(&run_request(ADD_PROG)).unwrap()
        });
        let pid = wait_for_worker_pid(&d.addr, Duration::from_secs(5));
        // Give the worker time to execute the module and park in the
        // journal stall, then kill it between two durability steps.
        std::thread::sleep(Duration::from_millis(600));
        sigkill(pid);
        match inflight.join().unwrap() {
            Response::Err { class, .. } => assert_eq!(class, ErrClass::Crashed, "step {step}"),
            other => panic!("step {step}: killed request answered {other:?}"),
        }
        // A fresh worker (which first recovers the journal its
        // predecessor left) serves the next run of the same module. Its
        // own @N delay fires during its own first profile write — a
        // stall, not a kill, so the request completes.
        let mut c = connect(&d.addr);
        match c.request(&run_request(ADD_PROG)).unwrap() {
            Response::Ok { exit, .. } => assert_eq!(exit, 42, "step {step}"),
            other => panic!("step {step}: post-crash run answered {other:?}"),
        }
        assert!(d.alive(), "step {step}: daemon died");
        drop(d);
        assert_no_corrupt_files(&cache);
        let runs = stored_runs(&cache, 2, ADD_PROG);
        let expect = if step <= 2 { 1 } else { 2 };
        assert_eq!(
            runs,
            expect,
            "step {step}: killed write should be {} (runs)",
            if step <= 2 { "lost" } else { "replayed" }
        );
    }
}

// ---------------------------------------------------------------------------
// Crash-loop quarantine.
// ---------------------------------------------------------------------------

#[test]
fn crash_loop_quarantine_trips_and_survives_daemon_restart() {
    if !in_matrix("worker-abort") {
        return;
    }
    let cache = tmp("quarantine");
    let _ = std::fs::remove_dir_all(&cache);
    let common = [
        "--isolate",
        "process",
        "--workers",
        "1",
        "--crash-k",
        "2",
        "--restart-backoff-ms",
        "10",
        "--shards",
        "2",
        "--cache-dir",
    ];
    {
        // Daemon A: every request aborts its worker. Two strikes trip
        // the breaker; the third answers from the denylist without
        // burning a worker.
        let mut args: Vec<&str> = common.to_vec();
        args.push(cache.to_str().unwrap());
        args.extend(["--inject-faults", "serve.worker:abort"]);
        let d = Daemon::spawn(&args);
        let mut c = connect(&d.addr);
        for strike in 0..2 {
            match c.request(&run_request(ADD_PROG)).unwrap() {
                Response::Err { class, .. } => {
                    assert_eq!(class, ErrClass::Crashed, "strike {strike}")
                }
                other => panic!("strike {strike} answered {other:?}"),
            }
        }
        let crashes_before = stat(&stats_json(&d.addr), "worker_crashes");
        match c.request(&run_request(ADD_PROG)).unwrap() {
            Response::Err { class, message } => {
                assert_eq!(class, ErrClass::Quarantined, "{message}");
                assert!(message.contains("denylisted"), "{message}");
            }
            other => panic!("post-trip request answered {other:?}"),
        }
        let json = stats_json(&d.addr);
        assert_eq!(
            stat(&json, "worker_crashes"),
            crashes_before,
            "quarantined request burned a worker: {json}"
        );
        assert_eq!(stat(&json, "quarantined"), 1, "{json}");
        // A different payload is NOT quarantined (it aborts — its own
        // first strike — proving the denylist is per-payload).
        match c.request(&run_request(MUL_PROG)).unwrap() {
            Response::Err { class, .. } => assert_eq!(class, ErrClass::Crashed),
            other => panic!("other payload answered {other:?}"),
        }
    }
    {
        // Daemon B: same store, NO fault plan — the module would run
        // fine now, but the persisted deny record must still refuse it.
        let mut args: Vec<&str> = common.to_vec();
        args.push(cache.to_str().unwrap());
        let d = Daemon::spawn(&args);
        let mut c = connect(&d.addr);
        match c.request(&run_request(ADD_PROG)).unwrap() {
            Response::Err { class, message } => {
                assert_eq!(class, ErrClass::Quarantined, "{message}")
            }
            other => panic!("restarted daemon answered {other:?}"),
        }
        // The payload that never tripped the breaker runs normally.
        match c.request(&run_request(MUL_PROG)).unwrap() {
            Response::Ok { exit, .. } => assert_eq!(exit, 42),
            other => panic!("clean payload answered {other:?}"),
        }
    }
    assert_no_corrupt_files(&cache);
}

// ---------------------------------------------------------------------------
// Watchdog: a wedged worker is hard-killed at deadline + grace.
// ---------------------------------------------------------------------------

#[test]
fn watchdog_hard_kills_a_wedged_worker() {
    if !in_matrix("watchdog") {
        return;
    }
    // The worker stalls 60s — far past any deadline; cooperative checks
    // never run during the stall, so only the supervisor's SIGKILL can
    // reclaim the slot.
    let mut d = Daemon::spawn(&[
        "--isolate",
        "process",
        "--workers",
        "1",
        "--crash-k",
        "100",
        "--restart-backoff-ms",
        "10",
        "--watchdog-grace-ms",
        "300",
        "--inject-faults",
        "serve.worker:delay=60000",
    ]);
    let mut c = connect(&d.addr);
    let mut req = run_request(ADD_PROG);
    req.deadline_ms = 500;
    let t0 = Instant::now();
    match c.request(&req).unwrap() {
        Response::Err { class, message } => {
            assert_eq!(class, ErrClass::Deadline, "{message}");
            assert!(message.contains("hard-killed"), "{message}");
        }
        other => panic!("wedged request answered {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "watchdog answer took {:?}",
        t0.elapsed()
    );
    let json = stats_json(&d.addr);
    assert_eq!(stat(&json, "watchdog_kills"), 1, "{json}");
    assert!(d.alive(), "daemon died with its wedged worker");
}

// ---------------------------------------------------------------------------
// Graceful drain on SIGTERM.
// ---------------------------------------------------------------------------

#[test]
fn sigterm_drains_the_inflight_request_and_exits_zero() {
    if !in_matrix("watchdog") {
        return;
    }
    // The in-flight request stalls 1.5s in its worker; SIGTERM arrives
    // mid-stall. The daemon must finish that request (the client sees
    // Ok 42, not a reset connection), dump its final metrics, then
    // exit 0.
    let metrics = tmp("sigterm-metrics.json");
    let _ = std::fs::remove_file(&metrics);
    let mut d = Daemon::spawn(&[
        "--isolate",
        "process",
        "--workers",
        "1",
        "--restart-backoff-ms",
        "10",
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--inject-faults",
        "serve.worker:delay=1500@1",
    ]);
    let addr = d.addr.clone();
    let inflight = std::thread::spawn(move || {
        let mut c = connect(&addr);
        c.request(&run_request(ADD_PROG)).unwrap()
    });
    // Let the request reach the worker, then ask for the drain.
    std::thread::sleep(Duration::from_millis(400));
    sigterm(d.child.id());
    match inflight.join().unwrap() {
        Response::Ok { exit, .. } => assert_eq!(exit, 42),
        other => panic!("drained request answered {other:?}"),
    }
    let code = d
        .wait_exit(Duration::from_secs(10))
        .expect("daemon did not exit after SIGTERM");
    assert_eq!(code, 0, "drain must exit cleanly");
    // The graceful drain goes through the same export path as
    // `--max-requests`: the final metrics land on disk, drained request
    // included.
    let dumped = std::fs::read_to_string(&metrics).expect("SIGTERM drain must dump --metrics-out");
    assert!(dumped.contains("\"counters\""), "{dumped}");
    assert!(
        dumped.contains("\"serve.ok\":1"),
        "the drained request must be in the final dump: {dumped}"
    );
}
