//! End-to-end tests of the lifelong persistence subsystem (paper §3.5–3.6):
//! cross-run profile accumulation, crash-safe store recovery, and
//! offline reoptimization through the `lpatc` driver.
//!
//! The store's own unit tests (`crates/vm/src/store.rs`) cover the
//! container format and every error class in-process; this file drives
//! the same machinery the way a user would — separate `lpatc` processes
//! sharing a `--cache-dir` — and checks the cross-run guarantees:
//!
//! * two runs merge to *exactly* doubled saturating counts, and the
//!   merged profile identifies the same hot loops/traces as one
//!   double-length run;
//! * a torn write (truncation at any offset) is quarantined and the
//!   store regenerates, never crashes, never silently reuses;
//! * every [`StoreError`] class degrades a run to "uncached with a
//!   warning", never a failure;
//! * two instrumented runs + offline `lpatc reopt` produce the same
//!   bytes as one in-memory profile→reoptimize session, at any `--jobs`.

use std::path::{Path, PathBuf};
use std::process::Command;

use lpat::bytecode::write_module;
use lpat::core::Module;
use lpat::vm::{module_hash, reoptimize, PgoOptions, ProfileData, Store, Vm, VmOptions};

/// A program with a clearly hot call pair inside a loop whose trip count
/// we can scale; `main` returns 0 so subprocess success is unambiguous.
fn src(iters: u32) -> String {
    format!(
        "
extern void print_int(int v);

static int classify(int v) {{
    if (v % 97 == 0) return 3;
    if (v % 7 == 0) return 2;
    return 1;
}}

static int score(int kind, int v) {{
    if (kind == 3) return v * 31;
    if (kind == 2) return v * 5;
    return v + 1;
}}

int main() {{
    int total = 0;
    for (int i = 0; i < {iters}; i = i + 1) {{
        int kind = classify(i);
        total = total + score(kind, i);
        total = total % 1000003;
    }}
    print_int(total);
    return 0;
}}"
    )
}

fn build(iters: u32) -> Module {
    lpat::minic::compile("app", &src(iters)).expect("compile")
}

/// One instrumented in-process run; returns the collected profile.
fn profile_of(m: &Module) -> ProfileData {
    let opts = VmOptions {
        profile: true,
        ..VmOptions::default()
    };
    let mut vm = Vm::new(m, opts).expect("vm");
    vm.run_main().expect("run");
    vm.profile
}

fn lpatc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lpatc"))
}

/// A fresh per-test scratch directory under the target tmpdir.
fn fresh_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Write `m` as bytecode at `dir/app.bc`.
fn write_bc(dir: &Path, m: &Module) -> PathBuf {
    let p = dir.join("app.bc");
    std::fs::write(&p, write_module(m)).unwrap();
    p
}

/// Run `lpatc run <bc> --cache-dir <cache>` plus extra args; the run
/// itself must always succeed regardless of what the cache contains.
fn run_cached(bc: &Path, cache: &Path, extra: &[&str], env: &[(&str, &str)]) -> (String, String) {
    let mut cmd = lpatc();
    cmd.args([
        "run",
        bc.to_str().unwrap(),
        "--cache-dir",
        cache.to_str().unwrap(),
    ]);
    cmd.args(extra);
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().unwrap();
    assert!(
        out.status.success(),
        "run failed (cache dir {}):\n{}",
        cache.display(),
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn corrupt_files(cache: &Path) -> Vec<PathBuf> {
    std::fs::read_dir(cache)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.to_string_lossy().contains(".corrupt-"))
        .collect()
}

// ---------------------------------------------------------------------
// Cross-run merge.
// ---------------------------------------------------------------------

#[test]
fn two_runs_store_exactly_doubled_counts() {
    let dir = fresh_dir("persist-double");
    let cache = dir.join("cache");
    let m = build(5000);
    let bc = write_bc(&dir, &m);

    let (out1, _) = run_cached(&bc, &cache, &[], &[]);
    let (out2, _) = run_cached(&bc, &cache, &[], &[]);
    assert_eq!(
        out1, out2,
        "deterministic program produced different output"
    );

    let single = profile_of(&m);
    let store = Store::open(&cache).unwrap();
    let loaded = store.load_profile(module_hash(&m)).unwrap();
    assert!(loaded.quarantined.is_empty());
    let stored = loaded.value.expect("profile recorded");
    assert_eq!(stored.runs, 2);

    // Exactly doubled — same keys, every count multiplied by two.
    assert_eq!(stored.profile.block_counts.len(), single.block_counts.len());
    for (k, v) in &single.block_counts {
        assert_eq!(
            stored.profile.block_counts.get(k),
            Some(&(v * 2)),
            "block count {k:?} not exactly doubled"
        );
    }
    assert_eq!(stored.profile.edge_counts.len(), single.edge_counts.len());
    for (k, v) in &single.edge_counts {
        assert_eq!(stored.profile.edge_counts.get(k), Some(&(v * 2)));
    }
    for (k, v) in &single.call_counts {
        assert_eq!(stored.profile.call_counts.get(k), Some(&(v * 2)));
    }
    for (k, v) in &single.callsite_counts {
        assert_eq!(stored.profile.callsite_counts.get(k), Some(&(v * 2)));
    }
}

#[test]
fn merged_runs_find_the_same_hot_structure_as_one_long_run() {
    // Two 2500-iteration runs merged vs one 5000-iteration run: the
    // modules differ only in the loop bound constant, so hot loops and
    // traces must line up block-for-block.
    let half = build(2500);
    let full = build(5000);
    let mut merged = profile_of(&half);
    let again = profile_of(&half);
    merged.merge_saturating(&again);
    let long = profile_of(&full);

    let shape = |m: &Module, p: &ProfileData| -> Vec<(String, usize, Vec<usize>)> {
        p.hot_loops(m, 100)
            .iter()
            .map(|h| {
                let (trace, _cov) = lpat::vm::form_trace(m, p, h);
                (
                    m.func(h.func).name.clone(),
                    h.header.index(),
                    trace.iter().map(|b| b.index()).collect(),
                )
            })
            .collect()
    };
    let merged_shape = shape(&half, &merged);
    assert!(!merged_shape.is_empty(), "expected at least one hot loop");
    assert_eq!(
        merged_shape,
        shape(&full, &long),
        "merged profile disagrees with a double-length run on hot structure"
    );
}

// ---------------------------------------------------------------------
// Torn writes.
// ---------------------------------------------------------------------

#[test]
fn torn_profile_writes_recover_with_quarantine() {
    let dir = fresh_dir("persist-torn");
    let cache = dir.join("cache");
    let m = build(600);
    let bc = write_bc(&dir, &m);
    run_cached(&bc, &cache, &[], &[]);

    let store = Store::open(&cache).unwrap();
    let ppath = store.profile_path(module_hash(&m));
    let good = std::fs::read(&ppath).unwrap();

    // Subprocess legs at representative truncation points; the store unit
    // tests sweep every offset in-process.
    for cut in [0usize, 1, 4, good.len() / 2, good.len() - 1] {
        for stale in corrupt_files(&cache) {
            std::fs::remove_file(stale).unwrap();
        }
        std::fs::write(&ppath, &good[..cut]).unwrap();
        let (_, stderr) = run_cached(&bc, &cache, &[], &[]);
        assert!(
            stderr.contains("quarantined"),
            "cut {cut}: no quarantine warning:\n{stderr}"
        );
        assert_eq!(
            corrupt_files(&cache).len(),
            1,
            "cut {cut}: torn file not moved aside"
        );
        // The regenerated profile holds exactly this run, nothing torn.
        let reloaded = store.load_profile(module_hash(&m)).unwrap();
        assert!(reloaded.quarantined.is_empty());
        assert_eq!(reloaded.value.expect("regenerated").runs, 1);
    }
}

// ---------------------------------------------------------------------
// Corruption matrix: every StoreError class degrades, never fails.
// ---------------------------------------------------------------------

#[test]
fn every_store_error_class_degrades_to_an_uncached_run() {
    let m = build(600);
    let hash = module_hash(&m);
    let clean_output = {
        let dir = fresh_dir("persist-matrix-clean");
        let cache = dir.join("cache");
        let bc = write_bc(&dir, &m);
        run_cached(&bc, &cache, &[], &[]).0
    };

    // Each leg: seed the failure, run, demand success + identical program
    // output + a matching warning.
    struct Leg {
        name: &'static str,
        expect: &'static str,
        env: &'static [(&'static str, &'static str)],
        seed: fn(&Path, &Module, u64),
    }
    let legs: &[Leg] = &[
        Leg {
            name: "checksum",
            expect: "integrity failure",
            env: &[],
            seed: |cache, m, hash| {
                // Flip a byte in the middle of a previously good profile.
                let p = Store::open(cache).unwrap().profile_path(hash);
                lpat::vm::store::write_profile_file(&p, hash, &profile_of(m), 1).unwrap();
                let mut b = std::fs::read(&p).unwrap();
                let mid = b.len() / 2;
                b[mid] ^= 0xFF;
                std::fs::write(&p, b).unwrap();
            },
        },
        Leg {
            name: "version",
            expect: "version",
            env: &[],
            seed: |cache, m, hash| {
                let p = Store::open(cache).unwrap().profile_path(hash);
                lpat::vm::store::write_profile_file(&p, hash, &profile_of(m), 1).unwrap();
                let mut b = std::fs::read(&p).unwrap();
                b[4..8].copy_from_slice(&0xFEu32.to_le_bytes());
                std::fs::write(&p, b).unwrap();
            },
        },
        Leg {
            name: "stale-hash",
            expect: "stale artifact",
            env: &[],
            seed: |cache, m, hash| {
                // A profile keyed to different module bytes, parked at
                // this module's path: gathered on an older build.
                let p = Store::open(cache).unwrap().profile_path(hash);
                lpat::vm::store::write_profile_file(&p, hash ^ 1, &profile_of(m), 1).unwrap();
            },
        },
        Leg {
            name: "locked",
            expect: "locked",
            env: &[],
            seed: |cache, _m, _hash| {
                // The holder must be a *live* process: locks record their
                // holder's PID and a dead holder's lock is broken
                // immediately. This test process itself is the holder.
                std::fs::create_dir_all(cache).unwrap();
                std::fs::write(cache.join("lock"), format!("{}\n", std::process::id())).unwrap();
            },
        },
        Leg {
            name: "write-io",
            expect: "I/O error",
            env: &[("LPAT_FAULTS", "store.write:io@1")],
            seed: |_, _, _| {},
        },
        Leg {
            name: "read-io",
            expect: "I/O error",
            env: &[("LPAT_FAULTS", "store.read:io@1")],
            seed: |cache, m, hash| {
                let p = Store::open(cache).unwrap().profile_path(hash);
                lpat::vm::store::write_profile_file(&p, hash, &profile_of(m), 1).unwrap();
            },
        },
    ];

    // CI runs one class per job via LPAT_STORE_MATRIX=<name>; locally
    // every class runs.
    let only = std::env::var("LPAT_STORE_MATRIX").ok();
    for leg in legs {
        if let Some(sel) = &only {
            if sel != leg.name {
                continue;
            }
        }
        let dir = fresh_dir(&format!("persist-matrix-{}", leg.name));
        let cache = dir.join("cache");
        let bc = write_bc(&dir, &m);
        (leg.seed)(&cache, &m, hash);
        let (stdout, stderr) = run_cached(&bc, &cache, &[], leg.env);
        assert_eq!(
            stdout, clean_output,
            "{}: program output changed under a cache failure",
            leg.name
        );
        assert!(
            stderr.to_lowercase().contains(&leg.expect.to_lowercase()),
            "{}: expected a '{}' warning, got:\n{stderr}",
            leg.name,
            leg.expect
        );
        // Failed persistence must leave no temp droppings behind.
        if cache.exists() {
            let tmps: Vec<_> = std::fs::read_dir(&cache)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .filter(|n| n.contains(".tmp-"))
                .collect();
            assert!(
                tmps.is_empty(),
                "{}: leftover temp files {tmps:?}",
                leg.name
            );
        }
    }
}

// ---------------------------------------------------------------------
// Store container fuzzing.
// ---------------------------------------------------------------------

#[test]
fn mutated_store_containers_never_panic() {
    // Same SplitMix64 generator as tests/fuzz_bytecode.rs.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn usize(&mut self, bound: usize) -> usize {
            (self.next() % bound.max(1) as u64) as usize
        }
    }

    let dir = fresh_dir("persist-fuzz");
    let cache = dir.join("cache");
    let m = build(200);
    let hash = module_hash(&m);
    let store = Store::open(&cache).unwrap();
    store.save_profile(hash, &profile_of(&m), 1).unwrap();
    store.save_reopt(hash, &m).unwrap();
    let seeds = [
        std::fs::read(store.profile_path(hash)).unwrap(),
        std::fs::read(store.reopt_path(hash)).unwrap(),
    ];

    let mut rng = Rng(0xcafe_f00d);
    for i in 0..2_000u32 {
        let mut buf = seeds[rng.usize(seeds.len())].clone();
        for _ in 0..=rng.usize(4) {
            match if buf.is_empty() { 3 } else { rng.usize(4) } {
                0 => {
                    let p = rng.usize(buf.len());
                    buf[p] ^= 1 << rng.usize(8);
                }
                1 => {
                    let p = rng.usize(buf.len());
                    buf[p] = rng.next() as u8;
                }
                2 => buf.truncate(rng.usize(buf.len() + 1)),
                _ => {
                    let p = rng.usize(buf.len() + 1);
                    buf.insert(p, rng.next() as u8);
                }
            }
        }
        // Park the mutant at both paths; a load must classify or
        // quarantine it — never panic, and never hand back a module or
        // profile from a file that fails validation undetected.
        std::fs::write(store.profile_path(hash), &buf).unwrap();
        std::fs::write(store.reopt_path(hash), &buf).unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = store.load_profile(hash);
            let _ = store.load_reopt(hash, "fuzz");
        }));
        assert!(
            r.is_ok(),
            "store load panicked on mutant {i} ({} bytes)",
            buf.len()
        );
        for stale in corrupt_files(&cache) {
            std::fs::remove_file(stale).unwrap();
        }
    }
}

// ---------------------------------------------------------------------
// Offline reoptimization over the store.
// ---------------------------------------------------------------------

#[test]
fn offline_reopt_matches_in_memory_session_at_any_jobs() {
    let dir = fresh_dir("persist-reopt");
    let cache = dir.join("cache");
    let m = build(5000);
    let bc = write_bc(&dir, &m);

    // End-user side: two instrumented runs in separate processes.
    run_cached(&bc, &cache, &[], &[]);
    run_cached(&bc, &cache, &[], &[]);

    // Idle-time side: offline reopt over the accumulated store, at two
    // worker counts — the result must not depend on scheduling.
    let mut outs = Vec::new();
    for jobs in ["1", "8"] {
        let out_path = dir.join(format!("reopt-j{jobs}.bc"));
        let out = lpatc()
            .args([
                "reopt",
                bc.to_str().unwrap(),
                "--cache-dir",
                cache.to_str().unwrap(),
                "--jobs",
                jobs,
                "-o",
                out_path.to_str().unwrap(),
                "--emit",
                "bc",
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "reopt --jobs {jobs} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("inlined"),
            "--jobs {jobs}: no reopt summary:\n{stderr}"
        );
        outs.push(std::fs::read(&out_path).unwrap());
    }
    assert_eq!(outs[0], outs[1], "reopt output differs across --jobs");

    // The same session replayed entirely in memory: two profiled runs,
    // merge, reoptimize. Byte-identical to the offline path. The driver
    // works on the *shipped* (serialized) module, so replay from the
    // same bytes.
    let mut mm = lpat::bytecode::read_module("app", &write_module(&m)).unwrap();
    let mut merged = profile_of(&mm);
    let second = profile_of(&mm);
    merged.merge_saturating(&second);
    reoptimize(&mut mm, &merged, &PgoOptions::default());
    assert_eq!(
        outs[0],
        write_module(&mm),
        "offline store-driven reopt diverged from the in-memory session"
    );

    // And the next run transparently picks up the cached module.
    let (_, stderr) = run_cached(&bc, &cache, &[], &[]);
    assert!(
        stderr.contains("using reoptimized module"),
        "cached reopt module not used:\n{stderr}"
    );
}

// ---------------------------------------------------------------------
// Explicit profile files (--profile-out / --profile-in).
// ---------------------------------------------------------------------

#[test]
fn explicit_profile_files_accumulate_across_runs() {
    let dir = fresh_dir("persist-files");
    let m = build(600);
    let bc = write_bc(&dir, &m);
    let p1 = dir.join("p1.lpp");
    let p2 = dir.join("p2.lpp");

    let run = |args: &[&str]| {
        let out = lpatc()
            .args(["run", bc.to_str().unwrap()])
            .args(args)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    run(&["--profile-out", p1.to_str().unwrap()]);
    run(&[
        "--profile-in",
        p1.to_str().unwrap(),
        "--profile-out",
        p2.to_str().unwrap(),
    ]);

    let (h1, sp1) = lpat::vm::store::read_profile_file(&p1).unwrap();
    let (h2, sp2) = lpat::vm::store::read_profile_file(&p2).unwrap();
    assert_eq!(h1, module_hash(&m));
    assert_eq!(h2, h1);
    assert_eq!(sp1.runs, 1);
    assert_eq!(sp2.runs, 2);
    for (k, v) in &sp1.profile.block_counts {
        assert_eq!(sp2.profile.block_counts.get(k), Some(&(v * 2)));
    }

    // A stale explicit profile (different module bytes) is refused by
    // reopt, not silently applied.
    let other = build(601);
    let stale = dir.join("stale.lpp");
    lpat::vm::store::write_profile_file(&stale, module_hash(&other), &profile_of(&other), 1)
        .unwrap();
    let out = lpatc()
        .args([
            "reopt",
            bc.to_str().unwrap(),
            "--profile-in",
            stale.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "stale profile must not be applied");
    assert!(String::from_utf8_lossy(&out.stderr).contains("stale"));
}
