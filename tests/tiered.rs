//! Differential tests for the tiered execution engine: at *any* tier-up
//! threshold — 0 (promote everything on first call), 1, the default, or
//! effectively-infinite (never promote) — the tiered engine must be
//! observationally identical to the reference interpreter: same program
//! output, same return value or trap kind, same instruction count, fuel
//! consumption, opcode histogram, and profile counters. This holds across
//! the whole workload suite, for trapping programs, under injected
//! translation faults (the tiered engine demotes and keeps going), and
//! with warm-started tier decisions.

use std::process::Command;

use lpat::vm::{ExecError, TrapKind, Vm, VmOptions};

/// Everything observable about one execution.
#[derive(Debug, PartialEq)]
struct Observed {
    outcome: Result<i64, TrapKind>,
    output: String,
    insts: u64,
    fuel_left: Option<u64>,
    opcode_counts: Vec<u64>,
    profile: lpat::vm::ProfileData,
}

fn observe(
    m: &lpat::core::Module,
    engine: &str,
    tier_up: u64,
    warm: Option<&lpat::vm::ProfileData>,
) -> Observed {
    observe_spec(m, engine, tier_up, warm, None)
}

fn observe_spec(
    m: &lpat::core::Module,
    engine: &str,
    tier_up: u64,
    warm: Option<&lpat::vm::ProfileData>,
    spec: Option<&std::rc::Rc<lpat::transform::SpecMap>>,
) -> Observed {
    observe_full(m, engine, tier_up, None, warm, spec)
}

/// Tiered run with the third (machine-code) tier enabled.
fn observe_native(m: &lpat::core::Module, tier_up: u64, native_up: u64) -> Observed {
    observe_full(m, "tiered", tier_up, Some(native_up), None, None)
}

fn observe_full(
    m: &lpat::core::Module,
    engine: &str,
    tier_up: u64,
    native_up: Option<u64>,
    warm: Option<&lpat::vm::ProfileData>,
    spec: Option<&std::rc::Rc<lpat::transform::SpecMap>>,
) -> Observed {
    let opts = VmOptions {
        profile: true,
        fuel: Some(20_000_000),
        tier_up,
        native_up,
        ..VmOptions::default()
    };
    let mut vm = Vm::new(m, opts).expect("vm init");
    if let Some(map) = spec {
        vm.install_speculation(map.clone(), map.len() as u64, 0);
    }
    if let Some(p) = warm {
        vm.warm_start(p);
    }
    let r = match engine {
        "interp" => vm.run_main(),
        "jit" => vm.run_main_jit(),
        "tiered" => vm.run_main_tiered(),
        other => panic!("unknown engine {other}"),
    };
    let outcome = match r {
        Ok(v) => Ok(v),
        Err(ExecError::Trap { kind, .. }) => Err(kind),
        Err(other) => panic!("unexpected error class: {other}"),
    };
    Observed {
        outcome,
        output: vm.output.clone(),
        insts: vm.insts_executed,
        fuel_left: vm.opts.fuel,
        opcode_counts: vm.opcode_counts.to_vec(),
        profile: vm.profile.clone(),
    }
}

/// The thresholds every differential case runs at: full-JIT-equivalent,
/// near-instant promotion, the default, and never-promote.
const THRESHOLDS: [u64; 4] = [0, 1, 50, u64::MAX];

#[test]
fn tiered_matches_interp_across_suite_at_every_threshold() {
    for (name, m) in lpat::workloads::compile_suite(0) {
        let reference = observe(&m, "interp", 0, None);
        for t in THRESHOLDS {
            let tiered = observe(&m, "tiered", t, None);
            assert_eq!(reference, tiered, "workload {name} diverged at tier_up={t}");
        }
        // The full JIT must agree too (it shares the mixed-frame loop).
        let jit = observe(&m, "jit", 0, None);
        assert_eq!(reference, jit, "workload {name} diverged under full JIT");
    }
}

#[test]
fn native_tier_matches_interp_across_suite_at_every_threshold() {
    // The observational-identity contract extends to machine code: with
    // the third tier enabled at every threshold pairing — including
    // tier_up 0 / native_up 0, where every function runs native from its
    // first call — output, return value, trap kind, fuel, histogram, and
    // profile counters must match the reference interpreter exactly.
    for (name, m) in lpat::workloads::compile_suite(0) {
        let reference = observe(&m, "interp", 0, None);
        for t in THRESHOLDS {
            let native = observe_native(&m, t, t);
            assert_eq!(
                reference, native,
                "workload {name} diverged at tier_up={t}/native_up={t}"
            );
        }
    }
}

#[test]
fn native_tier_executes_the_bulk_of_a_hot_loop() {
    // Not just correct but *used*: on a loop-dominated workload with
    // immediate promotion, the machine-code tier must dispatch the vast
    // majority of instructions, and staged thresholds must reach native
    // through both OSR paths.
    let suite = lpat::workloads::compile_suite(0);
    let (name, m) = &suite[0]; // 164.gzip: loop-heavy
    let opts = VmOptions {
        tier_up: 0,
        native_up: Some(0),
        ..VmOptions::default()
    };
    let mut vm = Vm::new(m, opts).unwrap();
    vm.run_main_tiered()
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let t = &vm.tier_stats;
    assert!(t.native_promoted > 0, "{name}: nothing promoted to native");
    assert!(
        t.native_insts > 9 * (t.jit_insts + t.interp_insts),
        "{name}: native tier dispatched too little: {t:?}"
    );

    // Staged thresholds: the hot loop crosses interp → jit → native
    // while running, so at least one on-stack replacement lands in
    // machine code.
    let opts = VmOptions {
        tier_up: 1,
        native_up: Some(1),
        ..VmOptions::default()
    };
    let mut vm = Vm::new(m, opts).unwrap();
    vm.run_main_tiered()
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    assert!(
        vm.tier_stats.native_osr > 0,
        "{name}: staged run never OSR'd into native: {:?}",
        vm.tier_stats
    );
    assert!(vm.tier_stats.native_insts > 0);
}

#[test]
fn tiered_matches_interp_with_warm_start() {
    for (name, m) in lpat::workloads::compile_suite(0) {
        // First run populates the profile (as the lifelong store would).
        let first = observe(&m, "tiered", 50, None);
        let warm = observe(&m, "tiered", 50, Some(&first.profile));
        assert_eq!(
            first, warm,
            "workload {name} diverged between cold and warm-started runs"
        );
    }
}

#[test]
fn warm_start_promotes_hot_functions_eagerly() {
    let suite = lpat::workloads::compile_suite(0);
    let (name, m) = &suite[0]; // 164.gzip: loop-heavy, several hot functions
    let opts = VmOptions {
        profile: true,
        ..VmOptions::default()
    };
    let mut vm = Vm::new(m, opts.clone()).unwrap();
    vm.run_main_tiered()
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let profile = vm.profile.clone();
    let cold_promoted = vm.tier_stats.promoted;
    assert!(cold_promoted > 0, "{name}: nothing promoted in a cold run");

    let mut vm2 = Vm::new(m, opts).unwrap();
    let warmed = vm2.warm_start(&profile);
    assert!(warmed > 0, "{name}: warm-start promoted nothing");
    assert_eq!(vm2.tier_stats.warmed, warmed as u64);
    vm2.run_main_tiered()
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    // The warm run starts hot: it never needs OSR for the functions the
    // profile already identified.
    assert!(
        vm2.tier_stats.jit_insts >= vm.tier_stats.jit_insts,
        "{name}: warm run executed fewer JIT instructions than cold"
    );
}

// ---------------------------------------------------------------------
// Trap differentials: the trap kind and everything executed before the
// trap must match at every threshold.
// ---------------------------------------------------------------------

fn trap_case(src: &str, expect: TrapKind) {
    let m = lpat::asm::parse_module("t", src).unwrap();
    m.verify().unwrap_or_else(|e| panic!("{e:?}"));
    let reference = observe(&m, "interp", 0, None);
    assert_eq!(reference.outcome, Err(expect));
    for t in THRESHOLDS {
        let tiered = observe(&m, "tiered", t, None);
        assert_eq!(reference, tiered, "trap case diverged at tier_up={t}");
        let native = observe_native(&m, t, t);
        assert_eq!(reference, native, "trap case diverged at native_up={t}");
    }
}

#[test]
fn div_by_zero_in_hot_loop_traps_identically() {
    // The divisor reaches zero only after the loop has run hot: the trap
    // fires in translated code in tiered mode, interpreted otherwise.
    trap_case(
        "
define int @main() {
e:
  br label %h
h:
  %i = phi int [ 200, %e ], [ %i2, %b ]
  %c = setgt int %i, -1
  br bool %c, label %b, label %x
b:
  %q = div int 1000, %i
  %i2 = sub int %i, 1
  br label %h
x:
  ret int 0
}",
        TrapKind::DivByZero,
    );
}

#[test]
fn out_of_fuel_traps_at_identical_instruction() {
    let m = lpat::asm::parse_module(
        "t",
        "
define int @main() {
e:
  br label %l
l:
  br label %l
}",
    )
    .unwrap();
    for t in THRESHOLDS {
        for native_up in [None, Some(t)] {
            let opts = VmOptions {
                fuel: Some(10_000),
                tier_up: t,
                native_up,
                ..VmOptions::default()
            };
            let mut vm = Vm::new(&m, opts).unwrap();
            match vm.run_main_tiered().unwrap_err() {
                ExecError::Trap { kind, .. } => assert_eq!(kind, TrapKind::OutOfFuel),
                other => panic!("{other:?}"),
            }
            assert_eq!(vm.opts.fuel, Some(0));
            assert_eq!(
                vm.insts_executed, 10_000,
                "tier_up={t} native_up={native_up:?}"
            );
        }
    }
}

#[test]
fn uncaught_unwind_traps_identically_across_tiers() {
    trap_case(
        "
define void @thrower() {
e:
  unwind
}
define int @main() {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %b ]
  %c = setlt int %i, 100
  br bool %c, label %b, label %t
b:
  %i2 = add int %i, 1
  br label %h
t:
  call void @thrower()
  ret int 0
}",
        TrapKind::UncaughtUnwind,
    );
}

#[test]
fn invoke_across_tier_boundary_catches_unwind() {
    // The invoke sits in `main` (interpreted until OSR); the thrower gets
    // hot and throws from translated code. The unwind must cross the
    // tier boundary and land in the handler.
    let src = "
define void @maybe_throw(int %i) {
e:
  %c = seteq int %i, 900
  br bool %c, label %t, label %ok
t:
  unwind
ok:
  ret void
}
define int @main() {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %cont ]
  invoke void @maybe_throw(int %i) to label %cont unwind label %caught
cont:
  %i2 = add int %i, 1
  %c = setlt int %i2, 2000
  br bool %c, label %h, label %x
caught:
  ret int 77
x:
  ret int 0
}";
    let m = lpat::asm::parse_module("t", src).unwrap();
    m.verify().unwrap_or_else(|e| panic!("{e:?}"));
    let reference = observe(&m, "interp", 0, None);
    assert_eq!(reference.outcome, Ok(77));
    for t in THRESHOLDS {
        let tiered = observe(&m, "tiered", t, None);
        assert_eq!(reference, tiered, "invoke case diverged at tier_up={t}");
        let native = observe_native(&m, t, t);
        assert_eq!(reference, native, "invoke case diverged at native_up={t}");
    }
}

// ---------------------------------------------------------------------
// Injected translation faults: the tiered engine demotes the function
// and keeps interpreting; output is unchanged. Fault plans are
// process-global, so this runs through the lpatc driver in a subprocess.
// ---------------------------------------------------------------------

fn lpatc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lpatc"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn tiered_demotes_and_matches_interp_under_translate_fault() {
    let src = "
declare void @print_int(int)
define int @hot(int %x) {
e:
  %r = mul int %x, 3
  ret int %r
}
define int @main() {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %b ]
  %s = phi int [ 0, %e ], [ %s2, %b ]
  %c = setlt int %i, 500
  br bool %c, label %b, label %x
b:
  %v = call int @hot(int %i)
  %s2 = add int %s, %v
  %i2 = add int %i, 1
  br label %h
x:
  %m = rem int %s, 97
  call void @print_int(int %m)
  ret int %m
}";
    let p = tmp("tiered_fault.ll");
    std::fs::write(&p, src).unwrap();

    let reference = lpatc().arg("run").arg(&p).arg("--quiet").output().unwrap();
    // Every translation attempt faults: all promotions demote, the whole
    // run interprets, and the answer is still right.
    let faulted = lpatc()
        .arg("run")
        .arg(&p)
        .arg("--tiered")
        .arg("--tier-up")
        .arg("1")
        .arg("--inject-faults")
        .arg("jit.translate:io")
        .arg("--quiet")
        .output()
        .unwrap();
    assert_eq!(reference.status.code(), faulted.status.code());
    assert_eq!(reference.stdout, faulted.stdout);

    // Same plan under the pure JIT is fatal — demotion is a tiered-only
    // recovery.
    let jit_faulted = lpatc()
        .arg("run")
        .arg(&p)
        .arg("--jit")
        .arg("--inject-faults")
        .arg("jit.translate:io@1")
        .arg("--quiet")
        .output()
        .unwrap();
    assert_eq!(jit_faulted.status.code(), Some(2), "pure JIT must fail");

    // A fault on only the *first* translation demotes one function; the
    // rest still promote, and the answer is still right.
    let partial = lpatc()
        .arg("run")
        .arg(&p)
        .arg("--tier-up")
        .arg("1")
        .arg("--inject-faults")
        .arg("jit.translate:io@1")
        .arg("--quiet")
        .output()
        .unwrap();
    assert_eq!(reference.status.code(), partial.status.code());
    assert_eq!(reference.stdout, partial.stdout);
}

#[test]
fn native_demotes_to_jit_and_matches_interp_under_translate_fault() {
    // The `native.translate` site mirrors `jit.translate` one tier up: a
    // fault there permanently demotes the function to the JIT tier and
    // the run's answer is unchanged. Fault plans are process-global, so
    // this goes through the driver in a subprocess.
    let src = "
declare void @print_int(int)
define int @hot(int %x) {
e:
  %r = mul int %x, 3
  ret int %r
}
define int @main() {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %b ]
  %s = phi int [ 0, %e ], [ %s2, %b ]
  %c = setlt int %i, 500
  br bool %c, label %b, label %x
b:
  %v = call int @hot(int %i)
  %s2 = add int %s, %v
  %i2 = add int %i, 1
  br label %h
x:
  %m = rem int %s, 97
  call void @print_int(int %m)
  ret int %m
}";
    let p = tmp("native_fault.ll");
    std::fs::write(&p, src).unwrap();

    let reference = lpatc().arg("run").arg(&p).arg("--quiet").output().unwrap();

    // Clean third-tier run: same answer as the interpreter.
    let native = lpatc()
        .arg("run")
        .arg(&p)
        .args(["--tier-up", "1", "--native-up", "1", "--quiet"])
        .output()
        .unwrap();
    assert_eq!(reference.status.code(), native.status.code());
    assert_eq!(reference.stdout, native.stdout);

    // Every native translation faults: all candidates demote to the JIT
    // tier (which still translates fine) and the answer is unchanged.
    let faulted = lpatc()
        .arg("run")
        .arg(&p)
        .args(["--tier-up", "1", "--native-up", "1"])
        .args(["--inject-faults", "native.translate:io"])
        .args(["--stats", "--quiet"])
        .output()
        .unwrap();
    assert_eq!(reference.status.code(), faulted.status.code());
    assert_eq!(reference.stdout, faulted.stdout);
    // The demotion is visible in the tier table: demoted functions, zero
    // native instructions, and JIT instructions picking up the slack.
    let stats = String::from_utf8_lossy(&faulted.stderr);
    let row = |label: &str| -> u64 {
        stats
            .lines()
            .find(|l| l.trim_start().starts_with(label))
            .and_then(|l| {
                l.split_whitespace()
                    .filter_map(|w| w.parse::<u64>().ok())
                    .next()
            })
            .unwrap_or_else(|| panic!("no '{label}' row in stats:\n{stats}"))
    };
    assert!(row("native demoted") >= 1, "stats:\n{stats}");
    assert_eq!(row("native insts"), 0, "stats:\n{stats}");
    assert!(row("jit insts") > 0, "stats:\n{stats}");

    // A fault on only the *first* native translation demotes one
    // function; the rest still reach machine code.
    let partial = lpatc()
        .arg("run")
        .arg(&p)
        .args(["--tier-up", "1", "--native-up", "1"])
        .args(["--inject-faults", "native.translate:io@1"])
        .arg("--quiet")
        .output()
        .unwrap();
    assert_eq!(reference.status.code(), partial.status.code());
    assert_eq!(reference.stdout, partial.stdout);
}

// ---------------------------------------------------------------------
// Speculation differentials: a speculated module (guards installed as an
// in-memory overlay) must stay observationally identical across the
// interpreter, the tiered engine at every threshold, and the full JIT —
// fuel, opcode histogram, and profile counters included. Guard failure
// in translated code deoptimizes back to the interpreter frame.
// ---------------------------------------------------------------------

/// Hot monomorphic dispatch loop with a polymorphic tail: the guard the
/// profile justifies passes 400 times and fails once, so a tiered run
/// exercises the deopt path while the result stays engine-independent.
const SPEC_WORKLOAD: &str = "
declare void @print_int(int)
define internal int @alpha(int %x) {
e:
  %r = add int %x, 1
  ret int %r
}
define internal int @beta(int %x) {
e:
  %r = mul int %x, 2
  ret int %r
}
define int @disp(int (int)* %fp, int %x) {
e:
  %r = call int %fp(int %x)
  ret int %r
}
define int @main() {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %b ]
  %s = phi int [ 0, %e ], [ %s2, %b ]
  %c = setlt int %i, 400
  br bool %c, label %b, label %x
b:
  %v = call int @disp(int (int)* @alpha, int %i)
  %s2 = add int %s, %v
  %i2 = add int %i, 1
  br label %h
x:
  %w = call int @disp(int (int)* @beta, int 5)
  %t = add int %s, %w
  %m = rem int %t, 97
  call void @print_int(int %m)
  ret int %m
}";

/// Parse SPEC_WORKLOAD, gather a profile, and return the speculated
/// module plus its guard overlay. Asserts speculation actually fired.
fn speculated_workload() -> (lpat::core::Module, std::rc::Rc<lpat::transform::SpecMap>) {
    let m = lpat::asm::parse_module("t", SPEC_WORKLOAD).unwrap();
    m.verify().unwrap_or_else(|e| panic!("{e:?}"));
    let profiled = observe(&m, "interp", 0, None);
    let mut sm = m.clone();
    let (map, plan) = lpat::transform::speculate::speculate(
        &mut sm,
        &profiled.profile.to_spec_profile(),
        &lpat::transform::SpecOptions::default(),
    );
    assert!(
        plan.emitted() >= 1,
        "plan emitted nothing:\n{}",
        plan.render()
    );
    assert!(!map.is_empty());
    sm.verify()
        .unwrap_or_else(|e| panic!("speculated module broken: {e:?}"));
    (sm, std::rc::Rc::new(map))
}

#[test]
fn speculated_tiered_matches_interp_at_every_threshold() {
    let (sm, map) = speculated_workload();
    let reference = observe_spec(&sm, "interp", 0, None, Some(&map));
    // Same answer as the unspeculated program.
    let plain = observe(
        &lpat::asm::parse_module("t", SPEC_WORKLOAD).unwrap(),
        "interp",
        0,
        None,
    );
    assert_eq!(reference.outcome, plain.outcome);
    assert_eq!(reference.output, plain.output);
    for t in THRESHOLDS {
        let tiered = observe_spec(&sm, "tiered", t, None, Some(&map));
        assert_eq!(reference, tiered, "speculated run diverged at tier_up={t}");
        // Guarded functions bail out of the native translator and stay on
        // the JIT tier, so the answer survives the third tier too.
        let native = observe_full(&sm, "tiered", t, Some(t), None, Some(&map));
        assert_eq!(
            reference, native,
            "speculated run diverged at native_up={t}"
        );
    }
    let jit = observe_spec(&sm, "jit", 0, None, Some(&map));
    assert_eq!(reference, jit, "speculated run diverged under full JIT");
}

#[test]
fn guard_failure_in_translated_code_deoptimizes() {
    let (sm, map) = speculated_workload();
    let opts = VmOptions {
        profile: true,
        tier_up: 1,
        ..VmOptions::default()
    };
    let mut vm = Vm::new(&sm, opts).unwrap();
    vm.install_speculation(map.clone(), map.len() as u64, 0);
    let r = vm.run_main_tiered().unwrap();
    assert!(vm.spec_stats.passed >= 400, "{:?}", vm.spec_stats);
    assert!(vm.spec_stats.failed >= 1, "{:?}", vm.spec_stats);
    assert!(
        vm.spec_stats.deopts >= 1,
        "guard failed in translated code but never deoptimized: {:?}",
        vm.spec_stats
    );

    // The interpreter sees the same guard traffic but never deoptimizes
    // (there is no translated frame to leave).
    let mut ivm = Vm::new(
        &sm,
        VmOptions {
            profile: true,
            ..VmOptions::default()
        },
    )
    .unwrap();
    ivm.install_speculation(map.clone(), map.len() as u64, 0);
    let ir = ivm.run_main().unwrap();
    assert_eq!(r, ir);
    assert_eq!(ivm.spec_stats.passed, vm.spec_stats.passed);
    assert_eq!(ivm.spec_stats.failed, vm.spec_stats.failed);
    assert_eq!(ivm.spec_stats.deopts, 0);
    // Misspeculation flowed into the profile under the guard's stable id.
    let g = &map.guards[0];
    assert_eq!(ivm.profile.guard_exec(g.id), vm.profile.guard_exec(g.id));
    assert!(ivm.profile.guard_misspec(g.id) >= 1);
}

#[test]
fn speculated_suite_matches_interp() {
    // Speculation over the whole workload suite: profile a run, apply
    // whatever the profile justifies, and require observational identity
    // between interpreter and tiered engine on the speculated module.
    for (name, m) in lpat::workloads::compile_suite(0) {
        let profiled = observe(&m, "interp", 0, None);
        let mut sm = m.clone();
        let (map, _plan) = lpat::transform::speculate::speculate(
            &mut sm,
            &profiled.profile.to_spec_profile(),
            &lpat::transform::SpecOptions::default(),
        );
        sm.verify()
            .unwrap_or_else(|e| panic!("{name}: speculated module broken: {e:?}"));
        let map = std::rc::Rc::new(map);
        let reference = observe_spec(&sm, "interp", 0, None, Some(&map));
        assert_eq!(
            reference.outcome, profiled.outcome,
            "{name}: answer changed"
        );
        assert_eq!(reference.output, profiled.output, "{name}: output changed");
        for t in [1, 50] {
            let tiered = observe_spec(&sm, "tiered", t, None, Some(&map));
            assert_eq!(reference, tiered, "{name} diverged at tier_up={t}");
        }
    }
}

/// Forced 100% guard failure: with `spec.guard:corrupt` every guard
/// takes its slow path, so a speculated run must still print the plain
/// run's answer — interpreted or tiered (where every failure is a
/// deopt) — with identical instruction counts between the two engines.
#[test]
fn forced_guard_failure_is_observationally_clean() {
    let p = tmp("spec_fault.ll");
    std::fs::write(&p, SPEC_WORKLOAD).unwrap();
    let prof = tmp("spec_fault.prof");
    let seed = lpatc()
        .args(["run"])
        .arg(&p)
        .args(["--profile", "--profile-out"])
        .arg(&prof)
        .args(["--quiet"])
        .output()
        .unwrap();
    let insts_of = |stderr: &[u8]| -> String {
        let s = String::from_utf8_lossy(stderr);
        s.lines()
            .find(|l| l.contains("instructions]"))
            .unwrap_or_else(|| panic!("no instruction count in:\n{s}"))
            .to_string()
    };
    let run = |extra: &[&str]| {
        let mut c = lpatc();
        c.arg("run").arg(&p).arg("--profile-in").arg(&prof);
        c.args(["--speculate", "--inject-faults", "spec.guard:corrupt"]);
        c.args(extra);
        c.output().unwrap()
    };
    let interp = run(&[]);
    let tiered = run(&["--tiered", "--tier-up", "1"]);
    assert_eq!(seed.status.code(), interp.status.code());
    assert_eq!(
        seed.stdout, interp.stdout,
        "forced failure changed the answer"
    );
    assert_eq!(interp.status.code(), tiered.status.code());
    assert_eq!(interp.stdout, tiered.stdout);
    // Fuel parity: both engines execute the same instruction count even
    // with every guard failing (each failure a deopt in tiered mode).
    assert_eq!(insts_of(&interp.stderr), insts_of(&tiered.stderr));
}

/// Offline retraction decisions are byte-identical to the in-memory run
/// at any `--jobs`: the canonical plan rendering is printed to stdout by
/// `reopt --speculate` and compared across job counts.
#[test]
fn reopt_speculation_plan_is_byte_identical_across_jobs() {
    let p = tmp("spec_reopt.ll");
    std::fs::write(&p, SPEC_WORKLOAD).unwrap();
    let cache = tmp("spec_reopt_cache");
    let _ = std::fs::remove_dir_all(&cache);
    let seed = lpatc()
        .args(["run"])
        .arg(&p)
        .args(["--profile", "--cache-dir"])
        .arg(&cache)
        .args(["--quiet"])
        .output()
        .unwrap();
    assert!(seed.status.code().is_some());
    let reopt = |jobs: &str| {
        lpatc()
            .arg("reopt")
            .arg(&p)
            .args(["--cache-dir"])
            .arg(&cache)
            .args(["--speculate", "--quiet", "--jobs", jobs])
            .output()
            .unwrap()
    };
    let j1 = reopt("1");
    let j8 = reopt("8");
    assert!(
        j1.status.success(),
        "{}",
        String::from_utf8_lossy(&j1.stderr)
    );
    let plan = String::from_utf8_lossy(&j1.stdout);
    assert!(plan.contains("guard "), "no plan on stdout:\n{plan}");
    assert!(plan.contains("-> emit"), "{plan}");
    assert_eq!(j1.stdout, j8.stdout, "plan differs across --jobs");
}

#[test]
fn lpatc_tiered_warm_start_from_store_matches_cold() {
    let src = "
declare void @print_int(int)
define int @main() {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %b ]
  %s = phi int [ 0, %e ], [ %s2, %b ]
  %c = setlt int %i, 3000
  br bool %c, label %b, label %x
b:
  %s2 = add int %s, %i
  %i2 = add int %i, 1
  br label %h
x:
  %m = rem int %s, 101
  call void @print_int(int %m)
  ret int %m
}";
    let p = tmp("tiered_store.ll");
    std::fs::write(&p, src).unwrap();
    let cache = tmp("tiered_store_cache");
    let _ = std::fs::remove_dir_all(&cache);

    let run = |extra: &[&str]| {
        let mut c = lpatc();
        c.arg("run")
            .arg(&p)
            .arg("--tiered")
            .arg("--cache-dir")
            .arg(&cache);
        for a in extra {
            c.arg(a);
        }
        c.output().unwrap()
    };
    let cold = run(&["--quiet"]);
    let warm = run(&[]);
    assert_eq!(cold.status.code(), warm.status.code());
    assert_eq!(cold.stdout, warm.stdout);
    let notices = String::from_utf8_lossy(&warm.stderr);
    assert!(
        notices.contains("warm-start"),
        "second run did not warm-start: {notices}"
    );
}
