//! Differential tests for the tiered execution engine: at *any* tier-up
//! threshold — 0 (promote everything on first call), 1, the default, or
//! effectively-infinite (never promote) — the tiered engine must be
//! observationally identical to the reference interpreter: same program
//! output, same return value or trap kind, same instruction count, fuel
//! consumption, opcode histogram, and profile counters. This holds across
//! the whole workload suite, for trapping programs, under injected
//! translation faults (the tiered engine demotes and keeps going), and
//! with warm-started tier decisions.

use std::process::Command;

use lpat::vm::{ExecError, TrapKind, Vm, VmOptions};

/// Everything observable about one execution.
#[derive(Debug, PartialEq)]
struct Observed {
    outcome: Result<i64, TrapKind>,
    output: String,
    insts: u64,
    fuel_left: Option<u64>,
    opcode_counts: Vec<u64>,
    profile: lpat::vm::ProfileData,
}

fn observe(
    m: &lpat::core::Module,
    engine: &str,
    tier_up: u64,
    warm: Option<&lpat::vm::ProfileData>,
) -> Observed {
    let opts = VmOptions {
        profile: true,
        fuel: Some(20_000_000),
        tier_up,
        ..VmOptions::default()
    };
    let mut vm = Vm::new(m, opts).expect("vm init");
    if let Some(p) = warm {
        vm.warm_start(p);
    }
    let r = match engine {
        "interp" => vm.run_main(),
        "jit" => vm.run_main_jit(),
        "tiered" => vm.run_main_tiered(),
        other => panic!("unknown engine {other}"),
    };
    let outcome = match r {
        Ok(v) => Ok(v),
        Err(ExecError::Trap { kind, .. }) => Err(kind),
        Err(other) => panic!("unexpected error class: {other}"),
    };
    Observed {
        outcome,
        output: vm.output.clone(),
        insts: vm.insts_executed,
        fuel_left: vm.opts.fuel,
        opcode_counts: vm.opcode_counts.to_vec(),
        profile: vm.profile.clone(),
    }
}

/// The thresholds every differential case runs at: full-JIT-equivalent,
/// near-instant promotion, the default, and never-promote.
const THRESHOLDS: [u64; 4] = [0, 1, 50, u64::MAX];

#[test]
fn tiered_matches_interp_across_suite_at_every_threshold() {
    for (name, m) in lpat::workloads::compile_suite(0) {
        let reference = observe(&m, "interp", 0, None);
        for t in THRESHOLDS {
            let tiered = observe(&m, "tiered", t, None);
            assert_eq!(reference, tiered, "workload {name} diverged at tier_up={t}");
        }
        // The full JIT must agree too (it shares the mixed-frame loop).
        let jit = observe(&m, "jit", 0, None);
        assert_eq!(reference, jit, "workload {name} diverged under full JIT");
    }
}

#[test]
fn tiered_matches_interp_with_warm_start() {
    for (name, m) in lpat::workloads::compile_suite(0) {
        // First run populates the profile (as the lifelong store would).
        let first = observe(&m, "tiered", 50, None);
        let warm = observe(&m, "tiered", 50, Some(&first.profile));
        assert_eq!(
            first, warm,
            "workload {name} diverged between cold and warm-started runs"
        );
    }
}

#[test]
fn warm_start_promotes_hot_functions_eagerly() {
    let suite = lpat::workloads::compile_suite(0);
    let (name, m) = &suite[0]; // 164.gzip: loop-heavy, several hot functions
    let opts = VmOptions {
        profile: true,
        ..VmOptions::default()
    };
    let mut vm = Vm::new(m, opts.clone()).unwrap();
    vm.run_main_tiered()
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let profile = vm.profile.clone();
    let cold_promoted = vm.tier_stats.promoted;
    assert!(cold_promoted > 0, "{name}: nothing promoted in a cold run");

    let mut vm2 = Vm::new(m, opts).unwrap();
    let warmed = vm2.warm_start(&profile);
    assert!(warmed > 0, "{name}: warm-start promoted nothing");
    assert_eq!(vm2.tier_stats.warmed, warmed as u64);
    vm2.run_main_tiered()
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    // The warm run starts hot: it never needs OSR for the functions the
    // profile already identified.
    assert!(
        vm2.tier_stats.jit_insts >= vm.tier_stats.jit_insts,
        "{name}: warm run executed fewer JIT instructions than cold"
    );
}

// ---------------------------------------------------------------------
// Trap differentials: the trap kind and everything executed before the
// trap must match at every threshold.
// ---------------------------------------------------------------------

fn trap_case(src: &str, expect: TrapKind) {
    let m = lpat::asm::parse_module("t", src).unwrap();
    m.verify().unwrap_or_else(|e| panic!("{e:?}"));
    let reference = observe(&m, "interp", 0, None);
    assert_eq!(reference.outcome, Err(expect));
    for t in THRESHOLDS {
        let tiered = observe(&m, "tiered", t, None);
        assert_eq!(reference, tiered, "trap case diverged at tier_up={t}");
    }
}

#[test]
fn div_by_zero_in_hot_loop_traps_identically() {
    // The divisor reaches zero only after the loop has run hot: the trap
    // fires in translated code in tiered mode, interpreted otherwise.
    trap_case(
        "
define int @main() {
e:
  br label %h
h:
  %i = phi int [ 200, %e ], [ %i2, %b ]
  %c = setgt int %i, -1
  br bool %c, label %b, label %x
b:
  %q = div int 1000, %i
  %i2 = sub int %i, 1
  br label %h
x:
  ret int 0
}",
        TrapKind::DivByZero,
    );
}

#[test]
fn out_of_fuel_traps_at_identical_instruction() {
    let m = lpat::asm::parse_module(
        "t",
        "
define int @main() {
e:
  br label %l
l:
  br label %l
}",
    )
    .unwrap();
    for t in THRESHOLDS {
        let opts = VmOptions {
            fuel: Some(10_000),
            tier_up: t,
            ..VmOptions::default()
        };
        let mut vm = Vm::new(&m, opts).unwrap();
        match vm.run_main_tiered().unwrap_err() {
            ExecError::Trap { kind, .. } => assert_eq!(kind, TrapKind::OutOfFuel),
            other => panic!("{other:?}"),
        }
        assert_eq!(vm.opts.fuel, Some(0));
        assert_eq!(vm.insts_executed, 10_000, "tier_up={t}");
    }
}

#[test]
fn uncaught_unwind_traps_identically_across_tiers() {
    trap_case(
        "
define void @thrower() {
e:
  unwind
}
define int @main() {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %b ]
  %c = setlt int %i, 100
  br bool %c, label %b, label %t
b:
  %i2 = add int %i, 1
  br label %h
t:
  call void @thrower()
  ret int 0
}",
        TrapKind::UncaughtUnwind,
    );
}

#[test]
fn invoke_across_tier_boundary_catches_unwind() {
    // The invoke sits in `main` (interpreted until OSR); the thrower gets
    // hot and throws from translated code. The unwind must cross the
    // tier boundary and land in the handler.
    let src = "
define void @maybe_throw(int %i) {
e:
  %c = seteq int %i, 900
  br bool %c, label %t, label %ok
t:
  unwind
ok:
  ret void
}
define int @main() {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %cont ]
  invoke void @maybe_throw(int %i) to label %cont unwind label %caught
cont:
  %i2 = add int %i, 1
  %c = setlt int %i2, 2000
  br bool %c, label %h, label %x
caught:
  ret int 77
x:
  ret int 0
}";
    let m = lpat::asm::parse_module("t", src).unwrap();
    m.verify().unwrap_or_else(|e| panic!("{e:?}"));
    let reference = observe(&m, "interp", 0, None);
    assert_eq!(reference.outcome, Ok(77));
    for t in THRESHOLDS {
        let tiered = observe(&m, "tiered", t, None);
        assert_eq!(reference, tiered, "invoke case diverged at tier_up={t}");
    }
}

// ---------------------------------------------------------------------
// Injected translation faults: the tiered engine demotes the function
// and keeps interpreting; output is unchanged. Fault plans are
// process-global, so this runs through the lpatc driver in a subprocess.
// ---------------------------------------------------------------------

fn lpatc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lpatc"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn tiered_demotes_and_matches_interp_under_translate_fault() {
    let src = "
declare void @print_int(int)
define int @hot(int %x) {
e:
  %r = mul int %x, 3
  ret int %r
}
define int @main() {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %b ]
  %s = phi int [ 0, %e ], [ %s2, %b ]
  %c = setlt int %i, 500
  br bool %c, label %b, label %x
b:
  %v = call int @hot(int %i)
  %s2 = add int %s, %v
  %i2 = add int %i, 1
  br label %h
x:
  %m = rem int %s, 97
  call void @print_int(int %m)
  ret int %m
}";
    let p = tmp("tiered_fault.ll");
    std::fs::write(&p, src).unwrap();

    let reference = lpatc().arg("run").arg(&p).arg("--quiet").output().unwrap();
    // Every translation attempt faults: all promotions demote, the whole
    // run interprets, and the answer is still right.
    let faulted = lpatc()
        .arg("run")
        .arg(&p)
        .arg("--tiered")
        .arg("--tier-up")
        .arg("1")
        .arg("--inject-faults")
        .arg("jit.translate:io")
        .arg("--quiet")
        .output()
        .unwrap();
    assert_eq!(reference.status.code(), faulted.status.code());
    assert_eq!(reference.stdout, faulted.stdout);

    // Same plan under the pure JIT is fatal — demotion is a tiered-only
    // recovery.
    let jit_faulted = lpatc()
        .arg("run")
        .arg(&p)
        .arg("--jit")
        .arg("--inject-faults")
        .arg("jit.translate:io@1")
        .arg("--quiet")
        .output()
        .unwrap();
    assert_eq!(jit_faulted.status.code(), Some(2), "pure JIT must fail");

    // A fault on only the *first* translation demotes one function; the
    // rest still promote, and the answer is still right.
    let partial = lpatc()
        .arg("run")
        .arg(&p)
        .arg("--tier-up")
        .arg("1")
        .arg("--inject-faults")
        .arg("jit.translate:io@1")
        .arg("--quiet")
        .output()
        .unwrap();
    assert_eq!(reference.status.code(), partial.status.code());
    assert_eq!(reference.stdout, partial.stdout);
}

#[test]
fn lpatc_tiered_warm_start_from_store_matches_cold() {
    let src = "
declare void @print_int(int)
define int @main() {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %b ]
  %s = phi int [ 0, %e ], [ %s2, %b ]
  %c = setlt int %i, 3000
  br bool %c, label %b, label %x
b:
  %s2 = add int %s, %i
  %i2 = add int %i, 1
  br label %h
x:
  %m = rem int %s, 101
  call void @print_int(int %m)
  ret int %m
}";
    let p = tmp("tiered_store.ll");
    std::fs::write(&p, src).unwrap();
    let cache = tmp("tiered_store_cache");
    let _ = std::fs::remove_dir_all(&cache);

    let run = |extra: &[&str]| {
        let mut c = lpatc();
        c.arg("run")
            .arg(&p)
            .arg("--tiered")
            .arg("--cache-dir")
            .arg(&cache);
        for a in extra {
            c.arg(a);
        }
        c.output().unwrap()
    };
    let cold = run(&["--quiet"]);
    let warm = run(&[]);
    assert_eq!(cold.status.code(), warm.status.code());
    assert_eq!(cold.stdout, warm.stdout);
    let notices = String::from_utf8_lossy(&warm.stderr);
    assert!(
        notices.contains("warm-start"),
        "second run did not warm-start: {notices}"
    );
}
