//! Mutation/truncation fuzzing of the bytecode reader.
//!
//! `read_module` is the trust boundary of the persistent-IR model: the
//! paper's lifelong pipeline re-reads bytecode produced years earlier by
//! other tools, so the reader must return [`DecodeError`] — never panic,
//! never attempt an absurd allocation — for *any* byte string. This file
//! hammers it with ~10k mutated, truncated, and hostile inputs.

use std::panic::{catch_unwind, AssertUnwindSafe};

use lpat::bytecode::format::{write_varint, MAGIC, VERSION};
use lpat::bytecode::{read_module, write_module};
use lpat::vm::{Vm, VmOptions};

/// SplitMix64 — deterministic, dependency-free (same generator as
/// `tests/properties.rs`).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn usize(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

/// Well-formed bytecode images to mutate: the whole workload suite.
fn corpus() -> Vec<Vec<u8>> {
    lpat::workloads::compile_suite(0)
        .iter()
        .map(|(_, m)| write_module(m))
        .collect()
}

/// Feed one buffer to the reader; the only acceptable outcomes are
/// `Ok` (then the module must survive a verify attempt — and if it *does*
/// verify, actually run under both engines) or `Err`. Decode-only fuzzing
/// would miss the execution paths a hostile-but-verifier-clean module can
/// reach (mistyped indirect calls, absurd GEPs), so survivors are executed
/// under a small fuel budget: any `Ok`/trap is fine, a panic is a bug.
fn must_not_panic(buf: &[u8], what: &str) {
    let r = catch_unwind(AssertUnwindSafe(|| {
        if let Ok(m) = read_module("fuzz", buf) {
            let _ = m.display();
            if m.verify().is_ok() {
                let opts = VmOptions {
                    fuel: Some(4_000),
                    mem_limit: 1 << 20,
                    ..VmOptions::default()
                };
                if let Ok(mut vm) = Vm::new(&m, opts.clone()) {
                    let _ = vm.run_main();
                }
                if let Ok(mut vm) = Vm::new(&m, opts) {
                    let _ = vm.run_main_jit();
                }
            }
        }
    }));
    assert!(
        r.is_ok(),
        "reader/engine panicked on {what} ({} bytes): {:02x?}...",
        buf.len(),
        &buf[..buf.len().min(64)]
    );
}

#[test]
fn mutated_modules_never_panic_the_reader() {
    let corpus = corpus();
    let mut rng = Rng::new(0x17a7_f00d);
    // ~8k mutated images across the corpus (the remaining ~2k of the
    // issue's 10k budget are the truncation and hostile-header tests).
    for i in 0..8_000u64 {
        let mut buf = corpus[rng.usize(corpus.len())].clone();
        for _ in 0..=rng.usize(4) {
            match if buf.is_empty() { 3 } else { rng.usize(4) } {
                // Flip one bit.
                0 => {
                    let p = rng.usize(buf.len());
                    buf[p] ^= 1 << rng.usize(8);
                }
                // Overwrite one byte (0x00/0xFF/random are all common
                // varint/length-field attacks).
                1 => {
                    let p = rng.usize(buf.len());
                    buf[p] = rng.next() as u8;
                }
                // Truncate the tail.
                2 => buf.truncate(rng.usize(buf.len() + 1)),
                // Insert a random byte.
                _ => {
                    let p = rng.usize(buf.len() + 1);
                    buf.insert(p, rng.next() as u8);
                }
            }
        }
        must_not_panic(&buf, &format!("mutation iteration {i}"));
    }
}

#[test]
fn every_truncation_point_is_handled() {
    let corpus = corpus();
    // Exhaustive prefixes of the smallest image, sampled cuts elsewhere.
    let smallest = corpus.iter().min_by_key(|b| b.len()).unwrap();
    for cut in 0..smallest.len() {
        must_not_panic(&smallest[..cut], &format!("prefix of length {cut}"));
    }
    let mut rng = Rng::new(0xdead_beef);
    for buf in &corpus {
        for _ in 0..64 {
            let cut = rng.usize(buf.len());
            must_not_panic(&buf[..cut], &format!("sampled prefix {cut}"));
        }
    }
}

/// A syntactically valid header followed by `payload`.
fn with_header(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::from(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

#[test]
fn hostile_length_fields_error_without_allocating() {
    // Declared counts far beyond the remaining input must be rejected
    // up front (no with_capacity OOM), for every varint width.
    for huge in [
        u64::MAX,
        u64::MAX >> 1,
        u32::MAX as u64,
        1 << 48,
        1 << 32,
        65_536,
    ] {
        let mut payload = Vec::new();
        write_varint(&mut payload, huge);
        let buf = with_header(&payload);
        assert!(
            read_module("fuzz", &buf).is_err(),
            "declared count {huge} with no data must not parse"
        );
        // The same count buried after a plausible prefix of the real
        // stream: splice it into a valid image at every varint-ish spot
        // in the first 64 bytes.
        let real = &corpus()[0];
        for pos in 8..real.len().min(64) {
            let mut spliced = real[..pos].to_vec();
            write_varint(&mut spliced, huge);
            spliced.extend_from_slice(&real[pos..]);
            must_not_panic(&spliced, &format!("spliced count {huge} at {pos}"));
        }
    }
}

#[test]
fn random_lpat_prefixed_garbage_never_panics() {
    let mut rng = Rng::new(0x5eed);
    for i in 0..1_000 {
        let n = rng.usize(256);
        let mut payload = Vec::with_capacity(n);
        for _ in 0..n {
            payload.push(rng.next() as u8);
        }
        must_not_panic(&with_header(&payload), &format!("random payload {i}"));
    }
    // And headerless garbage / wrong magic / wrong version.
    must_not_panic(b"", "empty input");
    must_not_panic(b"LPA", "short magic");
    must_not_panic(b"ELF\x7f\x00\x00\x00\x00", "wrong magic");
    let mut wrong_version = Vec::from(MAGIC);
    wrong_version.extend_from_slice(&999u32.to_le_bytes());
    must_not_panic(&wrong_version, "wrong version");
}

#[test]
fn roundtrip_still_exact_after_hardening() {
    // The defensive bounds must not reject anything the writer emits.
    for (name, m) in lpat::workloads::compile_suite(0) {
        let bytes = write_module(&m);
        let back = read_module(name, &bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(write_module(&back), bytes, "{name}: unstable roundtrip");
    }
}
