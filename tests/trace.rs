//! Observability integration tests: Chrome-trace export determinism
//! across `--jobs`, subsystem coverage, `--time-passes` agreement with
//! pass spans, `--quiet`, and cache-warning deduplication.

use std::path::{Path, PathBuf};
use std::process::Command;

use lpat::core::trace;

fn lpatc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lpatc"))
}

fn tmpdir(name: &str) -> PathBuf {
    let d = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A program with enough functions that a parallel function-pass stage
/// actually fans out, plus heap traffic and recursion for the VM side.
const PROGRAM: &str = "
int a(int x) { return x * 2 + 1; }
int b(int x) { return a(x) + a(x + 1); }
int c(int x) { return b(x) - a(x); }
int d(int x) { return c(x) + b(x); }
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main() {
    int* p = new int[10];
    int i = 0;
    int acc;
    while (i < 10) { p[i] = d(i); i = i + 1; }
    acc = fib(12);
    i = 0;
    while (i < 10) { acc = acc + p[i]; i = i + 1; }
    delete p;
    return acc;
}
";

fn write_program(dir: &Path) -> PathBuf {
    let p = dir.join("prog.mc");
    std::fs::write(&p, PROGRAM).unwrap();
    p
}

fn read(p: &Path) -> String {
    std::fs::read_to_string(p).unwrap_or_else(|e| panic!("{}: {e}", p.display()))
}

/// `--trace-out` bytes are identical at `--jobs 1` and `--jobs 8` under
/// the virtual clock, for both a pure pipeline run (`opt`) and a full
/// lifelong run (`run -O --cache-dir`).
#[test]
fn trace_bytes_identical_across_jobs() {
    let dir = tmpdir("trace-jobs");
    let prog = write_program(&dir);
    let mut traces = Vec::new();
    for jobs in ["1", "8"] {
        let out = dir.join(format!("opt-{jobs}.json"));
        let st = lpatc()
            .args(["opt", prog.to_str().unwrap(), "--jobs", jobs])
            .args(["--trace-out", out.to_str().unwrap(), "-o"])
            .arg(dir.join("out.txt"))
            .env("LPAT_TRACE_CLOCK", "virtual")
            .status()
            .unwrap();
        assert!(st.success());
        traces.push(read(&out));
    }
    assert_eq!(traces[0], traces[1], "opt trace differs across --jobs");
    trace::validate_chrome_trace(&traces[0]).expect("opt trace schema");

    let mut run_traces = Vec::new();
    for jobs in ["1", "8"] {
        let cache = dir.join(format!("cache-{jobs}"));
        let out = dir.join(format!("run-{jobs}.json"));
        let st = lpatc()
            .args(["run", prog.to_str().unwrap(), "-O", "--jobs", jobs])
            .args(["--cache-dir", cache.to_str().unwrap()])
            .args(["--trace-out", out.to_str().unwrap()])
            .args(["--trace-clock", "virtual", "--quiet"])
            .status()
            .unwrap();
        assert!(st.code().is_some());
        run_traces.push(read(&out));
    }
    assert_eq!(
        run_traces[0], run_traces[1],
        "run trace differs across --jobs"
    );
    trace::validate_chrome_trace(&run_traces[0]).expect("run trace schema");
}

/// One `run -O --cache-dir` trace contains spans from at least four
/// subsystems and a well-formed metrics export.
#[test]
fn run_trace_covers_subsystems() {
    let dir = tmpdir("trace-coverage");
    let prog = write_program(&dir);
    let cache = dir.join("cache");
    let trace_out = dir.join("trace.json");
    let metrics_out = dir.join("metrics.json");
    let st = lpatc()
        .args(["run", prog.to_str().unwrap(), "-O"])
        .args(["--cache-dir", cache.to_str().unwrap()])
        .args(["--trace-out", trace_out.to_str().unwrap()])
        .args(["--metrics-out", metrics_out.to_str().unwrap()])
        .args(["--trace-clock", "virtual", "--quiet"])
        .status()
        .unwrap();
    assert!(st.code().is_some());
    let json = read(&trace_out);
    let n = trace::validate_chrome_trace(&json).expect("trace schema");
    assert!(n > 10, "suspiciously few events: {n}");
    for cat in [
        "\"cat\":\"pipeline\"",
        "\"cat\":\"pass\"",
        "\"cat\":\"fpass\"",
        "\"cat\":\"vm\"",
        "\"cat\":\"heap\"",
        "\"cat\":\"store\"",
    ] {
        assert!(json.contains(cat), "missing {cat} in trace");
    }
    let metrics = read(&metrics_out);
    for key in [
        "vm.insts",
        "heap.allocs",
        "heap.frees",
        // Speculation counters are exported unconditionally (zeros when
        // `--speculate` is off) so consumers see a stable key set.
        "vm.spec.emitted",
        "vm.spec.passed",
        "vm.spec.failed",
        "vm.spec.deopts",
        "\"spans\"",
    ] {
        assert!(metrics.contains(key), "missing {key} in metrics");
    }
}

/// `--speculate --stats` prints the speculation table, and a speculated
/// run's guard traffic lands in the `vm.spec.*` metrics counters.
#[test]
fn speculation_stats_table_and_counters() {
    let dir = tmpdir("trace-spec");
    let prog = dir.join("disp.ll");
    std::fs::write(
        &prog,
        "
declare void @print_int(int)
define internal int @alpha(int %x) {
e:
  %r = add int %x, 1
  ret int %r
}
define internal int @beta(int %x) {
e:
  %r = mul int %x, 2
  ret int %r
}
define int @disp(int (int)* %fp, int %x) {
e:
  %r = call int %fp(int %x)
  ret int %r
}
define int @main() {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %b ]
  %s = phi int [ 0, %e ], [ %s2, %b ]
  %c = setlt int %i, 400
  br bool %c, label %b, label %x
b:
  %v = call int @disp(int (int)* @alpha, int %i)
  %s2 = add int %s, %v
  %i2 = add int %i, 1
  br label %h
x:
  %w = call int @disp(int (int)* @beta, int 5)
  %t = add int %s, %w
  %m = rem int %t, 97
  call void @print_int(int %m)
  ret int %m
}",
    )
    .unwrap();
    let prof = dir.join("disp.prof");
    let st = lpatc()
        .args(["run", prog.to_str().unwrap(), "--profile"])
        .args(["--profile-out", prof.to_str().unwrap(), "--quiet"])
        .status()
        .unwrap();
    assert!(st.code().is_some());
    let metrics_out = dir.join("metrics.json");
    let out = lpatc()
        .args(["run", prog.to_str().unwrap()])
        .args(["--profile-in", prof.to_str().unwrap()])
        .args(["--speculate", "--stats"])
        .args(["--metrics-out", metrics_out.to_str().unwrap()])
        .args(["--trace-clock", "virtual"])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    for row in [
        "[spec]",
        "guards emitted",
        "guard passed",
        "guard failed",
        "deopts",
    ] {
        assert!(stderr.contains(row), "missing {row} in stats:\n{stderr}");
    }
    let metrics = read(&metrics_out);
    assert!(
        metrics.contains("\"vm.spec.emitted\":1"),
        "guard not emitted in metrics: {metrics}"
    );
    assert!(
        metrics.contains("\"vm.spec.passed\":400"),
        "unexpected guard traffic: {metrics}"
    );
    assert!(metrics.contains("\"vm.spec.failed\":1"), "{metrics}");
}

/// `--time-passes` durations are the *same numbers* as the pass spans:
/// each report row's duration equals its span's exported `dur`, row for
/// row, and therefore so do the sums (single-stopwatch principle).
#[test]
fn time_passes_totals_equal_pass_spans() {
    let mut m = lpat::minic::compile("prog", PROGRAM).unwrap();
    trace::enable(trace::ClockMode::Real);
    let report = lpat::transform::function_pipeline().run(&mut m);
    let data = trace::drain();
    trace::disable();
    let spans: Vec<_> = data.events.iter().filter(|e| e.cat == "pass").collect();
    assert_eq!(spans.len(), report.passes.len());
    let mut span_sum = 0u64;
    let mut report_sum = 0u64;
    for (ev, pass) in spans.iter().zip(&report.passes) {
        assert_eq!(ev.name, pass.name);
        let dur_us = match ev.kind {
            trace::EventKind::Span { dur_us } => dur_us,
            trace::EventKind::Instant => panic!("pass span expected"),
        };
        assert_eq!(
            dur_us,
            pass.duration.as_micros() as u64,
            "span/report duration mismatch for pass {}",
            pass.name
        );
        span_sum += dur_us;
        report_sum += pass.duration.as_micros() as u64;
    }
    assert_eq!(span_sum, report_sum);
}

/// `--quiet` silences every stderr notice and warning; program output and
/// the exit code are unaffected.
#[test]
fn quiet_silences_diagnostics() {
    let dir = tmpdir("trace-quiet");
    let prog = write_program(&dir);
    let noisy = lpatc()
        .args(["run", prog.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!noisy.stderr.is_empty(), "expected [exit …] notice");
    let quiet = lpatc()
        .args(["run", prog.to_str().unwrap(), "--quiet"])
        .output()
        .unwrap();
    assert!(
        quiet.stderr.is_empty(),
        "unexpected stderr under --quiet: {}",
        String::from_utf8_lossy(&quiet.stderr)
    );
    assert_eq!(noisy.status.code(), quiet.status.code());
    assert_eq!(noisy.stdout, quiet.stdout);
}

/// Repeated cache warnings of one StoreError class print once, with a
/// suppressed-count summary at exit.
#[test]
fn cache_warnings_dedup_per_class() {
    let dir = tmpdir("trace-dedup");
    let prog = write_program(&dir);
    let cache = dir.join("cache");
    // Prime the cache so the faulty run has both a reopt read and a
    // profile read to fail.
    let st = lpatc()
        .args(["run", prog.to_str().unwrap()])
        .args(["--cache-dir", cache.to_str().unwrap(), "--quiet"])
        .status()
        .unwrap();
    assert!(st.code().is_some());
    let out = lpatc()
        .args(["run", prog.to_str().unwrap()])
        .args(["--cache-dir", cache.to_str().unwrap()])
        .args(["--inject-faults", "store.read:io@1,store.read:io@2"])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    let io_warnings = stderr
        .lines()
        .filter(|l| l.contains("store I/O error"))
        .count();
    assert_eq!(
        io_warnings, 1,
        "want exactly one printed io warning:\n{stderr}"
    );
    assert!(
        stderr.contains("1 more 'io' warning(s) suppressed"),
        "missing suppression summary:\n{stderr}"
    );
}

/// `--stats` extends the `[profile]` dump with a per-opcode histogram.
#[test]
fn stats_prints_opcode_histogram() {
    let dir = tmpdir("trace-stats");
    let prog = write_program(&dir);
    let out = lpatc()
        .args(["run", prog.to_str().unwrap(), "--stats"])
        .args(["--trace-clock", "virtual"])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("[profile] top opcodes:"),
        "missing histogram:\n{stderr}"
    );
    for op in ["br", "call"] {
        assert!(
            stderr.lines().any(|l| l.trim().starts_with(op)),
            "missing opcode row {op}:\n{stderr}"
        );
    }
    assert!(
        stderr.contains("=== trace stats ==="),
        "missing metrics table:\n{stderr}"
    );
}
