//! Fault isolation end-to-end: injected panics, timeouts, and
//! miscompiles must roll back cleanly, surface as structured
//! [`PassFault`]s, and leave the output byte-identical to skipping the
//! faulted pass — at any `--jobs` value.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::Command;
use std::sync::Arc;
use std::time::Duration;

use lpat::asm::parse_module;
use lpat::bytecode::write_module;
use lpat::core::{FaultPlan, Module};
use lpat::transform::gvn::Gvn;
use lpat::transform::ipo::{Dge, Internalize};
use lpat::transform::mem2reg::Mem2Reg;
use lpat::transform::pm::FnPass;
use lpat::transform::simplifycfg::SimplifyCfg;
use lpat::transform::{
    function_pipeline, FaultCause, FunctionPassAdapter, ModulePass, PassContext, PassEffect,
    PassManager,
};

/// A miniature whole program: a helper worth inlining, a loop through
/// allocas, an unused function internalize+DGE can delete.
fn sample() -> Module {
    let m = parse_module(
        "t",
        "
@limit = global int 10
define int @square(int %x) {
e:
  %r = mul int %x, %x
  ret int %r
}
define int @sum_squares() {
e:
  %i = alloca int
  %s = alloca int
  store int 0, int* %i
  store int 0, int* %s
  br label %h
h:
  %iv = load int* %i
  %lim = load int* @limit
  %c = setlt int %iv, %lim
  br bool %c, label %b, label %x
b:
  %sq = call int @square(int %iv)
  %sv = load int* %s
  %s2 = add int %sv, %sq
  store int %s2, int* %s
  %i2 = add int %iv, 1
  store int %i2, int* %i
  br label %h
x:
  %r = load int* %s
  ret int %r
}
define int @unused_helper(int %a) {
e:
  ret int %a
}
define int @main() {
e:
  %v = call int @sum_squares()
  ret int %v
}",
    )
    .unwrap();
    m.verify().unwrap();
    m
}

fn plan(s: &str) -> Option<Arc<FaultPlan>> {
    Some(Arc::new(FaultPlan::parse(s).unwrap()))
}

#[test]
fn module_pass_panic_rolls_back_and_pipeline_continues() {
    let mut m = sample();
    let clean = m.display();
    let mut pm = PassManager::new();
    pm.add(FnPass::new("wreck", |m: &mut Module| -> bool {
        // Mutate, then die: the mutation must not survive.
        m.name.push('X');
        panic!("boom")
    }));
    pm.add(FnPass::new("tag", |_: &mut Module| true));
    let report = pm.run(&mut m);
    assert!(report.degraded());
    assert_eq!(report.faults.len(), 1);
    assert_eq!(report.faults[0].pass, "wreck");
    assert!(report.faults[0].function.is_none());
    assert!(matches!(report.faults[0].cause, FaultCause::Panic(ref msg) if msg == "boom"));
    // Rolled back, and the pipeline still ran the next pass.
    assert_eq!(m.name, "t");
    assert_eq!(m.display(), clean);
    assert_eq!(report.passes.len(), 2);
    assert_eq!(report.passes[0].stats, "faulted; rolled back");
    assert!(!report.passes[0].changed);
    assert!(report.passes[1].changed);
}

/// Run [Internalize?, Dge] over `sample()` and return the resulting
/// text, bytecode, and fault count.
fn run_ipo(fault_plan: Option<&str>, with_internalize: bool) -> (String, Vec<u8>, usize) {
    let mut m = sample();
    let mut pm = PassManager::new();
    if with_internalize {
        pm.add(Internalize::default());
    }
    pm.add(Dge::default());
    if let Some(p) = fault_plan {
        pm.faults = plan(p);
    }
    let report = pm.run(&mut m);
    (m.display(), write_module(&m), report.faults.len())
}

#[test]
fn injected_panic_output_identical_to_skipping_the_pass() {
    let (skip_text, skip_bytes, n_skip) = run_ipo(None, false);
    let (fault_text, fault_bytes, n_fault) = run_ipo(Some("internalize:panic@1"), true);
    assert_eq!(n_skip, 0);
    assert_eq!(n_fault, 1);
    assert_eq!(fault_text, skip_text);
    assert_eq!(fault_bytes, skip_bytes);
    // The pass genuinely matters here, so the equality above is not
    // vacuous: with internalize intact, DGE can delete @unused_helper.
    let (full_text, _, _) = run_ipo(None, true);
    assert_ne!(full_text, skip_text);
    assert!(!full_text.contains("unused_helper"));
    assert!(skip_text.contains("unused_helper"));
}

/// Run the standard function pipeline with a fault plan and return the
/// output bytes plus (pass, function) for each isolated fault.
fn run_fn_pipeline(jobs: usize, fault_plan: &str) -> (Vec<u8>, Vec<(String, Option<String>)>) {
    let mut m = sample();
    let mut pm = function_pipeline();
    pm.jobs = Some(jobs);
    pm.faults = plan(fault_plan);
    let report = pm.run(&mut m);
    let faults = report
        .faults
        .iter()
        .map(|f| (f.pass.clone(), f.function.clone()))
        .collect();
    (write_module(&m), faults)
}

#[test]
fn unit_fault_is_deterministic_across_job_counts() {
    let (b1, f1) = run_fn_pipeline(1, "gvn:panic@2");
    let (b8, f8) = run_fn_pipeline(8, "gvn:panic@2");
    assert_eq!(f1.len(), 1);
    assert_eq!(f1, f8, "fault must land on the same unit at any -jobs");
    assert_eq!(f1[0].0, "gvn");
    assert!(f1[0].1.is_some(), "unit faults carry the function name");
    assert_eq!(b1, b8, "output must be byte-identical at any --jobs");
}

/// Build [mem2reg, gvn?, simplifycfg] as one function-pass stage.
fn run_units(with_gvn: bool, fault_plan: Option<&str>, jobs: usize) -> (Vec<u8>, usize) {
    let mut m = sample();
    let mut a = FunctionPassAdapter::new("units").add(Mem2Reg::default());
    if with_gvn {
        a = a.add(Gvn::default());
    }
    let a = a.add(SimplifyCfg::default());
    let mut pm = PassManager::new();
    pm.jobs = Some(jobs);
    pm.add(a);
    if let Some(p) = fault_plan {
        pm.faults = plan(p);
    }
    let report = pm.run(&mut m);
    (write_module(&m), report.faults.len())
}

#[test]
fn faulting_every_unit_equals_dropping_the_pass() {
    let (skip, n_skip) = run_units(false, None, 1);
    let (fault1, n1) = run_units(true, Some("gvn:panic"), 1);
    let (fault8, n8) = run_units(true, Some("gvn:panic"), 8);
    assert_eq!(n_skip, 0);
    assert!(n1 >= 1, "the unconditional plan must fire on every unit");
    assert_eq!(n1, n8);
    assert_eq!(fault1, skip, "all-units rollback == pipeline without gvn");
    assert_eq!(fault8, skip);
}

#[test]
fn suite_wide_fault_determinism() {
    for (name, m0) in lpat::workloads::compile_suite(0) {
        let run = |jobs: usize| {
            let mut m = m0.clone();
            let mut pm = function_pipeline();
            pm.jobs = Some(jobs);
            pm.faults = plan("instsimplify:panic@3,gvn:panic@1");
            let report = pm.run(&mut m);
            (write_module(&m), report.faults.len())
        };
        let (b1, n1) = run(1);
        let (b8, n8) = run(8);
        assert_eq!(b1, b8, "{name}: output differs across job counts");
        assert_eq!(n1, n8, "{name}: fault count differs across job counts");
    }
}

#[test]
fn blown_budget_rolls_back_with_timeout_fault() {
    let mut m = sample();
    let clean = m.display();
    let mut pm = PassManager::new();
    pm.budget = Some(Duration::from_millis(5));
    pm.faults = plan("slow:delay=60ms");
    pm.add(FnPass::new("slow", |m: &mut Module| {
        m.name.push('s');
        true
    }));
    let report = pm.run(&mut m);
    assert_eq!(report.faults.len(), 1);
    assert!(matches!(
        report.faults[0].cause,
        FaultCause::Timeout { budget } if budget == Duration::from_millis(5)
    ));
    assert_eq!(m.name, "t");
    assert_eq!(m.display(), clean);
}

#[test]
fn corrupt_injection_caught_by_verify_each_and_rolled_back() {
    let mut m = sample();
    let mut pm = PassManager::new();
    pm.verify_each = true;
    pm.faults = plan("internalize:corrupt@1");
    pm.add(Internalize::default());
    let report = pm.run(&mut m);
    assert_eq!(report.faults.len(), 1);
    assert!(matches!(
        report.faults[0].cause,
        FaultCause::VerifyFailed(_)
    ));
    m.verify().unwrap();
    assert_eq!(m.display(), sample().display(), "rolled back to the input");

    // Without --verify-each the simulated miscompile flows downstream —
    // exactly the failure mode the flag exists to catch.
    let mut m2 = sample();
    let mut pm2 = PassManager::new();
    pm2.faults = plan("internalize:corrupt@1");
    pm2.add(Internalize::default());
    let r2 = pm2.run(&mut m2);
    assert!(r2.faults.is_empty());
    assert!(m2.verify().is_err());
}

#[test]
fn strict_mode_propagates_faults() {
    // Module-level panic propagates out of run().
    let mut m = sample();
    let mut pm = PassManager::new();
    pm.degrade = false;
    pm.faults = plan("internalize:panic@1");
    pm.add(Internalize::default());
    assert!(catch_unwind(AssertUnwindSafe(|| pm.run(&mut m))).is_err());

    // A panic on a parallel worker is re-raised on the caller.
    let mut m = sample();
    let mut pm = function_pipeline();
    pm.degrade = false;
    pm.jobs = Some(4);
    pm.faults = plan("gvn:panic@1");
    assert!(catch_unwind(AssertUnwindSafe(|| pm.run(&mut m))).is_err());

    // A blown budget aborts instead of degrading.
    let mut m = sample();
    let mut pm = PassManager::new();
    pm.degrade = false;
    pm.budget = Some(Duration::from_millis(5));
    pm.faults = plan("slow:delay=60ms");
    pm.add(FnPass::new("slow", |_: &mut Module| false));
    assert!(catch_unwind(AssertUnwindSafe(|| pm.run(&mut m))).is_err());
}

/// Requests the dominator tree of every defined function, so its cache
/// row exposes hits vs. misses.
struct DomProbe;

impl ModulePass for DomProbe {
    fn name(&self) -> &'static str {
        "dom-probe"
    }
    fn run(&mut self, m: &mut Module, cx: &mut PassContext) -> PassEffect {
        let slots = cx.am.func_slots(m.num_funcs());
        for (i, id) in m.func_ids().enumerate() {
            let f = m.func(id);
            if !f.is_declaration() {
                let _ = slots[i].domtree(f);
            }
        }
        PassEffect::unchanged()
    }
}

#[test]
fn rollback_invalidates_cached_analyses() {
    // Baseline: with no fault in between, the second probe hits.
    let mut m = sample();
    let mut pm = PassManager::new();
    pm.add(DomProbe);
    pm.add(DomProbe);
    let r = pm.run(&mut m);
    assert!(r.passes[0].cache.misses > 0);
    assert_eq!(r.passes[1].cache.misses, 0);
    assert!(r.passes[1].cache.hits > 0);

    // A rolled-back pass in between must drop every cached analysis:
    // the restored module reuses version numbers, so stale entries
    // could ABA-collide with future versions.
    let mut m = sample();
    let mut pm = PassManager::new();
    pm.add(DomProbe);
    pm.add(FnPass::new("boom", |_: &mut Module| -> bool {
        panic!("kaboom")
    }));
    pm.add(DomProbe);
    let r = pm.run(&mut m);
    assert_eq!(r.faults.len(), 1);
    assert_eq!(r.passes[2].cache.hits, 0, "stale cache survived rollback");
    assert_eq!(r.passes[2].cache.misses, r.passes[0].cache.misses);
}

// ---------------------------------------------------------------------
// Subprocess tests: the lpatc driver under LPAT_FAULTS / --inject-faults.
// ---------------------------------------------------------------------

fn lpatc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lpatc"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Passes to fault in the subprocess matrix. CI overrides this with
/// `LPAT_FAULTS_MATRIX=<pass>` to run one leg per transform pass.
fn matrix_passes() -> Vec<String> {
    match std::env::var("LPAT_FAULTS_MATRIX") {
        Ok(v) if !v.trim().is_empty() => v.split(',').map(|s| s.trim().to_string()).collect(),
        _ => vec!["gvn".to_string(), "inline".to_string()],
    }
}

#[test]
fn lpatc_degrades_cleanly_under_fault_matrix() {
    // Runtime fault sites (dotted names like `spec.guard`) have their own
    // matrix test below; this one injects into optimizer passes.
    for pass in matrix_passes().into_iter().filter(|p| !p.contains('.')) {
        for (name, m) in lpat::workloads::compile_suite(0) {
            let input = tmp(&format!("fi-{pass}-{name}.bc"));
            std::fs::write(&input, write_module(&m)).unwrap();
            let mut outputs = Vec::new();
            for jobs in ["1", "8"] {
                let out_path = tmp(&format!("fi-{pass}-{name}-j{jobs}.bc"));
                let out = lpatc()
                    .args([
                        "opt",
                        input.to_str().unwrap(),
                        "--link-pipeline",
                        "-o",
                        out_path.to_str().unwrap(),
                        "--emit",
                        "bc",
                        "--jobs",
                        jobs,
                    ])
                    .env("LPAT_FAULTS", format!("{pass}:panic@1"))
                    .output()
                    .unwrap();
                assert!(
                    out.status.success(),
                    "lpatc died on {pass}/{name}:\n{}",
                    String::from_utf8_lossy(&out.stderr)
                );
                let stderr = String::from_utf8_lossy(&out.stderr);
                assert_eq!(
                    stderr.matches("isolated fault").count(),
                    1,
                    "{pass}/{name} --jobs {jobs}: expected exactly one isolated \
                     fault, stderr:\n{stderr}"
                );
                outputs.push(std::fs::read(&out_path).unwrap());
            }
            assert_eq!(
                outputs[0], outputs[1],
                "{pass}/{name}: output differs across --jobs"
            );
        }
    }
}

/// Runtime fault-site matrix: `spec.guard` (force every guard to fail —
/// the program must still print the unspeculated answer, interpreted or
/// tiered), `tier.deopt` (panic during deopt frame reconstruction —
/// the function is demoted and the run completes on the still-valid
/// translated frame), and `native.translate` (the single-pass machine
/// code backend fails — the function is permanently demoted to the JIT
/// tier and the answer is unchanged). CI runs one leg per job via
/// `LPAT_FAULTS_MATRIX=<site>`; locally all legs run.
#[test]
fn lpatc_vm_fault_sites_degrade_cleanly() {
    let sites: Vec<String> = match std::env::var("LPAT_FAULTS_MATRIX") {
        Ok(v) if !v.trim().is_empty() => v
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| s.contains('.'))
            .collect(),
        _ => vec![
            "spec.guard".to_string(),
            "tier.deopt".to_string(),
            "native.translate".to_string(),
        ],
    };
    if sites.is_empty() {
        return; // a transform-pass leg; nothing to do here
    }
    let src = "
declare void @print_int(int)
define internal int @alpha(int %x) {
e:
  %r = add int %x, 1
  ret int %r
}
define internal int @beta(int %x) {
e:
  %r = mul int %x, 2
  ret int %r
}
define int @disp(int (int)* %fp, int %x) {
e:
  %r = call int %fp(int %x)
  ret int %r
}
define int @main() {
e:
  br label %h
h:
  %i = phi int [ 0, %e ], [ %i2, %b ]
  %s = phi int [ 0, %e ], [ %s2, %b ]
  %c = setlt int %i, 400
  br bool %c, label %b, label %x
b:
  %v = call int @disp(int (int)* @alpha, int %i)
  %s2 = add int %s, %v
  %i2 = add int %i, 1
  br label %h
x:
  %w = call int @disp(int (int)* @beta, int 5)
  %t = add int %s, %w
  %m = rem int %t, 97
  call void @print_int(int %m)
  ret int %m
}";
    let p = tmp("fi-vm-sites.ll");
    std::fs::write(&p, src).unwrap();
    let prof = tmp("fi-vm-sites.prof");
    let seed = lpatc()
        .arg("run")
        .arg(&p)
        .args(["--profile", "--profile-out"])
        .arg(&prof)
        .arg("--quiet")
        .output()
        .unwrap();
    assert!(seed.status.code().is_some());
    for site in sites {
        match site.as_str() {
            "spec.guard" => {
                // Every guard fails: both engines fall back to the
                // generic path, the answer is unchanged.
                for engine in [&["--speculate"][..], &["--speculate", "--tier-up", "1"][..]] {
                    let out = lpatc()
                        .arg("run")
                        .arg(&p)
                        .arg("--profile-in")
                        .arg(&prof)
                        .args(engine)
                        .args(["--inject-faults", "spec.guard:corrupt", "--quiet"])
                        .output()
                        .unwrap();
                    assert_eq!(seed.status.code(), out.status.code(), "{engine:?}");
                    assert_eq!(seed.stdout, out.stdout, "{engine:?}: answer changed");
                }
            }
            "tier.deopt" => {
                // Frame reconstruction panics on the guard exit: the
                // function demotes, execution continues in translated
                // code, and the answer is unchanged.
                let out = lpatc()
                    .arg("run")
                    .arg(&p)
                    .arg("--profile-in")
                    .arg(&prof)
                    .args(["--speculate", "--tier-up", "1", "--stats"])
                    .args(["--inject-faults", "tier.deopt:panic"])
                    .output()
                    .unwrap();
                assert_eq!(seed.status.code(), out.status.code());
                assert_eq!(seed.stdout, out.stdout, "demoted run changed the answer");
                let stderr = String::from_utf8_lossy(&out.stderr);
                let demoted = stderr
                    .lines()
                    .find(|l| l.trim_start().starts_with("demoted"))
                    .unwrap_or_else(|| panic!("no demoted row in stats:\n{stderr}"));
                assert!(
                    !demoted.trim_end().ends_with(" 0"),
                    "tier.deopt fault never demoted: {demoted}\n{stderr}"
                );
            }
            "native.translate" => {
                // The machine-code backend fails on every candidate: each
                // hot function is permanently demoted to the JIT tier, no
                // native instructions ever retire, and the answer is
                // unchanged.
                let out = lpatc()
                    .arg("run")
                    .arg(&p)
                    .args(["--tier-up", "1", "--native-up", "1", "--stats"])
                    .args(["--inject-faults", "native.translate:io", "--quiet"])
                    .output()
                    .unwrap();
                assert_eq!(seed.status.code(), out.status.code());
                assert_eq!(seed.stdout, out.stdout, "demoted run changed the answer");
                let stderr = String::from_utf8_lossy(&out.stderr);
                let row = |label: &str| -> u64 {
                    stderr
                        .lines()
                        .find(|l| l.trim_start().starts_with(label))
                        .and_then(|l| l.split_whitespace().find_map(|w| w.parse::<u64>().ok()))
                        .unwrap_or_else(|| panic!("no `{label}` row in stats:\n{stderr}"))
                };
                assert!(
                    row("native demoted") >= 1,
                    "translate fault never demoted:\n{stderr}"
                );
                assert_eq!(
                    row("native insts"),
                    0,
                    "faulted backend still ran machine code:\n{stderr}"
                );
            }
            other => panic!("unknown runtime fault site {other}"),
        }
    }
}

#[test]
fn lpatc_inject_faults_flag_matches_env_behavior() {
    let (name, m) = &lpat::workloads::compile_suite(0)[0];
    let input = tmp(&format!("fi-flag-{name}.bc"));
    std::fs::write(&input, write_module(m)).unwrap();
    let out = lpatc()
        .args([
            "opt",
            input.to_str().unwrap(),
            "--inject-faults",
            "gvn:panic@1",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(stderr.matches("isolated fault").count(), 1, "{stderr}");
}

#[test]
fn lpatc_no_degrade_makes_injected_fault_fatal() {
    let (name, m) = &lpat::workloads::compile_suite(0)[0];
    let input = tmp(&format!("fi-strict-{name}.bc"));
    std::fs::write(&input, write_module(m)).unwrap();
    let out = lpatc()
        .args([
            "opt",
            input.to_str().unwrap(),
            "--no-degrade",
            "--inject-faults",
            "gvn:panic@1",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn lpatc_reports_bytecode_read_fault_gracefully() {
    let (name, m) = &lpat::workloads::compile_suite(0)[0];
    let input = tmp(&format!("fi-read-{name}.bc"));
    std::fs::write(&input, write_module(m)).unwrap();
    let out = lpatc()
        .args(["dis", input.to_str().unwrap()])
        .env("LPAT_FAULTS", "bytecode.read:panic@1")
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(2),
        "graceful error exit, not a crash"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("injected fault"), "{stderr}");
}
