//! The parallel function-pass stage must be deterministic: optimizing the
//! same module with any `--jobs` value yields byte-identical IR, because
//! every worker runs against a snapshot of the stage-entry constant/type
//! pools and the adapter merges per-function pool overlays in function
//! order.

fn optimized(m: &lpat::core::Module, jobs: usize) -> String {
    let mut c = m.clone();
    let mut pm = lpat::transform::function_pipeline();
    pm.jobs = Some(jobs);
    pm.run(&mut c);
    let mut pm = lpat::transform::link_time_pipeline();
    pm.jobs = Some(jobs);
    pm.run(&mut c);
    c.verify().unwrap_or_else(|e| panic!("jobs={jobs}: {e:?}"));
    c.display()
}

#[test]
fn jobs_one_and_four_produce_identical_ir() {
    for (name, m) in lpat::workloads::compile_suite(4) {
        let seq = optimized(&m, 1);
        let par = optimized(&m, 4);
        assert_eq!(
            seq, par,
            "workload {name} diverged between jobs=1 and jobs=4"
        );
    }
}

#[test]
fn repeated_parallel_runs_are_stable() {
    let (name, m) = lpat::workloads::compile_suite(4).swap_remove(0);
    let a = optimized(&m, 4);
    let b = optimized(&m, 4);
    assert_eq!(a, b, "workload {name} not stable across runs");
}
