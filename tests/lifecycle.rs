//! Integration tests spanning every crate: the full lifelong-compilation
//! lifecycle of paper §3 — front-end, per-module optimization, linking,
//! link-time IPO, serialization, execution, profiling, and offline
//! reoptimization — with behavior checked at every stage.

use lpat::transform::pm::{ModulePass, PassContext};
use lpat::vm::{Vm, VmOptions};

fn run(m: &lpat::core::Module) -> (i64, String) {
    let mut vm = Vm::new(m, VmOptions::default()).unwrap();
    let r = vm
        .run_main()
        .unwrap_or_else(|e| panic!("{e}\n{}", m.display()));
    (r, vm.output.clone())
}

#[test]
fn separate_compilation_then_link_then_ipo() {
    let lib = lpat::minic::compile(
        "lib",
        "
int helper(int x) { return x * 3; }
int unused_api(int x) { return x - 1; }
",
    )
    .unwrap();
    let app = lpat::minic::compile(
        "app",
        "
extern int helper(int x);
int main() { return helper(14); }
",
    )
    .unwrap();
    let mut m = lpat::linker::link(vec![lib, app], "prog").unwrap();
    m.verify().unwrap();
    assert_eq!(run(&m).0, 42);

    let mut pm = lpat::transform::link_time_pipeline();
    pm.verify_each = true;
    pm.run(&mut m);
    assert_eq!(run(&m).0, 42);
    assert!(m.func_by_name("unused_api").is_none(), "{}", m.display());
    // helper inlined and removed; main folds to a constant return.
    assert!(m.func_by_name("helper").is_none(), "{}", m.display());
    assert!(m.display().contains("ret int 42"), "{}", m.display());
}

#[test]
fn all_three_forms_agree_across_the_pipeline() {
    for (name, mut m) in lpat::workloads::compile_suite(1) {
        lpat::transform::function_pipeline().run(&mut m);
        // Transforms leave sparse instruction ids; one trip through the
        // parser (or the bytecode) renumbers densely in block order —
        // that display is the canonical form all three must agree on.
        let canon = lpat::asm::parse_module(name, &m.display())
            .unwrap()
            .display();
        let from_text = lpat::asm::parse_module(name, &canon).unwrap();
        assert_eq!(canon, from_text.display(), "{name}: text round trip");
        let bytes = lpat::bytecode::write_module(&m);
        let from_bin = lpat::bytecode::read_module(name, &bytes).unwrap();
        assert_eq!(canon, from_bin.display(), "{name}: binary round trip");
        from_bin.verify().unwrap();
        // The decoded module still runs identically.
        assert_eq!(run(&m), run(&from_bin), "{name}");
    }
}

#[test]
fn full_lifecycle_on_a_real_program() {
    // Stage 1: compile-time.
    let w = &lpat::workloads::suite(3)[5]; // 181.mcf-like
    let mut m = lpat::minic::compile(w.name, &w.source).unwrap();
    let baseline = run(&m);
    lpat::transform::function_pipeline().run(&mut m);
    assert_eq!(run(&m), baseline, "per-module optimization");

    // Stage 2: link-time.
    let mut pm = lpat::transform::link_time_pipeline();
    pm.verify_each = true;
    pm.run(&mut m);
    assert_eq!(run(&m), baseline, "link-time IPO");

    // Stage 3: offline codegen + shipped bytecode.
    let cisc = lpat::codegen::compile_module(&m, &lpat::codegen::Cisc32);
    let risc = lpat::codegen::compile_module(&m, &lpat::codegen::Risc32);
    assert!(cisc.code_size > 0 && risc.code_size >= cisc.code_size);
    let shipped = lpat::bytecode::write_module(&m);

    // Stage 4: runtime profiling on the shipped representation.
    let loaded = lpat::bytecode::read_module(w.name, &shipped).unwrap();
    let opts = VmOptions {
        profile: true,
        ..VmOptions::default()
    };
    let mut vm = Vm::new(&loaded, opts).unwrap();
    let r = vm.run_main().unwrap();
    assert_eq!((r, vm.output.clone()), baseline, "shipped representation");
    let profile = vm.profile.clone();
    assert!(!profile.block_counts.is_empty());

    // Stage 5: idle-time reoptimization.
    let mut re = loaded;
    lpat::vm::reoptimize(&mut re, &profile, &lpat::vm::PgoOptions::default());
    re.verify().unwrap();
    assert_eq!(run(&re), baseline, "profile-guided reoptimization");
}

#[test]
fn dsa_modref_consistency_on_linked_program() {
    let w = &lpat::workloads::suite(0)[9]; // 197.parser-like (pool allocator)
    let mut m = lpat::minic::compile(w.name, &w.source).unwrap();
    lpat::transform::function_pipeline().run(&mut m);
    let cg = lpat::analysis::CallGraph::build(&m);
    let dsa = lpat::analysis::Dsa::analyze(&m, &cg, &lpat::analysis::DsaOptions::default());
    let mr = lpat::analysis::ModRef::compute(&m, &cg, &dsa);
    // main transitively allocates & writes the pool: it must mod something.
    let main = m.func_by_name("main").unwrap();
    assert!(!mr.summary(main).modifies.is_empty());
    // And the typed-access profile is the custom-allocator one.
    let pct = dsa.access_stats().percent();
    assert!(pct < 70.0, "pool allocator program at {pct}%");
}

#[test]
fn internalize_is_required_for_aggressive_ipo() {
    // Without internalization, externally visible functions can't be
    // removed; with it, they can. (The capability-#5 story: linking the
    // *whole* program is what unlocks the optimization.)
    let src = "
int helper(int x) { return x + 1; }
int main() { return 41 + helper(0); }
";
    let m0 = lpat::minic::compile("t", src).unwrap();

    let mut without = m0.clone();
    lpat::transform::ipo::run_dge(&mut without);
    assert!(without.func_by_name("helper").is_some());

    let mut with = m0.clone();
    lpat::transform::ipo::Internalize::default().run(&mut with, &mut PassContext::default());
    let mut inliner = lpat::transform::inline::Inline::default();
    inliner.run(&mut with, &mut PassContext::default());
    lpat::transform::ipo::run_dge(&mut with);
    assert!(with.func_by_name("helper").is_none());
    assert_eq!(run(&with).0, 42);
}

#[test]
fn linker_compact_is_dead_type_elimination() {
    let mut m = lpat::minic::compile(
        "t",
        "struct unused_t { int a; double b; };\nint main() { return 7; }",
    )
    .unwrap();
    // Force extra junk into the tables.
    let junk = m.types.struct_lit(vec![]);
    m.consts.zero(junk);
    let before = m.types.len();
    let c = lpat::linker::compact(&m);
    assert!(c.types.len() < before, "{} < {before}", c.types.len());
    assert_eq!(run(&c).0, 7);
}

#[test]
fn jit_and_interpreter_agree_on_the_whole_suite() {
    // The paper's two execution paths (§3.4: offline codegen vs JIT
    // translation) must be observationally identical; here the reference
    // interpreter and the translating engine run every benchmark.
    for (name, m) in lpat::workloads::compile_suite(0) {
        let mut a = Vm::new(&m, VmOptions::default()).unwrap();
        let ra = a
            .run_main()
            .unwrap_or_else(|e| panic!("{name} interp: {e}"));
        let mut b = Vm::new(&m, VmOptions::default()).unwrap();
        let rb = b
            .run_main_jit()
            .unwrap_or_else(|e| panic!("{name} jit: {e}"));
        assert_eq!(ra, rb, "{name}: exit codes differ");
        assert_eq!(a.output, b.output, "{name}: output differs");
    }
}

#[test]
fn summaries_travel_with_bytecode_and_feed_link_time_passes() {
    // §3.3: compile-time summaries attach to the bytecode; the link-time
    // optimizer consumes them instead of recomputing from scratch, and
    // the result is identical.
    let src = "
void helper() { }
void might(int x) { if (x > 0) throw; }
int main() {
    int r = 0;
    try {
        helper();
    } catch {
        r = 1;
    }
    try {
        might(1);
    } catch {
        r = r + 2;
    }
    return r;
}";
    let m = lpat::minic::compile("t", src).unwrap();
    let bytes = lpat::bytecode::write_module_with_summaries(&m);
    let (loaded, sums) = lpat::bytecode::read_module_and_summaries("t", &bytes).unwrap();
    let sums = sums.expect("summaries attached");
    // Compare modulo dense renumbering (one parse trip canonicalizes).
    let canon = lpat::asm::parse_module("t", &m.display())
        .unwrap()
        .display();
    assert_eq!(loaded.display(), canon);

    // Plain write_module output carries none.
    let plain = lpat::bytecode::write_module(&m);
    let (_, none) = lpat::bytecode::read_module_and_summaries("t", &plain).unwrap();
    assert!(none.is_none());

    // Summary-driven prune-eh == from-scratch prune-eh.
    let mut a = loaded.clone();
    let na = lpat::transform::prune_eh::run_prune_eh_with_summaries(&mut a, &sums);
    let mut b = loaded.clone();
    let nb = lpat::transform::prune_eh::run_prune_eh(&mut b);
    assert_eq!(na, nb);
    assert_eq!(a.display(), b.display());
    assert!(na >= 1, "the helper invoke converts");
    a.verify().unwrap();
    assert_eq!(run(&a), run(&loaded), "behavior preserved");

    // The symbol-level Mod summary answers without touching IR.
    assert!(!sums.may_write_global("helper", "anything"));
}
