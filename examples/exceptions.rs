//! Exception handling on `invoke`/`unwind` (paper §2.4, Figures 1–3).
//!
//! Reproduces the paper's C++ cleanup example: an object with a destructor
//! is constructed, a call that might throw is made through `invoke`, and
//! when the exception unwinds the stack the destructor runs before
//! unwinding continues — all visible in the CFG. Then demonstrates the two
//! link-time EH optimizations: `prune-eh` deleting unused handlers, and
//! the inliner converting an `unwind` into a direct branch.
//!
//! ```text
//! cargo run --example exceptions
//! ```

use lpat::transform::pm::{ModulePass, PassContext};
use lpat::vm::{Vm, VmOptions};

/// The paper's Figure 2, in textual form: `func()` may throw; the
/// destructor of the stack object must run during unwinding.
const FIGURE2: &str = r#"
@log = global int 0

define internal void @AClass_ctor(int* %obj) {
entry:
  store int 1, int* %obj
  ret void
}

define internal void @AClass_dtor(int* %obj) {
entry:
  ; record that the destructor ran
  %l = load int* @log
  %l2 = add int %l, 100
  store int %l2, int* @log
  store int 0, int* %obj
  ret void
}

define internal void @func(bool %do_throw) {
entry:
  br bool %do_throw, label %t, label %ok
t:
  unwind
ok:
  ret void
}

define internal int @demo(bool %do_throw) {
entry:
  ; Allocate stack space for the object and construct it:
  %Obj = alloca int
  call void @AClass_ctor(int* %Obj)
  ; Call func() — might throw; must execute the destructor:
  invoke void @func(bool %do_throw) to label %OkLabel unwind label %ExceptionLabel
OkLabel:
  call void @AClass_dtor(int* %Obj)
  ret int 0
ExceptionLabel:
  ; If unwind occurs, execution continues here.
  ; First, destroy the object:
  call void @AClass_dtor(int* %Obj)
  ; Next, continue unwinding:
  unwind
}

define int @main(bool %do_throw) {
entry:
  invoke int @demo(bool %do_throw) to label %fine unwind label %caught
fine:
  %r1 = phi int [ 0, %entry ]
  %l1 = load int* @log
  %s1 = add int %l1, %r1
  ret int %s1
caught:
  %l2 = load int* @log
  %s2 = add int %l2, 1
  ret int %s2
}
"#;

fn run(m: &lpat::core::Module, arg: bool) -> (i64, i64) {
    let main = m.func_by_name("main").unwrap();
    let mut vm = Vm::new(m, VmOptions::default()).unwrap();
    let r = vm
        .run_function(main, vec![lpat::vm::VmValue::Bool(arg)])
        .unwrap()
        .unwrap()
        .as_i64()
        .unwrap();
    let addr = vm.global_addr(m.global_by_name("log").unwrap());
    let log = vm.mem.load_int(addr, lpat::core::IntKind::S32);
    (r, log.unwrap().as_i64().unwrap())
}

fn main() {
    let m = lpat::asm::parse_module("figure2", FIGURE2).unwrap();
    m.verify().unwrap();
    println!("== the paper's Figure 2, executable ==\n");

    let (quiet, log) = run(&m, false);
    println!("no throw   -> main returned {quiet}, destructor log = {log} (ran once)");
    assert_eq!((quiet, log), (100, 100));

    let (thrown, log) = run(&m, true);
    println!("with throw -> main returned {thrown}, destructor log = {log} (ran during unwind)");
    assert_eq!((thrown, log), (101, 100));

    // Link-time EH optimization 1: interprocedural handler pruning.
    // `AClass_ctor`/`dtor` cannot throw, so calls to them need no
    // handlers; and after analysis, invokes of non-throwing callees turn
    // into plain calls with their handler blocks deleted.
    let mut pruned = m.clone();
    let n = lpat::transform::prune_eh::run_prune_eh(&mut pruned);
    println!("\nprune-eh converted {n} invokes (callees that provably cannot throw)");

    // Link-time EH optimization 2: inlining `func` into `demo` turns the
    // stack-unwinding operation into a direct branch (§2.4: "this often
    // occurs due to inlining").
    let mut inlined = m.clone();
    let mut pass = lpat::transform::inline::Inline::default();
    pass.threshold = 1000;
    pass.run(&mut inlined, &mut PassContext::default());
    inlined.verify().unwrap();
    let text = inlined.display();
    let demo_unwinds = text.matches("unwind").count();
    println!(
        "after inlining: {} unwind instructions remain (branches took their place)",
        demo_unwinds
    );
    let (r, log) = run(&inlined, true);
    assert_eq!((r, log), (101, 100), "behavior preserved after inlining");
    println!("behavior identical after inlining: ({r}, {log})");

    // The same model from source: miniC try/catch lowers onto
    // invoke/unwind.
    let src = "
extern void print_int(int v);
void risky(int x) {
    if (x > 2) throw;
}
int main() {
    int caught = 0;
    try {
        risky(1);
        risky(5);
    } catch {
        caught = 1;
    }
    print_int(caught);
    return caught;
}";
    let mc = lpat::minic::compile("try_demo", src).unwrap();
    assert!(mc.display().contains("invoke"), "try lowers to invoke");
    let mut vm = Vm::new(&mc, VmOptions::default()).unwrap();
    assert_eq!(vm.run_main().unwrap(), 1);
    println!(
        "\nminiC try/catch lowered to invoke/unwind; caught = {}",
        vm.output.trim()
    );
}
