//! Quickstart: build a function in the IR, inspect all three equivalent
//! forms, verify, optimize, and execute it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use lpat::core::{inst::CmpPred, inst::Value, Linkage, Module};
use lpat::vm::{Vm, VmOptions};

fn main() {
    // int pow_acc(int base, int n): returns base^n by repeated
    // multiplication — built directly with the in-memory builder API.
    let mut m = Module::new("quickstart");
    let i32t = m.types.i32();
    let f = m.add_function("pow_acc", &[i32t, i32t], i32t, false, Linkage::External);
    let mut b = m.builder(f);
    let entry = b.block();
    let header = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();

    let one = b.iconst32(1);
    let zero = b.iconst32(0);
    b.br(header);

    b.switch_to(header);
    let i = b.phi(i32t, vec![(zero, entry)]);
    let acc = b.phi(i32t, vec![(one, entry)]);
    let cond = b.cmp(CmpPred::Lt, i, Value::Arg(1));
    b.cond_br(cond, body, exit);

    b.switch_to(body);
    let acc2 = b.mul(acc, Value::Arg(0));
    let i2 = b.add(i, one);
    b.br(header);

    // Close the loop-carried φs.
    let (i_id, acc_id) = match (i, acc) {
        (Value::Inst(a), Value::Inst(b)) => (a, b),
        _ => unreachable!(),
    };
    if let lpat::core::Inst::Phi { incoming } = m.func_mut(f).inst_mut(i_id) {
        incoming.push((i2, body));
    }
    if let lpat::core::Inst::Phi { incoming } = m.func_mut(f).inst_mut(acc_id) {
        incoming.push((acc2, body));
    }
    let mut b = m.builder(f);
    b.switch_to(exit);
    b.ret(Some(acc));

    // A main that calls it.
    let main_f = m.add_function("main", &[], i32t, false, Linkage::External);
    let mut b = m.builder(main_f);
    b.block();
    let base = b.iconst32(3);
    let n = b.iconst32(4);
    let r = b.call(f, vec![base, n]);
    b.ret(Some(r));

    m.verify().expect("well-formed IR");

    println!("== textual form ==\n{}", m.display());

    let bytes = lpat::bytecode::write_module(&m);
    println!("== binary form == {} bytes", bytes.len());
    let re = lpat::bytecode::read_module("quickstart", &bytes).unwrap();
    assert_eq!(m.display(), re.display());
    println!("binary round-trip reproduces the textual form exactly\n");

    let reparsed = lpat::asm::parse_module("quickstart", &m.display()).unwrap();
    assert_eq!(m.display(), reparsed.display());
    println!("textual round-trip is stable\n");

    let mut vm = Vm::new(&m, VmOptions::default()).unwrap();
    let result = vm.run_main().unwrap();
    println!("pow_acc(3, 4) = {result}");
    assert_eq!(result, 81);

    // Run the optimizer and show it still computes the same thing.
    lpat::transform::function_pipeline().run(&mut m);
    lpat::transform::link_time_pipeline().run(&mut m);
    m.verify().unwrap();
    println!("\n== after optimization ==\n{}", m.display());
    let mut vm = Vm::new(&m, VmOptions::default()).unwrap();
    assert_eq!(vm.run_main().unwrap(), 81);
    println!("still 81 after inlining and constant propagation");
}
