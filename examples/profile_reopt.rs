//! Lifelong optimization: runtime profiling, hot-region/trace detection,
//! and offline profile-guided reoptimization (paper §3.5–§3.6).
//!
//! The program is compiled and shipped with its bytecode; end-user runs
//! collect block/edge/call profiles; during idle time the reoptimizer
//! inlines the hot call sites and re-lays blocks so hot paths fall
//! through.
//!
//! ```text
//! cargo run --example profile_reopt
//! ```

use lpat::vm::{form_trace, reoptimize, PgoOptions, Vm, VmOptions};

const SRC: &str = "
extern void print_int(int v);

static int classify(int v) {
    if (v % 97 == 0) return 3;      // cold
    if (v % 7 == 0) return 2;       // lukewarm
    return 1;                       // hot
}

static int score(int kind, int v) {
    if (kind == 3) return v * 31;
    if (kind == 2) return v * 5;
    return v + 1;
}

int main() {
    int total = 0;
    for (int i = 0; i < 5000; i = i + 1) {
        int kind = classify(i);
        total = total + score(kind, i);
        total = total % 1000003;
    }
    print_int(total);
    return total % 256;
}";

fn main() {
    // Compile-time: front-end + per-module optimization; the bytecode is
    // what ships alongside the native code.
    let mut built = lpat::minic::compile("app", SRC).unwrap();
    lpat::transform::function_pipeline().run(&mut built);
    let shipped = lpat::bytecode::write_module(&built);
    println!("shipped bytecode: {} bytes\n", shipped.len());

    // The end-user's runtime loads the shipped representation; the profile
    // it collects refers to *this* copy of the program.
    let m = lpat::bytecode::read_module("app", &shipped).unwrap();

    // Runtime: the end-user runs the program; lightweight instrumentation
    // collects the profile (paper §3.5).
    let opts = VmOptions {
        profile: true,
        ..VmOptions::default()
    };
    let mut vm = Vm::new(&m, opts).unwrap();
    let before = vm.run_main().unwrap();
    let before_insts = vm.insts_executed;
    let profile = vm.profile.clone();
    println!("first run: result={before}, {before_insts} instructions interpreted");

    // Hot-region detection + trace formation.
    let hot = profile.hot_loops(&m, 1000);
    println!("\nhot loop regions (threshold 1000):");
    for h in &hot {
        let f = m.func(h.func);
        let (trace, coverage) = form_trace(&m, &profile, h);
        println!(
            "  @{}: header bb{} ran {} times; hot trace {:?} covers {:.0}% of loop execution",
            f.name,
            h.header.index(),
            h.header_count,
            trace.iter().map(|b| b.index()).collect::<Vec<_>>(),
            coverage * 100.0
        );
    }
    println!("\nhot call sites:");
    for (caller, site, count) in profile.hot_callsites(1000) {
        println!(
            "  in @{} at %t{}: executed {count} times",
            m.func(caller).name,
            site.index()
        );
    }

    // Idle-time: offline reoptimization with the end-user profile
    // (paper §3.6), applied to the loaded representation the profile
    // refers to.
    let mut re = m;
    let report = reoptimize(&mut re, &profile, &PgoOptions::default());
    lpat::transform::function_pipeline().run(&mut re);
    re.verify().unwrap();
    println!(
        "\nreoptimizer: inlined {} hot call sites, re-laid {} functions",
        report.inlined, report.relaid
    );

    // Next run uses the reoptimized code.
    let mut vm = Vm::new(&re, VmOptions::default()).unwrap();
    let after = vm.run_main().unwrap();
    let after_insts = vm.insts_executed;
    assert_eq!(before, after, "reoptimization must preserve behavior");
    println!(
        "second run: result={after}, {after_insts} instructions interpreted \
         ({:.1}% of the first run)",
        after_insts as f64 * 100.0 / before_insts as f64
    );
    assert!(
        after_insts < before_insts,
        "hot-site inlining should remove call overhead"
    );
}
