//! Uniform whole-program compilation (paper capability #5): separate
//! translation units are compiled to the representation, linked, and then
//! optimized *as one program* — internalization unlocks DGE/DAE/IPCP/
//! inlining across what used to be module boundaries, including the
//! "library" code.
//!
//! ```text
//! cargo run --example whole_program
//! ```

use lpat::transform::fpm::FunctionPassAdapter;
use lpat::transform::pm::PassManager;
use lpat::vm::{Vm, VmOptions};

/// "libmath.c" — a library with more API surface than this app uses.
const LIB_MATH: &str = "
int gcd(int a, int b) {
    while (b != 0) {
        int t = a % b;
        a = b;
        b = t;
    }
    return a;
}
int lcm(int a, int b) { return a / gcd(a, b) * b; }
int ipow(int base, int n) {
    int acc = 1;
    for (int i = 0; i < n; i = i + 1) acc = acc * base;
    return acc;
}
int unused_entry(int x, int flags) { return ipow(x, 3) + flags; }
";

/// "libfmt.c" — output helpers over the runtime's print_int.
const LIB_FMT: &str = "
extern void print_int(int v);
int fmt_calls = 0;
void emit(int label, int v) {
    fmt_calls = fmt_calls + 1;
    print_int(label * 1000000 + v);
}
void emit_pair(int a, int b) { emit(1, a); emit(2, b); }
void never_used(int x) { emit(9, x); }
";

/// "main.c" — the application.
const APP: &str = "
extern int gcd(int a, int b);
extern int lcm(int a, int b);
extern void emit_pair(int a, int b);
int main() {
    int g = gcd(462, 1071);
    int l = lcm(6, 14);
    emit_pair(g, l);
    return g + l;
}
";

fn main() {
    // Compile each translation unit separately (separate compilation is
    // preserved: nothing whole-program happens yet).
    let units: Vec<lpat::core::Module> = [("libmath", LIB_MATH), ("libfmt", LIB_FMT), ("app", APP)]
        .into_iter()
        .map(|(n, s)| {
            let mut m = lpat::minic::compile(n, s).unwrap();
            lpat::transform::function_pipeline().run(&mut m);
            m
        })
        .collect();
    for u in &units {
        println!(
            "unit {:<8} {:3} functions, {:4} instructions",
            u.name,
            u.num_funcs(),
            u.total_insts()
        );
    }

    // Link: declarations bind to definitions, types unify.
    let mut linked = lpat::linker::link(units, "program").unwrap();
    linked.verify().unwrap();
    println!(
        "\nlinked    {:3} functions, {:4} instructions",
        linked.num_funcs(),
        linked.total_insts()
    );
    let baseline = {
        let mut vm = Vm::new(&linked, VmOptions::default()).unwrap();
        (vm.run_main().unwrap(), vm.output.clone())
    };

    // Whole-program interprocedural optimization, pass by pass, with the
    // paper's Table 2 trio reported individually.
    let mut pm = PassManager::new();
    pm.verify_each = true;
    pm.add(lpat::transform::ipo::Internalize::default());
    pm.add(lpat::transform::ipo::Ipcp::default());
    pm.add(lpat::transform::ipo::Dae::default());
    pm.add(lpat::transform::ipo::Dge::default());
    pm.add(lpat::transform::inline::Inline::default());
    pm.add(lpat::transform::prune_eh::PruneEh::default());
    pm.add(
        FunctionPassAdapter::new("cleanup")
            .add(lpat::transform::scalar::InstSimplify::default())
            .add(lpat::transform::gvn::Gvn::default())
            .add(lpat::transform::simplifycfg::SimplifyCfg::default())
            .add(lpat::transform::adce::Adce::default()),
    );
    pm.add(lpat::transform::ipo::Dge::default());
    println!();
    print!("{}", pm.run(&mut linked).render());
    println!(
        "\noptimized {:3} functions, {:4} instructions",
        linked.num_funcs(),
        linked.total_insts()
    );
    assert!(
        linked.func_by_name("unused_entry").is_none(),
        "dead library API removed"
    );
    assert!(
        linked.func_by_name("never_used").is_none(),
        "dead helper removed"
    );

    // Same behavior, smaller program.
    let after = {
        let mut vm = Vm::new(&linked, VmOptions::default()).unwrap();
        (vm.run_main().unwrap(), vm.output.clone())
    };
    assert_eq!(baseline, after);
    println!("\noutput (unchanged):\n{}", after.1.trim());
    println!("exit value: {}", after.0);

    // The compacted module also serializes smaller.
    let compacted = lpat::linker::compact(&linked);
    let bytes = lpat::bytecode::write_module(&compacted);
    println!("\nfinal bytecode: {} bytes", bytes.len());

    // And a pass manager run is the "offline reoptimizer" shape: the same
    // machinery can rerun at install time or idle time from the bytecode.
    let re = lpat::bytecode::read_module("program", &bytes).unwrap();
    assert_eq!(re.display(), compacted.display());
}
