//! `lpatd` — the fault-isolated multi-tenant compile-and-run daemon.
//!
//! ```text
//! lpatd [--listen ADDR] [--workers N] [--queue N]
//!       [--isolate thread|process] [--crash-k N] [--crash-window-ms N]
//!       [--watchdog-grace-ms N] [--restart-backoff-ms N]
//!       [--cache-dir DIR] [--shards N]
//!       [--max-frame-bytes N] [--default-fuel N] [--deadline-ms N]
//!       [--tenant-inflight N] [--tenant-bytes N] [--tenant-fuel N]
//!       [--max-requests N] [--inject-faults PLAN] [--quiet]
//!       [--trace-out FILE] [--metrics-out FILE] [--stats]
//!       [--trace-clock virtual|real] [--flight-dir DIR]
//! ```
//!
//! `ADDR` is `tcp:host:port` (port 0 binds an ephemeral port) or
//! `unix:/path/to.sock`. On startup the daemon prints exactly one line —
//! `listening on <addr>` with the resolved address — to stdout, so
//! scripts and tests can discover the ephemeral port. It then serves
//! until killed, or until `--max-requests N` requests have completed
//! (tests and benchmarks use this for a clean, trace-flushing exit).
//! SIGTERM and SIGINT request the same graceful drain: stop accepting,
//! finish the queue, flush, exit 0.
//!
//! Every request is fault-isolated: a panicking, hostile, or runaway
//! request becomes a structured error on its own connection while the
//! daemon keeps serving everyone else. `--isolate process` raises the
//! blast shield from `catch_unwind` to process boundaries: requests run
//! in pooled `lpatd --worker` subprocesses, so aborts, stack overflows,
//! OOM kills, and `kill -9` cost one worker (that client gets a
//! `crashed` error) while the daemon keeps serving; a payload whose
//! workers keep dying is quarantined by the crash-loop breaker
//! (`--crash-k` strikes inside `--crash-window-ms`).
//!
//! Observability: `--trace-out` merges the daemon's spans with every
//! worker subprocess's per-request trace buffer (shipped back over the
//! worker's stdout framing) into one Chrome/Perfetto trace with one pid
//! lane per process; under `--trace-clock virtual` the merged file is
//! byte-deterministic at any worker count. Under `--isolate process` each
//! worker also keeps a crash flight recorder — a bounded ring of its
//! recent trace events spilled to a checksummed file under `--flight-dir`
//! (default: `<cache-dir>/flight`, or a temp directory) — which the
//! supervisor salvages into a `*.flight` dump referenced by the `crashed`
//! diagnostic whenever a worker dies. The final `--stats`/`--metrics-out`
//! dump happens on every graceful exit path, including SIGTERM/SIGINT
//! drain.
//!
//! `--inject-faults` (or the `LPAT_FAULTS` environment variable) arms
//! the `serve.accept`, `serve.decode`, `serve.worker`, `serve.deadline`,
//! and `store.journal` sites — the same deterministic fault grammar the
//! optimizer and store use — which is how CI proves the isolation
//! actually holds. Under `--isolate process` the plan is forwarded to
//! the worker subprocesses rather than armed in the daemon, so faults
//! land where requests execute.

use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("lpatd: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    if has_flag(args, "--help") || has_flag(args, "-h") {
        eprintln!(
            "usage: lpatd [--listen tcp:host:port|unix:/path] [--workers N] [--queue N]\n\
             \x20      [--isolate thread|process] [--crash-k N] [--crash-window-ms N]\n\
             \x20      [--watchdog-grace-ms N] [--restart-backoff-ms N]\n\
             \x20      [--cache-dir DIR] [--shards N] [--max-frame-bytes N]\n\
             \x20      [--default-fuel N] [--deadline-ms N]\n\
             \x20      [--tenant-inflight N] [--tenant-bytes N] [--tenant-fuel N]\n\
             \x20      [--max-requests N] [--inject-faults PLAN] [--quiet]\n\
             \x20      [--trace-out FILE] [--metrics-out FILE] [--stats]\n\
             \x20      [--trace-clock virtual|real] [--flight-dir DIR]"
        );
        return Ok(ExitCode::SUCCESS);
    }
    if has_flag(args, "--worker") {
        return run_worker(args);
    }
    let isolate = match flag_value(args, "--isolate") {
        Some(v) => lpat::serve::Isolation::parse(v).map_err(|e| format!("--isolate: {e}"))?,
        None => lpat::serve::Isolation::Thread,
    };
    // Install the fault plan before the server starts: the serve.* sites
    // must see it from the first accepted connection. Under process
    // isolation the plan is NOT armed here — requests execute in worker
    // subprocesses, so the plan is forwarded on their command line
    // instead (the daemon's own bookkeeping writes must not consume the
    // plan's ordinals).
    let mut worker_args: Vec<String> = Vec::new();
    if let Some(plan) = flag_value(args, "--inject-faults") {
        let parsed =
            lpat::core::FaultPlan::parse(plan).map_err(|e| format!("--inject-faults: {e}"))?;
        match isolate {
            lpat::serve::Isolation::Thread => {
                lpat::core::fault::install(parsed);
            }
            lpat::serve::Isolation::Process => {
                worker_args.extend(["--inject-faults".to_string(), plan.to_string()]);
            }
        }
    }
    let trace_out = flag_value(args, "--trace-out").map(str::to_string);
    let metrics_out = flag_value(args, "--metrics-out").map(str::to_string);
    let stats = has_flag(args, "--stats");
    let tracing = trace_out.is_some() || metrics_out.is_some() || stats;
    // The flag wins over the environment, same as lpatc.
    let clock = match flag_value(args, "--trace-clock") {
        Some("virtual") => lpat::core::trace::ClockMode::Virtual,
        Some("real") => lpat::core::trace::ClockMode::Real,
        Some(other) => return Err(format!("bad --trace-clock '{other}' (virtual or real)")),
        None => match std::env::var("LPAT_TRACE_CLOCK").as_deref() {
            Ok("virtual") => lpat::core::trace::ClockMode::Virtual,
            _ => lpat::core::trace::ClockMode::Real,
        },
    };
    if tracing {
        lpat::core::trace::enable(clock);
    }
    let quiet = has_flag(args, "--quiet");

    let mut cfg = lpat::serve::ServerConfig::default();
    if let Some(a) = flag_value(args, "--listen") {
        cfg.addr = a.to_string();
    }
    if let Some(v) = flag_value(args, "--workers") {
        cfg.workers = parse(v, "--workers")?;
        if cfg.workers == 0 {
            return Err("--workers must be at least 1".into());
        }
    }
    if let Some(v) = flag_value(args, "--queue") {
        cfg.queue_depth = parse(v, "--queue")?;
    }
    if let Some(v) = flag_value(args, "--max-frame-bytes") {
        cfg.max_frame = parse(v, "--max-frame-bytes")?;
    }
    if let Some(v) = flag_value(args, "--default-fuel") {
        cfg.default_fuel = parse(v, "--default-fuel")?;
    }
    if let Some(v) = flag_value(args, "--deadline-ms") {
        cfg.default_deadline = Duration::from_millis(parse(v, "--deadline-ms")?);
    }
    if let Some(v) = flag_value(args, "--tenant-inflight") {
        cfg.quota.max_inflight = parse(v, "--tenant-inflight")?;
    }
    if let Some(v) = flag_value(args, "--tenant-bytes") {
        cfg.quota.max_bytes = parse(v, "--tenant-bytes")?;
    }
    if let Some(v) = flag_value(args, "--tenant-fuel") {
        cfg.quota.max_fuel = parse(v, "--tenant-fuel")?;
    }
    if let Some(v) = flag_value(args, "--max-requests") {
        cfg.max_requests = Some(parse(v, "--max-requests")?);
    }
    if let Some(v) = flag_value(args, "--shards") {
        cfg.shards = parse(v, "--shards")?;
    }
    cfg.cache_dir = flag_value(args, "--cache-dir")
        .map(str::to_string)
        .or_else(|| std::env::var("LPAT_CACHE_DIR").ok())
        .map(Into::into);
    cfg.isolate = isolate;
    cfg.worker_args = worker_args;
    if let Some(v) = flag_value(args, "--crash-k") {
        cfg.crash_k = parse(v, "--crash-k")?;
    }
    if let Some(v) = flag_value(args, "--crash-window-ms") {
        cfg.crash_window = Duration::from_millis(parse(v, "--crash-window-ms")?);
    }
    if let Some(v) = flag_value(args, "--watchdog-grace-ms") {
        cfg.watchdog_grace = Duration::from_millis(parse(v, "--watchdog-grace-ms")?);
    }
    if let Some(v) = flag_value(args, "--restart-backoff-ms") {
        cfg.restart_backoff = Duration::from_millis(parse(v, "--restart-backoff-ms")?);
    }
    if isolate == lpat::serve::Isolation::Process {
        // Workers trace each request and ship the buffer back whenever
        // the daemon itself is exporting a trace.
        if tracing {
            cfg.worker_trace = Some(clock);
        }
        // The flight recorder is always on under process isolation: the
        // whole point is having evidence *after* an unplanned death.
        cfg.flight_dir = Some(match flag_value(args, "--flight-dir") {
            Some(d) => std::path::PathBuf::from(d),
            None => match &cfg.cache_dir {
                Some(c) => c.join("flight"),
                None => std::env::temp_dir().join(format!("lpatd-flight-{}", std::process::id())),
            },
        });
    }

    // SIGTERM/SIGINT drain the daemon through the same clean path
    // `--max-requests` takes (finish the queue, flush, exit 0).
    lpat::serve::signal::install_term_handlers();
    let server = lpat::serve::Server::bind(cfg)?;
    let addr = server.local_addr();
    // The one machine-readable startup line; tests parse the port off it.
    println!("listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if !quiet {
        eprintln!("lpatd: serving (ctrl-c to stop)");
    }
    server.run();
    if !quiet {
        eprintln!("lpatd: shut down cleanly");
    }
    // Export the trace only after the pool has drained so every request
    // span and serve.* counter is in the file.
    if trace_out.is_some() || metrics_out.is_some() || stats {
        let data = lpat::core::trace::drain();
        if let Some(p) = &trace_out {
            std::fs::write(p, data.to_chrome_json())
                .map_err(|e| format!("--trace-out {p}: {e}"))?;
        }
        if let Some(p) = &metrics_out {
            std::fs::write(p, data.to_metrics_json())
                .map_err(|e| format!("--metrics-out {p}: {e}"))?;
        }
        if stats {
            eprint!("{}", data.render_stats());
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// The `--worker` mode: a supervised subprocess speaking the LPRQ/LPRS
/// framing over stdin/stdout. No listen socket, no startup line —
/// stdout carries nothing but response frames. Exits 0 on stdin EOF
/// (the supervisor's graceful-drain signal).
fn run_worker(args: &[String]) -> Result<ExitCode, String> {
    // A ctrl-c to the process group must not kill workers out from
    // under the supervisor mid-drain; the supervisor alone decides
    // worker fate (stdin EOF to drain, SIGKILL for wedges).
    lpat::serve::signal::ignore_term_signals();
    // The worker is where requests actually execute, so the fault plan
    // arms here (the supervisor forwards `--inject-faults` verbatim).
    if let Some(plan) = flag_value(args, "--inject-faults") {
        let plan =
            lpat::core::FaultPlan::parse(plan).map_err(|e| format!("--inject-faults: {e}"))?;
        lpat::core::fault::install(plan);
    }
    let mut max_frame = lpat::serve::DEFAULT_MAX_FRAME;
    if let Some(v) = flag_value(args, "--max-frame-bytes") {
        max_frame = parse(v, "--max-frame-bytes")?;
    }
    let mut default_fuel: u64 = 100_000_000;
    if let Some(v) = flag_value(args, "--default-fuel") {
        default_fuel = parse(v, "--default-fuel")?;
    }
    let mut default_deadline = Duration::from_secs(10);
    if let Some(v) = flag_value(args, "--deadline-ms") {
        default_deadline = Duration::from_millis(parse(v, "--deadline-ms")?);
    }
    let store = match flag_value(args, "--cache-dir") {
        Some(dir) => {
            let shards: u32 = match flag_value(args, "--shards") {
                Some(v) => parse(v, "--shards")?,
                None => 16,
            };
            Some(
                lpat::serve::ShardedStore::open(std::path::Path::new(dir), shards)
                    .map_err(|e| format!("cache dir {e}"))?,
            )
        }
        None => None,
    };
    // Observability plumbing from the supervisor: `--trace-clock` turns
    // on per-request trace sessions shipped back as sidecar frames;
    // `--flight-file` additionally spills a bounded ring of recent
    // events for post-mortem salvage. A flight file without a trace
    // clock still needs sessions running (the recorder observes events
    // as they are recorded), so it forces a real-clock session that is
    // drained and discarded instead of shipped.
    let mut ships_trace = false;
    let mut trace_clock = match flag_value(args, "--trace-clock") {
        Some("virtual") => {
            ships_trace = true;
            Some(lpat::core::trace::ClockMode::Virtual)
        }
        Some("real") => {
            ships_trace = true;
            Some(lpat::core::trace::ClockMode::Real)
        }
        Some(other) => return Err(format!("bad --trace-clock '{other}' (virtual or real)")),
        None => None,
    };
    if let Some(path) = flag_value(args, "--flight-file") {
        let rec =
            lpat::core::trace::FlightRecorder::create(std::path::Path::new(path), FLIGHT_RING)
                .map_err(|e| format!("--flight-file {path}: {e}"))?;
        lpat::core::trace::install_flight_recorder(rec);
        if trace_clock.is_none() {
            trace_clock = Some(lpat::core::trace::ClockMode::Real);
        }
    }
    let engine = lpat::serve::Engine::new(store, default_fuel);
    let code = lpat::serve::run_worker_stdio(
        &engine,
        max_frame,
        default_deadline,
        trace_clock,
        ships_trace,
    );
    Ok(ExitCode::from(code as u8))
}

/// Flight-recorder ring capacity: the last N trace events a worker keeps
/// for post-mortem salvage.
const FLIGHT_RING: usize = 64;

fn parse<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("bad {flag} value '{v}'"))
}

fn has_flag(args: &[String], f: &str) -> bool {
    args.iter().any(|a| a == f)
}

fn flag_value<'a>(args: &'a [String], f: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == f)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}
