//! `lpatc` — the command-line driver for the lpat framework.
//!
//! ```text
//! lpatc compile <in.mc> [-o out.bc] [--emit text|bc] [-O]   miniC -> IR
//! lpatc opt     <in>    [-o out]    [--emit text|bc] [--link-pipeline]
//!               [--jobs N] [--verify-each] [--time-passes]
//!               [--inject-faults PLAN] [--no-degrade] [--pass-budget-ms N]
//! lpatc link    <in...> -o out      [--emit text|bc] [-O]
//! lpatc dis     <in.bc>                                     bytecode -> text
//! lpatc run     <in>    [-O] [--profile] [--fuel N] [--input a,b,c] [--max-stack N]
//!               [--jit | --tiered] [--tier-up N] [--tier-native] [--native-up N]
//!               [--speculate] [--spec-threshold N]
//!               [--cache-dir DIR] [--profile-in F] [--profile-out F]
//! lpatc reopt   <in>    [--cache-dir DIR] [--profile-in F] [-o out] [--jobs N]
//!               [--speculate] [--spec-threshold N]
//! lpatc analyze <in>                                        DSA + call graph report
//! lpatc size    <in>                                        code-size report
//! ```
//!
//! Every command also accepts `--quiet` (silence stderr notices and
//! warnings) and the observability flags `--trace-out FILE` (Chrome
//! trace-event JSON, loadable in Perfetto / `chrome://tracing`),
//! `--metrics-out FILE` (machine-readable metrics summary), `--stats`
//! (human-readable metrics table on stderr), and
//! `--trace-clock virtual|real` (or `LPAT_TRACE_CLOCK`) — the virtual
//! clock makes trace exports byte-deterministic for tests.
//!
//! Inputs are auto-detected: files beginning with the `LPAT` magic load as
//! bytecode, files ending in `.mc` compile as miniC, anything else parses
//! as the textual form.
//!
//! # Degraded compilation
//!
//! By default a pass that panics, miscompiles (under `--verify-each`), or
//! blows its `--pass-budget-ms` wall-clock budget is rolled back and the
//! pipeline continues — each fault is reported on stderr and the output is
//! exactly what skipping that pass would produce. `--no-degrade` makes
//! such faults fatal instead. `--inject-faults 'gvn:panic@2,...'` (or the
//! `LPAT_FAULTS` environment variable) deterministically triggers faults
//! at named sites for testing; see `lpat_core::fault`.
//!
//! # Tiered execution
//!
//! `run --tiered` starts every function in the profiling interpreter and
//! promotes it to the translated tier once its hotness counter (calls +
//! loop back-edges) exceeds the threshold (`--tier-up N`, or the
//! `LPAT_TIER_UP` environment variable; `--tier-up` implies `--tiered`).
//! `--tier-native` enables the third tier: a function that stays hot on
//! the JIT tier is translated once more — by the single-pass backend in
//! `lpat_codegen::fast` — to risc32 machine code and executed by the
//! fuel-metered emulator in `lpat_vm::native`. `--native-up N` sets the
//! extra hotness required after JIT promotion (it implies
//! `--tier-native`; without it the JIT threshold is reused). With a
//! lifelong store (`--cache-dir`) or `--profile-in`, functions recorded
//! hot in *prior* runs are translated eagerly at load (warm-start), so a
//! repeat run skips the warm-up entirely. `--stats` prints a per-tier
//! instruction table. Tiered execution is observationally identical to
//! the plain interpreter at any threshold, machine-code tier included.
//!
//! # Speculative PGO
//!
//! `run --speculate` consults the accumulated profile and speculatively
//! devirtualizes hot indirect calls / specializes hot functions on
//! observed constant arguments, protecting each assumption with a guard.
//! A failed guard deoptimizes back to the interpreter (under `--tiered`)
//! or falls through to the generic path. Per-guard misspeculation counts
//! flow back into the lifelong store; `reopt --speculate` reports the
//! offline plan — which guards the profile justifies and which are
//! *retracted* because their misspeculation rate exceeds
//! `--spec-threshold` percent (default 25) — byte-identically to the
//! in-memory decision at any `--jobs`. Speculation is an in-memory
//! overlay: the stored module and its profile stay unspeculated.
//!
//! # Lifelong persistence
//!
//! `run --cache-dir DIR` (or `LPAT_CACHE_DIR`) keeps a crash-safe store of
//! execution profiles and reoptimized bytecode keyed by the content hash
//! of the module: each run merges its counts into the stored lifetime
//! profile (flushed on clean exit *and* on trap), and `reopt` consumes the
//! accumulated profile offline, caching the reoptimized module so the next
//! `run` picks it up automatically. Corrupt, truncated, or stale store
//! files are quarantined and regenerated, never trusted. `--profile-out` /
//! `--profile-in` do the same with a single explicit profile file.

use std::process::ExitCode;

use lpat::core::Module;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("lpatc: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let rest = &args[1.min(args.len())..];
    // Install the fault plan before any module is loaded: the bytecode
    // reader's `bytecode.read` site must see it.
    if let Some(plan) = flag_value(rest, "--inject-faults") {
        let plan =
            lpat::core::FaultPlan::parse(plan).map_err(|e| format!("--inject-faults: {e}"))?;
        lpat::core::fault::install(plan);
    }
    // Enable tracing before any module is loaded or pipeline runs so every
    // subsystem's spans land in the export.
    let trace_cfg = setup_trace(rest)?;
    let mut diag = Diag::new(has_flag(rest, "--quiet"));
    let result = dispatch(cmd, rest, &mut diag);
    finalize_trace(&trace_cfg, &diag)?;
    diag.flush();
    result
}

fn dispatch(cmd: &str, rest: &[String], diag: &mut Diag) -> Result<ExitCode, String> {
    match cmd {
        "compile" | "opt" | "link" | "dis" => {
            let inputs: Vec<&String> = rest.iter().take_while(|a| !a.starts_with('-')).collect();
            if inputs.is_empty() {
                return Err(format!("{cmd}: no input files"));
            }
            let mut m = if cmd == "link" {
                let mods: Result<Vec<Module>, String> = inputs.iter().map(|p| load(p)).collect();
                lpat::linker::link(mods?, "a.out").map_err(|e| e.to_string())?
            } else {
                load(inputs[0])?
            };
            if cmd == "dis" {
                print!("{}", m.display());
                return Ok(ExitCode::SUCCESS);
            }
            let jobs = match flag_value(rest, "--jobs") {
                Some(v) => Some(v.parse::<usize>().map_err(|_| "bad --jobs value")?.max(1)),
                None => None,
            };
            let verify_each = has_flag(rest, "--verify-each");
            let time_passes = has_flag(rest, "--time-passes");
            let degrade = !has_flag(rest, "--no-degrade");
            let budget = match flag_value(rest, "--pass-budget-ms") {
                Some(v) => Some(std::time::Duration::from_millis(
                    v.parse::<u64>().map_err(|_| "bad --pass-budget-ms value")?,
                )),
                None => None,
            };
            let optimize = has_flag(rest, "-O") || has_flag(rest, "-O2") || cmd == "opt";
            let mut reports: Vec<(&str, lpat::transform::PipelineReport)> = Vec::new();
            if optimize {
                let mut pm = lpat::transform::function_pipeline();
                pm.jobs = jobs;
                pm.verify_each = verify_each;
                pm.degrade = degrade;
                pm.budget = budget;
                reports.push(("function pipeline", pm.run(&mut m)));
            }
            if has_flag(rest, "--link-pipeline")
                || (cmd == "link" && (has_flag(rest, "-O") || has_flag(rest, "-O2")))
            {
                let mut pm = lpat::transform::link_time_pipeline();
                pm.jobs = jobs;
                pm.verify_each = verify_each;
                pm.degrade = degrade;
                pm.budget = budget;
                reports.push(("link-time pipeline", pm.run(&mut m)));
            }
            if time_passes {
                for (title, r) in &reports {
                    diag.dump(&format!("=== {title} ==="));
                    diag.dump_raw(&r.render());
                }
            }
            for (title, r) in &reports {
                for f in &r.faults {
                    diag.warn(&format!("{title}: isolated fault: {f}"));
                }
            }
            m.verify().map_err(|e| format!("verifier: {}", e[0]))?;
            emit(&m, rest)?;
            Ok(ExitCode::SUCCESS)
        }
        "run" => {
            let input = rest
                .iter()
                .find(|a| !a.starts_with('-'))
                .ok_or("run: no input file")?;
            let mut m = load(input)?;
            // `run -O` optimizes in-process first, so a single traced run
            // covers the compiler, the VM, the heap, and the store.
            if has_flag(rest, "-O") || has_flag(rest, "-O2") {
                let mut pm = lpat::transform::function_pipeline();
                if let Some(v) = flag_value(rest, "--jobs") {
                    pm.jobs = Some(v.parse::<usize>().map_err(|_| "bad --jobs value")?.max(1));
                }
                let r = pm.run(&mut m);
                for f in &r.faults {
                    diag.warn(&format!("function pipeline: isolated fault: {f}"));
                }
                m.verify().map_err(|e| format!("verifier: {}", e[0]))?;
            }
            let cache_dir = cache_dir(rest);
            let profile_out = flag_value(rest, "--profile-out");
            let profile_in = flag_value(rest, "--profile-in");
            let mut opts = lpat::vm::VmOptions {
                // Persistence implies instrumentation: the profile is
                // exactly what gets persisted.
                profile: has_flag(rest, "--profile")
                    || cache_dir.is_some()
                    || profile_out.is_some(),
                ..Default::default()
            };
            if let Some(f) = flag_value(rest, "--fuel") {
                opts.fuel = Some(f.parse().map_err(|_| "bad --fuel value")?);
            }
            if let Some(n) = flag_value(rest, "--max-stack") {
                opts.max_stack = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or("bad --max-stack value")?;
            }
            if let Some(vals) = flag_value(rest, "--input") {
                for v in vals.split(',') {
                    opts.input
                        .push_back(v.trim().parse().map_err(|_| "bad --input value")?);
                }
            }
            // The cache must never stop the program from running: any
            // store failure degrades to an uncached run with a warning.
            let store = match &cache_dir {
                Some(d) => match lpat::vm::Store::open(d) {
                    Ok(s) => Some(s),
                    Err(e) => {
                        diag.cache_warn(e.class(), &format!("{e}; running uncached"));
                        None
                    }
                },
                None => None,
            };
            // Under a cache dir, prefer the reoptimized module a previous
            // idle-time `lpatc reopt` produced for these exact bytes.
            if let Some(store) = &store {
                let source_hash = lpat::vm::module_hash(&m);
                match store.load_reopt(source_hash, &m.name) {
                    Ok(loaded) => {
                        for q in &loaded.quarantined {
                            diag.cache_warn(q.error.class(), &q.to_string());
                        }
                        if let Some(r) = loaded.value {
                            diag.note(&format!(
                                "[cache] using reoptimized module for {source_hash:016x}"
                            ));
                            m = r;
                        }
                    }
                    Err(e) => diag.cache_warn(e.class(), &e.to_string()),
                }
            }
            // Profiles are keyed to the module actually executed.
            let run_hash = lpat::vm::module_hash(&m);
            // Load-and-merge a prior lifetime profile; a profile recorded
            // against different bytes is stale and must not be applied.
            let mut lifetime = lpat::vm::StoredProfile {
                profile: lpat::vm::ProfileData::default(),
                runs: 0,
            };
            if let Some(p) = profile_in {
                match lpat::vm::store::read_profile_file(std::path::Path::new(p)) {
                    Ok((h, sp)) if h == run_hash => lifetime = sp,
                    Ok((h, _)) => diag.warn(&format!(
                        "--profile-in {p}: recorded for module \
                         {h:016x}, have {run_hash:016x}; starting fresh"
                    )),
                    Err(e) => diag.warn(&format!("--profile-in {p}: {e}; starting fresh")),
                }
            }
            // `--tier-up N` implies `--tiered`; `LPAT_TIER_UP` only sets
            // the threshold. `--tiered` wins over `--jit` if both appear.
            let tier_up_flag = flag_value(rest, "--tier-up");
            let env_tier_up = std::env::var("LPAT_TIER_UP").ok();
            if let Some(v) = tier_up_flag.or(env_tier_up.as_deref()) {
                opts.tier_up = v.parse().map_err(|_| "bad --tier-up value")?;
            }
            // `--native-up N` implies `--tier-native`, and either implies
            // `--tiered`: the machine-code tier only exists above the
            // tiered engine's JIT tier. Without an explicit threshold the
            // native tier reuses the JIT threshold (counted again from
            // the moment of JIT promotion).
            let native_up_flag = flag_value(rest, "--native-up");
            let use_native = has_flag(rest, "--tier-native") || native_up_flag.is_some();
            if use_native {
                opts.native_up = Some(match native_up_flag {
                    Some(v) => v.parse().map_err(|_| "bad --native-up value")?,
                    None => opts.tier_up,
                });
            }
            let use_tiered = has_flag(rest, "--tiered") || tier_up_flag.is_some() || use_native;
            let profiling = opts.profile;
            let use_jit = has_flag(rest, "--jit");
            // Accumulated prior profile for these exact module bytes —
            // the explicit `--profile-in` file (hash-checked above) plus
            // the store's lifetime profile. Feeds both tier warm-start
            // and speculation.
            let mut accum = lifetime.profile.clone();
            let mut have_prior = lifetime.runs > 0;
            if let Some(store) = &store {
                match store.load_profile(run_hash) {
                    Ok(loaded) => {
                        for q in &loaded.quarantined {
                            diag.cache_warn(q.error.class(), &q.to_string());
                        }
                        if let Some(sp) = loaded.value {
                            accum.merge_saturating(&sp.profile);
                            have_prior = true;
                        }
                    }
                    Err(e) => diag.cache_warn(e.class(), &e.to_string()),
                }
            }
            // `--speculate`: apply guard-based speculative optimization
            // driven by the accumulated profile. The module hash — and so
            // profile attribution — was computed above, *before* this
            // mutation: guards are an ephemeral in-memory overlay,
            // re-derived each run, never part of any persisted module.
            let speculate_flag = has_flag(rest, "--speculate");
            let mut spec_install = None;
            if speculate_flag {
                let mut sopts = lpat::transform::SpecOptions::default();
                if let Some(t) = flag_value(rest, "--spec-threshold") {
                    sopts.misspec_threshold_pct =
                        t.parse().map_err(|_| "bad --spec-threshold value")?;
                }
                if have_prior {
                    let (map, plan) = lpat::transform::speculate::speculate(
                        &mut m,
                        &accum.to_spec_profile(),
                        &sopts,
                    );
                    m.verify()
                        .map_err(|e| format!("verifier after speculation: {}", e[0]))?;
                    diag.note(&format!(
                        "[spec] {} guard(s) emitted, {} retracted",
                        plan.emitted(),
                        plan.retracted()
                    ));
                    spec_install = Some((std::rc::Rc::new(map), plan));
                } else {
                    diag.note("[spec] no prior profile for this module; nothing to speculate");
                }
            }
            let mut vm = lpat::vm::Vm::new(&m, opts).map_err(|e| e.to_string())?;
            if let Some((map, plan)) = &spec_install {
                vm.install_speculation(map.clone(), plan.emitted() as u64, plan.retracted() as u64);
            }
            // Warm-start: seed tier decisions from every prior profile
            // recorded for these exact module bytes — the lifelong loop
            // closed at the execution layer.
            if use_tiered && have_prior {
                let n = vm.warm_start(&accum);
                if n > 0 {
                    diag.note(&format!(
                        "[tier] warm-start: {n} function(s) promoted from prior profile"
                    ));
                }
            }
            // Armed BEFORE execution: every exit route below — clean
            // exit, trap, even an early return — funnels its store flush
            // through this one guard, the same RAII type `lpatd` workers
            // use, so no path can flush twice or be forgotten.
            let mut flush = lpat::vm::store::FlushGuard::new(store.as_ref(), run_hash);
            let result = if use_tiered {
                vm.run_main_tiered()
            } else if use_jit {
                vm.run_main_jit()
            } else {
                vm.run_main()
            };
            print!("{}", vm.output);
            // Fold the VM's counters (instructions, per-opcode, heap) into
            // the trace before it is drained for export.
            vm.flush_trace();
            // Flush the profile on clean exit AND on trap: a lifetime
            // profile that loses its crashing runs is blind to exactly
            // the behavior worth reoptimizing around.
            if profiling {
                lifetime.profile.merge_saturating(&vm.profile);
                lifetime.runs = lifetime.runs.saturating_add(1);
                flush.set_delta(vm.profile.clone());
                // The store merges this run's delta under its lock; a
                // Locked/Io failure skips persisting this one run.
                match flush.flush() {
                    lpat::vm::FlushOutcome::Flushed(l) => {
                        for q in &l.quarantined {
                            diag.cache_warn(q.error.class(), &q.to_string());
                        }
                    }
                    lpat::vm::FlushOutcome::Failed(e) => {
                        diag.cache_warn(e.class(), &e.to_string());
                    }
                    lpat::vm::FlushOutcome::Skipped => {}
                }
                if let Some(p) = profile_out {
                    if let Err(e) = lpat::vm::store::write_profile_file(
                        std::path::Path::new(p),
                        run_hash,
                        &lifetime.profile,
                        lifetime.runs,
                    ) {
                        diag.warn(&format!("--profile-out {p}: {e}"));
                    }
                }
                if has_flag(rest, "--profile") {
                    report_profile(&m, &lifetime.profile, diag);
                }
            }
            // Per-opcode execution histogram (interpreter dispatch counts).
            if has_flag(rest, "--stats") {
                let top = vm.top_opcodes(10);
                if !top.is_empty() {
                    diag.dump("\n[profile] top opcodes:");
                    for (name, n) in top {
                        diag.dump(&format!("  {name:<14} {n:>12}"));
                    }
                }
                if use_tiered {
                    diag.dump("\n[tier]");
                    diag.dump_raw(&vm.tier_stats.render());
                }
                if speculate_flag {
                    diag.dump("\n[spec]");
                    diag.dump_raw(&vm.spec_stats.render());
                    if let Some((_, plan)) = &spec_install {
                        diag.dump_raw(&plan.render());
                    }
                }
            }
            match result {
                Ok(code) => {
                    diag.note(&format!(
                        "[exit {code}; {} instructions]",
                        vm.insts_executed
                    ));
                    Ok(ExitCode::from((code & 0xFF) as u8))
                }
                Err(e) => Err(e.to_string()),
            }
        }
        "reopt" => {
            let input = rest
                .iter()
                .find(|a| !a.starts_with('-'))
                .ok_or("reopt: no input file")?;
            let mut m = load(input)?;
            let source_hash = lpat::vm::module_hash(&m);
            let store = match cache_dir(rest) {
                Some(d) => Some(lpat::vm::Store::open(d).map_err(|e| e.to_string())?),
                None => None,
            };
            // Gather every available profile for these module bytes.
            let mut profile = lpat::vm::ProfileData::default();
            let mut runs = 0u64;
            if let Some(store) = &store {
                let loaded = store.load_profile(source_hash).map_err(|e| e.to_string())?;
                for q in &loaded.quarantined {
                    diag.cache_warn(q.error.class(), &q.to_string());
                }
                if let Some(sp) = loaded.value {
                    profile.merge_saturating(&sp.profile);
                    runs += sp.runs;
                }
            }
            if let Some(p) = flag_value(rest, "--profile-in") {
                let (h, sp) = lpat::vm::store::read_profile_file(std::path::Path::new(p))
                    .map_err(|e| format!("--profile-in {p}: {e}"))?;
                if h != source_hash {
                    return Err(format!(
                        "--profile-in {p}: profile was recorded for module {h:016x}, \
                         this module is {source_hash:016x} (stale; not applied)"
                    ));
                }
                profile.merge_saturating(&sp.profile);
                runs += sp.runs;
            }
            if runs == 0 {
                return Err(
                    "reopt: no profile available (use --cache-dir and/or --profile-in)".into(),
                );
            }
            let mut pgo = lpat::vm::PgoOptions::default();
            if let Some(v) = flag_value(rest, "--jobs") {
                pgo.jobs = Some(v.parse::<usize>().map_err(|_| "bad --jobs value")?.max(1));
            }
            if let Some(t) = flag_value(rest, "--hot-threshold") {
                pgo.hot_call_threshold = t.parse().map_err(|_| "bad --hot-threshold value")?;
            }
            if has_flag(rest, "--speculate") {
                let mut sopts = lpat::transform::SpecOptions::default();
                if let Some(t) = flag_value(rest, "--spec-threshold") {
                    sopts.misspec_threshold_pct =
                        t.parse().map_err(|_| "bad --spec-threshold value")?;
                }
                pgo.spec = Some(sopts);
            }
            let report = lpat::vm::reoptimize(&mut m, &profile, &pgo);
            m.verify().map_err(|e| format!("verifier: {}", e[0]))?;
            diag.note(&format!(
                "[reopt] inlined {} hot sites, re-laid {} functions ({} runs of profile)",
                report.inlined, report.relaid, runs
            ));
            if let Some(plan) = &report.spec_plan {
                diag.note(&format!(
                    "[spec] plan: {} guard(s) to emit, {} retracted",
                    plan.emitted(),
                    plan.retracted()
                ));
                // The canonical plan rendering goes to stdout so tests can
                // compare offline decisions byte-for-byte across --jobs.
                print!("{}", plan.render());
            }
            for f in &report.faults {
                diag.warn(&format!("reopt: isolated fault: {f}"));
            }
            if let Some(store) = &store {
                store
                    .save_reopt(source_hash, &m)
                    .map_err(|e| e.to_string())?;
                diag.note(&format!(
                    "[reopt] cached reoptimized module for {source_hash:016x}"
                ));
            }
            if flag_value(rest, "-o").is_some() {
                emit(&m, rest)?;
            }
            Ok(ExitCode::SUCCESS)
        }
        "analyze" => {
            let input = rest.first().ok_or("analyze: no input file")?;
            let m = load(input)?;
            let cg = lpat::analysis::CallGraph::build(&m);
            let dsa = lpat::analysis::Dsa::analyze(&m, &cg, &lpat::analysis::DsaOptions::default());
            println!(
                "module {}: {} functions, {} globals, {} instructions",
                m.name,
                m.num_funcs(),
                m.num_globals(),
                m.total_insts()
            );
            println!("\nper-function typed memory accesses (DSA):");
            for (fid, f) in m.funcs() {
                if f.is_declaration() {
                    continue;
                }
                let s = dsa.access_stats_for(fid);
                println!(
                    "  @{:<24} {:>4} typed {:>4} untyped  ({:>5.1}%)  callees: {}",
                    f.name,
                    s.typed,
                    s.untyped,
                    s.percent(),
                    cg.callees(fid).len()
                );
            }
            let total = dsa.access_stats();
            println!(
                "\ntotal: {} typed / {} untyped ({:.1}%)",
                total.typed,
                total.untyped,
                total.percent()
            );
            Ok(ExitCode::SUCCESS)
        }
        "size" => {
            let input = rest.first().ok_or("size: no input file")?;
            let m = load(input)?;
            let bc = lpat::bytecode::write_module(&m);
            let cisc = lpat::codegen::compile_module(&m, &lpat::codegen::Cisc32);
            let risc = lpat::codegen::compile_module(&m, &lpat::codegen::Risc32);
            println!("{:<12} {:>10}", "form", "bytes");
            println!("{:<12} {:>10}", "bytecode", bc.len());
            println!(
                "{:<12} {:>10}   (code {} data {})",
                "cisc32", cisc.total, cisc.code_size, cisc.data_size
            );
            println!(
                "{:<12} {:>10}   (code {} data {})",
                "risc32", risc.total, risc.code_size, risc.data_size
            );
            Ok(ExitCode::SUCCESS)
        }
        "remote" => remote(rest, diag),
        "help" | "--help" | "-h" => {
            eprintln!(
                "usage: lpatc <compile|opt|link|dis|run|reopt|analyze|size|remote> <inputs> [flags]\n\
                 remote: lpatc remote <ping|run|compile|reopt|stats|top> [input] --connect ADDR\n\
                 \x20      [--tenant T] [--fuel N] [--deadline-ms N] [--input a,b,c]\n\
                 \x20      [-O] [--tiered] [--retries N] [--connect-timeout-ms N] [-o FILE]\n\
                 \x20      [--request-id N]; top: [--interval-ms N] [--iterations N]\n\
                 flags: -o FILE, --emit text|bc, -O/-O2, --link-pipeline,\n\
                 \x20      --jobs N, --verify-each, --time-passes,\n\
                 \x20      --inject-faults PLAN, --no-degrade, --pass-budget-ms N,\n\
                 \x20      --profile, --jit, --tiered, --tier-up N (or LPAT_TIER_UP),\n\
                 \x20      --tier-native, --native-up N,\n\
                 \x20      --fuel N, --input a,b,c, --max-stack N,\n\
                 \x20      --cache-dir DIR (or LPAT_CACHE_DIR), --profile-in FILE,\n\
                 \x20      --profile-out FILE, --hot-threshold N,\n\
                 \x20      --speculate, --spec-threshold N,\n\
                 \x20      --trace-out FILE, --metrics-out FILE, --stats,\n\
                 \x20      --trace-clock virtual|real (or LPAT_TRACE_CLOCK), --quiet"
            );
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command '{other}' (try 'lpatc help')")),
    }
}

/// `lpatc remote <op> [input] --connect ADDR` — run an op against a
/// running `lpatd` instead of in-process. `Busy` answers (tenant cap,
/// shed queue) are retried with jittered bounded exponential backoff,
/// honoring the server's `retry_after_ms` hint; a still-busy server
/// after the retry budget exits with a distinct code (3) so scripts can
/// tell "declined" from "failed", and a crash-loop-quarantined payload
/// exits 4 — retrying it cannot help.
fn remote(rest: &[String], diag: &mut Diag) -> Result<ExitCode, String> {
    use lpat::serve::{Addr, Client, ErrClass, Op, Request, Response, RetryPolicy, FLAG_MINIC};

    let op = match rest.first().map(String::as_str) {
        Some("ping") => Op::Ping,
        Some("run") => Op::Run,
        Some("compile") => Op::Compile,
        Some("reopt") => Op::Reopt,
        Some("stats") => Op::Stats,
        Some("top") => return remote_top(rest),
        Some(other) => return Err(format!("remote: unknown op '{other}'")),
        None => return Err("remote: no op (ping|run|compile|reopt|stats|top)".into()),
    };
    let addr = flag_value(rest, "--connect").ok_or("remote: --connect ADDR is required")?;
    let addr = Addr::parse(addr).map_err(|e| format!("remote: {e}"))?;
    let connect_timeout = match flag_value(rest, "--connect-timeout-ms") {
        Some(v) => std::time::Duration::from_millis(
            v.parse().map_err(|_| "bad --connect-timeout-ms value")?,
        ),
        None => std::time::Duration::from_secs(5),
    };
    let mut req = Request::new(op);
    if let Some(t) = flag_value(rest, "--tenant") {
        req.tenant = t.to_string();
    }
    if let Some(f) = flag_value(rest, "--fuel") {
        req.fuel = f.parse().map_err(|_| "bad --fuel value")?;
    }
    if let Some(d) = flag_value(rest, "--deadline-ms") {
        req.deadline_ms = d.parse().map_err(|_| "bad --deadline-ms value")?;
    }
    if let Some(vals) = flag_value(rest, "--input") {
        for v in vals.split(',') {
            req.inputs
                .push(v.trim().parse().map_err(|_| "bad --input value")?);
        }
    }
    if has_flag(rest, "-O") || has_flag(rest, "-O2") {
        req.flags |= lpat::serve::FLAG_OPT;
    }
    if has_flag(rest, "--tiered") {
        req.flags |= lpat::serve::FLAG_TIERED;
    }
    // Originate the distributed-trace context: the id rides the wire,
    // every daemon and worker span for this request carries it, and the
    // merged `lpatd --trace-out` file can be grepped for it end to end.
    // Accepts decimal or the 0x-hex form the diagnostics print, so an id
    // copied from another transcript round-trips.
    req.request_id = match flag_value(rest, "--request-id") {
        Some(v) => match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16).map_err(|_| "bad --request-id value")?,
            None => v.parse().map_err(|_| "bad --request-id value")?,
        },
        None => {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::SystemTime::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            // SplitMix64-style mix of time and pid; `| 1` keeps it
            // nonzero (zero means "daemon, assign one").
            (nanos ^ (u64::from(std::process::id()) << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
        }
    };
    diag.note(&format!("[remote] request id {:#018x}", req.request_id));
    // Ops that carry a module read it from the first non-flag argument
    // after the op name. The bytes ship raw — the daemon does the
    // auto-detection — except miniC, which the wire marks with a flag
    // since filenames don't cross it.
    if matches!(op, Op::Run | Op::Compile | Op::Reopt) {
        let input = rest[1..]
            .iter()
            .find(|a| !a.starts_with('-') && Some(a.as_str()) != flag_value(rest, "--connect"))
            .ok_or("remote: no input file")?;
        req.module = std::fs::read(input.as_str()).map_err(|e| format!("{input}: {e}"))?;
        req.name = std::path::Path::new(input.as_str())
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("module")
            .to_string();
        if input.ends_with(".mc") || input.ends_with(".c") {
            req.flags |= FLAG_MINIC;
        }
    }
    let mut policy = RetryPolicy::default();
    if let Some(r) = flag_value(rest, "--retries") {
        let retries: u32 = r.parse().map_err(|_| "bad --retries value")?;
        policy.max_attempts = retries + 1;
    }
    let mut client = Client::connect(&addr, connect_timeout).map_err(|e| format!("remote: {e}"))?;
    let mut sp = lpat::core::trace::span("serve.client", "request");
    sp.arg("rid", req.request_id.to_string());
    sp.arg("op", op.name());
    let resp = client
        .request_with_retry(&req, &policy)
        .map_err(|e| format!("remote: {e}"))?;
    sp.arg("status", resp.status_label());
    drop(sp);
    match resp {
        Response::Ok {
            exit,
            insts,
            cache_hit,
            output,
            module,
        } => {
            // Program stdout is relayed verbatim; server-generated status
            // lines (reopt summaries, stats JSON) get a terminating newline
            // so shell prompts don't glue onto them.
            let text = String::from_utf8_lossy(&output);
            if matches!(op, Op::Run) || text.ends_with('\n') || text.is_empty() {
                print!("{text}");
            } else {
                println!("{text}");
            }
            if !module.is_empty() {
                if let Some(p) = flag_value(rest, "-o") {
                    std::fs::write(p, &module).map_err(|e| format!("-o {p}: {e}"))?;
                    diag.note(&format!("[remote] wrote {p} ({} bytes)", module.len()));
                }
            }
            if cache_hit {
                diag.note("[remote] served from reopt cache");
            }
            if matches!(op, Op::Run) {
                diag.note(&format!("[remote exit {exit}; {insts} instructions]"));
                Ok(ExitCode::from((exit & 0xFF) as u8))
            } else {
                Ok(ExitCode::SUCCESS)
            }
        }
        Response::Err { class, message } => {
            // Guest traps mirror local `lpatc run` (error text, exit 2 via
            // the caller); a quarantined payload gets its own exit code
            // (4) — retrying it is pointless until the denylist is
            // cleared, and scripts need to tell that apart from a
            // retryable failure; everything else is prefixed with its
            // class so scripts can dispatch on it.
            match class {
                ErrClass::Trap => Err(message),
                ErrClass::Quarantined => {
                    diag.warn(&format!("quarantined: {message}"));
                    Ok(ExitCode::from(4))
                }
                _ => Err(format!("{}: {message}", class.name())),
            }
        }
        Response::Busy {
            retry_after_ms,
            reason,
        } => {
            diag.warn(&format!(
                "server busy after {} attempt(s): {reason} (retry_after {retry_after_ms}ms)",
                policy.max_attempts
            ));
            Ok(ExitCode::from(3))
        }
    }
}

/// `lpatc remote top --connect ADDR` — a refreshing live view of a
/// running daemon: req/s, latency/queue-wait quantiles, worker states,
/// and crash/quarantine counters, all scraped from the `Stats` op's
/// `lpat-serve-stats/v2` JSON once per `--interval-ms` (default 1000).
/// `--iterations N` stops after N polls (0 = until interrupted), which
/// is how scripts and tests get one deterministic snapshot.
fn remote_top(rest: &[String]) -> Result<ExitCode, String> {
    use lpat::core::trace::{parse_json, Json};
    use lpat::serve::{Addr, Client, Op, Request, Response};

    let addr = flag_value(rest, "--connect").ok_or("remote top: --connect ADDR is required")?;
    let addr = Addr::parse(addr).map_err(|e| format!("remote top: {e}"))?;
    let interval = std::time::Duration::from_millis(match flag_value(rest, "--interval-ms") {
        Some(v) => v.parse().map_err(|_| "bad --interval-ms value")?,
        None => 1000,
    });
    let iterations: u64 = match flag_value(rest, "--iterations") {
        Some(v) => v.parse().map_err(|_| "bad --iterations value")?,
        None => 0,
    };
    let mut client = Client::connect(&addr, std::time::Duration::from_secs(5))
        .map_err(|e| format!("remote top: {e}"))?;
    let mut prev: Option<(f64, std::time::Instant)> = None;
    let mut poll = 0u64;
    loop {
        poll += 1;
        let json = match client.request(&Request::new(Op::Stats)) {
            Ok(Response::Ok { output, .. }) => String::from_utf8_lossy(&output).into_owned(),
            Ok(other) => return Err(format!("remote top: stats answered {other:?}")),
            Err(e) => return Err(format!("remote top: {e}")),
        };
        let stats = parse_json(&json).map_err(|e| format!("remote top: bad stats JSON: {e}"))?;
        let now = std::time::Instant::now();
        let requests = stats.num("requests").unwrap_or(0.0);
        let rate = match prev {
            Some((r0, t0)) => {
                let dt = now.duration_since(t0).as_secs_f64();
                if dt > 0.0 {
                    (requests - r0).max(0.0) / dt
                } else {
                    0.0
                }
            }
            None => 0.0,
        };
        prev = Some((requests, now));
        {
            use std::io::IsTerminal as _;
            if std::io::stdout().is_terminal() {
                // Home + clear-to-end keeps a live table without scroll.
                print!("\x1b[H\x1b[2J");
            }
        }
        let n = |k: &str| stats.num(k).unwrap_or(0.0) as u64;
        println!(
            "lpatd {} — {} (poll {poll})",
            addr,
            stats.str_field("schema").unwrap_or("?")
        );
        println!(
            "requests {:>8}   {:>8.1} req/s   ok {}   errors {}   busy {}   shed {}",
            n("requests"),
            rate,
            n("ok"),
            n("errors"),
            n("busy"),
            n("shed_queue"),
        );
        let pids: Vec<String> = match stats.get("worker_pids") {
            Some(Json::Arr(v)) => v
                .iter()
                .filter_map(|p| match p {
                    Json::Num(x) if *x > 0.0 => Some(format!("{}", *x as u64)),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        };
        println!(
            "workers [{}]   crashes {}   restarts {}   watchdog {}   quarantined {}   flight {}",
            pids.join(", "),
            n("worker_crashes"),
            n("worker_restarts"),
            n("watchdog_kills"),
            n("quarantined"),
            n("flight_salvaged"),
        );
        println!(
            "{:<24} {:>8} {:>8} {:>8} {:>8} {:>10}",
            "histogram", "count", "p50", "p90", "p99", "max"
        );
        if let Some(q) = stats.get("quantiles") {
            let row = |label: &str, h: &Json| {
                let f = |k: &str| h.num(k).unwrap_or(0.0) as u64;
                println!(
                    "{label:<24} {:>8} {:>8} {:>8} {:>8} {:>10}",
                    f("count"),
                    f("p50"),
                    f("p90"),
                    f("p99"),
                    f("max")
                );
            };
            if let Some(lat) = q.get("latency_us") {
                for (k, h) in lat.fields() {
                    row(&format!("latency_us {k}"), h);
                }
            }
            for plain in ["queue_wait_us", "fuel", "payload_bytes"] {
                if let Some(h) = q.get(plain) {
                    row(plain, h);
                }
            }
        }
        if iterations > 0 && poll >= iterations {
            return Ok(ExitCode::SUCCESS);
        }
        std::thread::sleep(interval);
    }
}

/// All driver diagnostics flow through here, and only program output and
/// report tables go to stdout. Notices and warnings print to stderr and
/// are silenced by `--quiet`; explicitly requested dumps (`--time-passes`,
/// `--profile`, `--stats`) always print. Cache warnings deduplicate per
/// `StoreError` class: the first of each class prints, the rest are
/// counted and summarized by `Diag::flush`.
struct Diag {
    quiet: bool,
    cache_seen: std::collections::BTreeMap<&'static str, u64>,
}

impl Diag {
    fn new(quiet: bool) -> Diag {
        Diag {
            quiet,
            cache_seen: std::collections::BTreeMap::new(),
        }
    }

    /// Informational notice (`[cache]`, `[reopt]`, `[exit …]`).
    fn note(&self, msg: &str) {
        if !self.quiet {
            eprintln!("{msg}");
        }
    }

    /// Warning (prefixed `lpatc: warning:`).
    fn warn(&self, msg: &str) {
        if !self.quiet {
            eprintln!("lpatc: warning: {msg}");
        }
    }

    /// Cache warning, deduplicated by error class.
    fn cache_warn(&mut self, class: &'static str, msg: &str) {
        let n = self.cache_seen.entry(class).or_insert(0);
        *n += 1;
        if *n == 1 {
            self.warn(&format!("cache: {msg}"));
        }
    }

    /// Explicitly requested dump line — prints even under `--quiet`.
    fn dump(&self, msg: &str) {
        eprintln!("{msg}");
    }

    /// Explicitly requested dump, pre-formatted (no trailing newline added).
    fn dump_raw(&self, msg: &str) {
        eprint!("{msg}");
    }

    /// Summarize suppressed duplicate cache warnings.
    fn flush(&self) {
        for (class, n) in &self.cache_seen {
            if *n > 1 {
                self.warn(&format!(
                    "cache: {} more '{class}' warning(s) suppressed",
                    n - 1
                ));
            }
        }
    }
}

/// Trace/metrics outputs requested on the command line.
struct TraceConfig {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    stats: bool,
}

impl TraceConfig {
    fn active(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.stats
    }
}

/// Parse trace flags and enable recording if any output was requested.
/// The clock comes from `--trace-clock virtual|real`, falling back to the
/// `LPAT_TRACE_CLOCK` environment variable (the flag wins).
fn setup_trace(rest: &[String]) -> Result<TraceConfig, String> {
    let cfg = TraceConfig {
        trace_out: flag_value(rest, "--trace-out").map(str::to_string),
        metrics_out: flag_value(rest, "--metrics-out").map(str::to_string),
        stats: has_flag(rest, "--stats"),
    };
    if cfg.active() {
        let mode = match flag_value(rest, "--trace-clock") {
            Some("virtual") => lpat::core::trace::ClockMode::Virtual,
            Some("real") => lpat::core::trace::ClockMode::Real,
            Some(other) => {
                return Err(format!("bad --trace-clock '{other}' (virtual or real)"));
            }
            None => match std::env::var("LPAT_TRACE_CLOCK").as_deref() {
                Ok("virtual") => lpat::core::trace::ClockMode::Virtual,
                _ => lpat::core::trace::ClockMode::Real,
            },
        };
        lpat::core::trace::enable(mode);
    }
    Ok(cfg)
}

/// Drain the trace and write the requested exports.
fn finalize_trace(cfg: &TraceConfig, diag: &Diag) -> Result<(), String> {
    if !cfg.active() {
        return Ok(());
    }
    let data = lpat::core::trace::drain();
    if let Some(p) = &cfg.trace_out {
        std::fs::write(p, data.to_chrome_json()).map_err(|e| format!("--trace-out {p}: {e}"))?;
        diag.note(&format!("[trace] wrote {p}"));
    }
    if let Some(p) = &cfg.metrics_out {
        std::fs::write(p, data.to_metrics_json()).map_err(|e| format!("--metrics-out {p}: {e}"))?;
        diag.note(&format!("[trace] wrote {p}"));
    }
    if cfg.stats {
        diag.dump_raw(&data.render_stats());
    }
    Ok(())
}

fn has_flag(args: &[String], f: &str) -> bool {
    args.iter().any(|a| a == f)
}

fn flag_value<'a>(args: &'a [String], f: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == f)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Resolve the lifelong cache directory: `--cache-dir DIR` flag, falling
/// back to the `LPAT_CACHE_DIR` environment variable.
fn cache_dir(args: &[String]) -> Option<String> {
    flag_value(args, "--cache-dir")
        .map(str::to_string)
        .or_else(|| std::env::var("LPAT_CACHE_DIR").ok())
}

/// Load a module from any of the three on-disk shapes.
fn load(path: &str) -> Result<Module, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("module");
    if bytes.starts_with(b"LPAT") {
        return lpat::bytecode::read_module(name, &bytes).map_err(|e| format!("{path}: {e}"));
    }
    let text = String::from_utf8(bytes).map_err(|_| format!("{path}: not UTF-8"))?;
    let m = if path.ends_with(".mc") || path.ends_with(".c") {
        lpat::minic::compile(name, &text).map_err(|e| format!("{path}: {e}"))?
    } else {
        lpat::asm::parse_module(name, &text).map_err(|e| format!("{path}: {e}"))?
    };
    m.verify()
        .map_err(|e| format!("{path}: verifier: {}", e[0]))?;
    Ok(m)
}

/// Write the module per `-o` / `--emit` (default: text to stdout).
fn emit(m: &Module, args: &[String]) -> Result<(), String> {
    let emit_kind = flag_value(args, "--emit").unwrap_or("text");
    let out = flag_value(args, "-o");
    match (emit_kind, out) {
        ("text", None) => {
            print!("{}", m.display());
            Ok(())
        }
        ("text", Some(p)) => std::fs::write(p, m.display()).map_err(|e| e.to_string()),
        ("bc", Some(p)) => {
            std::fs::write(p, lpat::bytecode::write_module(m)).map_err(|e| e.to_string())
        }
        ("bc", None) => Err("--emit bc requires -o FILE".into()),
        (other, _) => Err(format!("unknown --emit kind '{other}'")),
    }
}

fn report_profile(m: &Module, profile: &lpat::vm::ProfileData, diag: &Diag) {
    diag.dump("\n[profile]");
    let hot = profile.hot_loops(m, 100);
    for h in hot.iter().take(8) {
        let (trace, cov) = lpat::vm::form_trace(m, profile, h);
        diag.dump(&format!(
            "  hot loop @{} bb{} x{}  trace {:?} ({:.0}% coverage)",
            m.func(h.func).name,
            h.header.index(),
            h.header_count,
            trace.iter().map(|b| b.index()).collect::<Vec<_>>(),
            cov * 100.0
        ));
    }
    for (caller, site, n) in profile.hot_callsites(100).iter().take(8) {
        diag.dump(&format!(
            "  hot call site @{} %t{} x{n}",
            m.func(*caller).name,
            site.index()
        ));
    }
}
