//! # lpat — Lifelong Program Analysis & Transformation
//!
//! A Rust reproduction of the compilation framework described in
//! *LLVM: A Compilation Framework for Lifelong Program Analysis &
//! Transformation* (Lattner & Adve, CGO 2004): a typed, SSA-based,
//! low-level code representation with equivalent in-memory / textual /
//! binary forms, and the surrounding compiler architecture — front-end,
//! link-time interprocedural optimizer, code generation, runtime
//! profiling, and offline profile-guided reoptimization.
//!
//! This facade crate re-exports every subsystem:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`core`] | `lpat-core` | the representation (types, SSA IR, verifier, printer) |
//! | [`asm`] | `lpat-asm` | textual form parser |
//! | [`bytecode`] | `lpat-bytecode` | compact binary form |
//! | [`analysis`] | `lpat-analysis` | dominators, loops, call graph, DSA, Mod/Ref |
//! | [`transform`] | `lpat-transform` | scalar & interprocedural optimizers |
//! | [`linker`] | `lpat-linker` | module linking |
//! | [`vm`] | `lpat-vm` | execution engine, EH runtime, profiling, PGO |
//! | [`codegen`] | `lpat-codegen` | cisc32/risc32 native-code size models |
//! | [`minic`] | `lpat-minic` | the miniC front-end |
//! | [`serve`] | `lpat-serve` | `lpatd`: the multi-tenant compile-and-run daemon |
//! | [`workloads`] | `lpat-workloads` | the SPEC-shaped benchmark suite |
//!
//! # The whole lifecycle in one example
//!
//! ```
//! // 1. Compile-time: front-end emits IR, per-module optimization.
//! let mut module = lpat::minic::compile("demo", "
//!     static int square(int x) { return x * x; }
//!     int main() {
//!         int s = 0;
//!         for (int i = 0; i < 10; i = i + 1) s = s + square(i);
//!         return s;
//!     }").unwrap();
//! lpat::transform::function_pipeline().run(&mut module);
//!
//! // 2. Link-time: whole-program interprocedural optimization.
//! lpat::transform::link_time_pipeline().run(&mut module);
//!
//! // 3. Offline codegen (size model) + persistent bytecode.
//! let native = lpat::codegen::compile_module(&module, &lpat::codegen::Cisc32);
//! let bytecode = lpat::bytecode::write_module(&module);
//! assert!(native.total > 0 && !bytecode.is_empty());
//!
//! // 4. Runtime: execute with profiling.
//! let mut opts = lpat::vm::VmOptions::default();
//! opts.profile = true;
//! let mut vm = lpat::vm::Vm::new(&module, opts).unwrap();
//! assert_eq!(vm.run_main().unwrap(), 285);
//!
//! // 5. Idle-time: profile-guided reoptimization.
//! let profile = vm.profile.clone();
//! lpat::vm::reoptimize(&mut module, &profile, &lpat::vm::PgoOptions::default());
//! module.verify().unwrap();
//! ```

#![warn(missing_docs)]

pub use lpat_analysis as analysis;
pub use lpat_asm as asm;
pub use lpat_bytecode as bytecode;
pub use lpat_codegen as codegen;
pub use lpat_core as core;
pub use lpat_linker as linker;
pub use lpat_minic as minic;
pub use lpat_serve as serve;
pub use lpat_transform as transform;
pub use lpat_vm as vm;
pub use lpat_workloads as workloads;
